"""Setup shim: enables `pip install -e . --no-use-pep517` on offline
environments that lack the `wheel` package (config lives in pyproject.toml)."""
from setuptools import setup

setup()
