"""Tests for repro.serve — registry, engine, monitor, HTTP transport.

The acceptance scenario from the serving milestone is covered end to end:
register a fitted ensemble with its precomputed feedback artifact, start
the service in-process, send Table-1-style points, and check that

- predictions are **bitwise identical** to offline ``AutoML.predict``
  (batching changes when rows are evaluated, never what is computed);
- points inside known feedback subspaces come back flagged
  ``in_uncertain_region=True`` and surface in the labeling queue;
- the HTTP transport returns the same payloads with the documented
  status-code contract (400/503/504).
"""

import threading

import numpy as np
import pytest

from repro.exceptions import (
    BackpressureError,
    RegistryError,
    RequestTimeoutError,
    ValidationError,
)
from repro.serve import (
    HttpClient,
    InProcessClient,
    InferenceEngine,
    LabelingQueue,
    MetricsRegistry,
    ModelRegistry,
    ServeConfig,
    ServeService,
    committee_disagreement,
    serve_http,
)


@pytest.fixture(scope="module")
def registry_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("registry")


@pytest.fixture(scope="module")
def registry(registry_dir, fitted_automl, scream_data):
    """A registry holding the shared fitted ensemble as ``scream`` v1."""
    registry = ModelRegistry(registry_dir)
    version = registry.register(
        "scream", fitted_automl, scream_data.X, scream_data.domains
    )
    assert version == 1
    return registry


@pytest.fixture()
def service(registry):
    service = ServeService.from_registry(
        "scream", directory=registry.directory, config=ServeConfig(max_batch=16, max_delay=0.005)
    )
    yield service
    service.close()


class TestModelRegistry:
    def test_register_load_round_trip(self, registry, fitted_automl, scream_data):
        bundle = registry.load("scream")
        assert bundle.name == "scream"
        assert bundle.n_features == scream_data.X.shape[1]
        assert bundle.classes == [c.item() for c in fitted_automl.classes_]
        assert bundle.report.committee_size >= 2
        X = scream_data.X[:8]
        np.testing.assert_array_equal(bundle.automl.predict(X), fitted_automl.predict(X))

    def test_versions_promote_rollback(self, tmp_path, registry, fitted_automl, scream_data):
        local = ModelRegistry(tmp_path)
        v1 = local.register("m", fitted_automl, scream_data.X, scream_data.domains)
        v2 = local.register("m", fitted_automl, scream_data.X, scream_data.domains,
                            metadata={"note": "retrained"})
        assert (v1, v2) == (1, 2)
        assert local.promoted_version("m") == 2
        assert local.rollback("m") == 1
        assert local.promoted_version("m") == 1
        local.promote("m", 2)
        assert local.promoted_version("m") == 2
        versions = local.versions("m")
        assert sorted(versions) == [1, 2]
        assert versions[2]["metadata"] == {"note": "retrained"}

    def test_manifest_survives_new_instance(self, registry):
        fresh = ModelRegistry(registry.directory)
        assert fresh.names() == ["scream"]
        assert fresh.promoted_version("scream") == 1

    def test_identical_bundles_share_one_artifact(self, tmp_path, registry, fitted_automl, scream_data):
        local = ModelRegistry(tmp_path)
        local.register("m", fitted_automl, scream_data.X, scream_data.domains)
        entries_after_first = local.cache.info()["entries"]
        local.register("m", fitted_automl, scream_data.X, scream_data.domains)
        assert local.cache.info()["entries"] == entries_after_first  # content-addressed dedup

    def test_errors(self, tmp_path, registry, fitted_automl, scream_data):
        with pytest.raises(RegistryError, match="no registered model"):
            registry.load("nope")
        with pytest.raises(RegistryError, match="no version 9"):
            registry.load("scream", version=9)
        with pytest.raises(ValidationError):
            registry.register("bad/name", fitted_automl, scream_data.X, scream_data.domains)
        local = ModelRegistry(tmp_path)
        local.register("m", fitted_automl, scream_data.X, scream_data.domains, promote=False)
        with pytest.raises(RegistryError, match="no promoted version"):
            local.load("m")
        with pytest.raises(RegistryError, match="no previous version"):
            local.rollback("m")


class TestMonitorPieces:
    def test_committee_disagreement_shape_and_values(self):
        stack = np.zeros((3, 4, 2))
        stack[0, 1, 0] = 1.0  # members split on point 1, class 0
        d = committee_disagreement(stack)
        assert d.shape == (4,)
        assert d[1] > 0 and d[0] == d[2] == d[3] == 0
        with pytest.raises(ValidationError):
            committee_disagreement(np.zeros((3, 4)))

    def test_labeling_queue_bounds_and_drain(self):
        queue = LabelingQueue(capacity=2)
        assert queue.offer({"a": 1}) and queue.offer({"a": 2})
        assert not queue.offer({"a": 3})  # full: newest dropped, not rotated
        stats = queue.stats()
        assert stats["enqueued"] == 2 and stats["dropped"] == 1 and stats["depth"] == 2
        assert [e["a"] for e in queue.drain(1)] == [1]
        assert [e["a"] for e in queue.drain()] == [2]
        assert len(queue) == 0


class TestEndToEndServing:
    def test_predictions_bitwise_identical_to_offline(self, service, fitted_automl, scream_data):
        """The acceptance core: serving == offline, bit for bit."""
        client = InProcessClient(service)
        points = scream_data.X[:12]
        response = client.predict(points.tolist())
        assert response["labels"] == fitted_automl.predict(points).tolist()
        np.testing.assert_array_equal(
            np.asarray(response["proba"]), fitted_automl.predict_proba(points)
        )

    def test_feedback_region_points_flagged_and_queued(self, service, registry):
        """Points inside the registered subspace -> in_uncertain_region=True."""
        bundle = registry.load("scream")
        region = bundle.report.region
        assert region, "fixture committee must disagree somewhere"
        from repro.rng import check_random_state

        inside = region.sample(6, check_random_state(5))
        client = InProcessClient(service)
        client.feedback()  # drain anything earlier tests queued
        response = client.predict(inside.tolist())
        assert response["in_uncertain_region"] == [True] * 6
        assert response["in_feedback_region"] == [True] * 6
        drained = client.feedback()
        assert len(drained["candidates"]) == 6
        assert all(c["in_feedback_region"] for c in drained["candidates"])

    def test_metrics_reflect_traffic(self, service, scream_data):
        client = InProcessClient(service)
        before = client.metrics()["counters"]["requests"]
        client.predict(scream_data.X[:3].tolist())
        snapshot = client.metrics()
        assert snapshot["counters"]["requests"] == before + 1
        assert snapshot["histograms"]["latency_seconds"]["count"] >= 1
        assert "p95" in snapshot["histograms"]["latency_seconds"]
        assert "labeling_queue" in snapshot

    def test_healthz_identity(self, service, scream_data):
        health = InProcessClient(service).healthz()
        assert health["status"] == "ok"
        assert health["model"] == "scream" and health["version"] == 1
        assert health["feature_names"] == [d.name for d in scream_data.domains]


class TestEngineBehavior:
    def test_validation_errors(self, registry):
        bundle = registry.load("scream")
        with InferenceEngine(bundle) as engine:
            with pytest.raises(ValidationError, match="features"):
                engine.predict([[1.0]])
            with pytest.raises(ValidationError, match="NaN"):
                engine.predict([[np.nan] * bundle.n_features])

    def test_backpressure_sheds_with_typed_error(self, registry, scream_data):
        bundle = registry.load("scream")
        engine = InferenceEngine(bundle, ServeConfig(queue_bound=1, max_batch=1, max_delay=0.0))
        # Wedge the batcher with a slow fake so the queue backs up.
        release = threading.Event()
        original = bundle.automl.predict_batch

        def slow_predict_batch(X):
            release.wait(5.0)
            return original(X)

        engine.bundle.automl.predict_batch = slow_predict_batch
        try:
            first = engine.submit(scream_data.X[:1])  # consumed by the batcher, then blocks
            import time  # reprolint: disable=RL004

            for _ in range(200):  # wait for the batcher to take the first item
                if engine._queue.qsize() == 0:
                    break
                time.sleep(0.005)  # reprolint: disable=RL004
            engine.submit(scream_data.X[:1])  # fills the queue (bound 1)
            with pytest.raises(BackpressureError):
                engine.submit(scream_data.X[:1])
            assert engine.metrics.counter("shed").value == 1
        finally:
            release.set()
            first.event.wait(5.0)
            engine.bundle.automl.predict_batch = original
            engine.close()

    def test_request_timeout(self, registry, scream_data):
        bundle = registry.load("scream")
        engine = InferenceEngine(bundle, ServeConfig(max_batch=1, max_delay=0.0))
        original = bundle.automl.predict_batch
        release = threading.Event()

        def hung_predict_batch(X):
            release.wait(5.0)
            return original(X)

        engine.bundle.automl.predict_batch = hung_predict_batch
        try:
            with pytest.raises(RequestTimeoutError):
                engine.predict(scream_data.X[:1], timeout=0.05)
            assert engine.metrics.counter("timeouts").value == 1
        finally:
            release.set()
            engine.bundle.automl.predict_batch = original
            engine.close()

    def test_model_error_propagates_to_waiter(self, registry, scream_data):
        bundle = registry.load("scream")
        engine = InferenceEngine(bundle, ServeConfig(max_batch=4, max_delay=0.0))
        original = bundle.automl.predict_batch

        def boom(X):
            raise RuntimeError("member exploded")

        engine.bundle.automl.predict_batch = boom
        try:
            with pytest.raises(RuntimeError, match="member exploded"):
                engine.predict(scream_data.X[:2])
            assert engine.metrics.counter("errors").value == 1
        finally:
            engine.bundle.automl.predict_batch = original
            engine.close()


class TestMetricsRegistry:
    def test_counter_and_histogram(self):
        metrics = MetricsRegistry()
        metrics.counter("hits").inc(3)
        assert metrics.counter("hits").value == 3
        with pytest.raises(ValidationError):
            metrics.counter("hits").inc(-1)
        histogram = metrics.histogram("sizes", window=4)
        for value in (1, 2, 3, 4, 5, 6):  # overruns the window; count stays exact
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 6 and summary["sum"] == 21.0
        assert summary["max"] == 6.0  # quantiles come from the retained window
        with pytest.raises(ValidationError):
            metrics.histogram("hits")  # name collision across kinds

    def test_snapshot_shape(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        metrics.histogram("b").observe(1.0)
        snapshot = metrics.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["histograms"]["b"]["count"] == 1


class TestHttpTransport:
    @pytest.fixture()
    def server(self, registry):
        service = ServeService.from_registry(
            "scream", directory=registry.directory, config=ServeConfig(max_batch=16, max_delay=0.005)
        )
        server = serve_http(service)  # port 0: OS-assigned
        yield server
        server.close()

    def test_all_four_endpoints(self, server, fitted_automl, scream_data):
        client = HttpClient(server.url)
        health = client.healthz()
        assert health["status"] == "ok" and health["model"] == "scream"
        points = scream_data.X[:5]
        response = client.predict(points.tolist())
        assert response["labels"] == fitted_automl.predict(points).tolist()
        np.testing.assert_array_equal(
            np.asarray(response["proba"]), fitted_automl.predict_proba(points)
        )
        metrics = client.metrics()
        assert metrics["counters"]["requests"] >= 1
        feedback = client.feedback(limit=10)
        assert "candidates" in feedback and "queue" in feedback

    def test_error_contract(self, server):
        client = HttpClient(server.url)
        with pytest.raises(ValidationError):  # 400: malformed request
            client.predict([[1.0]])
        import json
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server.url + "/nope")
        assert excinfo.value.code == 404
        request = urllib.request.Request(
            server.url + "/predict", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400
        assert json.loads(excinfo.value.read())["type"] == "ValidationError"


class TestRegistryGC:
    def test_gc_removes_only_unreferenced_entries(self, tmp_path, fitted_automl, scream_data):
        registry = ModelRegistry(tmp_path)
        registry.register("m", fitted_automl, scream_data.X, scream_data.domains)
        registry.register("m", fitted_automl, scream_data.X, scream_data.domains,
                          metadata={"note": "v2"})
        orphans = [
            registry.cache.publish({"stale": index}) for index in range(3)
        ]
        referenced = set(registry.cache.keys()) - set(orphans)

        # Dry run: counts report, nothing is deleted.
        report = registry.gc(dry_run=True)
        assert report["unreferenced"] == 3
        assert report["removed"] == 0
        assert report["bytes_freed"] > 0
        assert set(registry.cache.keys()) == referenced | set(orphans)

        # Real run: orphans go, referenced artifacts stay loadable.
        report = registry.gc()
        assert report["removed"] == 3
        assert set(registry.cache.keys()) == referenced
        for version in (1, 2):
            assert registry.load("m", version).name == "m"

    def test_gc_on_clean_registry_is_a_noop(self, tmp_path, fitted_automl, scream_data):
        registry = ModelRegistry(tmp_path)
        registry.register("m", fitted_automl, scream_data.X, scream_data.domains)
        report = registry.gc()
        assert report == {"referenced": 1, "unreferenced": 0, "removed": 0, "bytes_freed": 0}


class TestRegistryLoadErrors:
    def test_never_promoted_name_lists_available_versions(self, tmp_path, fitted_automl, scream_data):
        registry = ModelRegistry(tmp_path)
        registry.register("m", fitted_automl, scream_data.X, scream_data.domains, promote=False)
        registry.register("m", fitted_automl, scream_data.X, scream_data.domains, promote=False)
        with pytest.raises(RegistryError) as excinfo:
            registry.load("m")
        message = str(excinfo.value)
        assert "no promoted version" in message
        assert "[1, 2]" in message  # the available versions, spelled out
        # Explicit versions still load fine without a promotion.
        assert registry.load("m", 2).name == "m"


class TestLabelingQueueDurability:
    def test_journal_restores_backlog(self, tmp_path):
        path = tmp_path / "labels.jsonl"
        queue = LabelingQueue(8, snapshot_path=str(path))
        for index in range(5):
            assert queue.offer({"point": [float(index)], "disagreement": 0.5})
        drained = queue.drain(2)
        assert len(drained) == 2
        stats = queue.stats()
        assert stats["depth"] == 3
        assert stats["persisted"] == 6  # 5 offers + 1 drain record

        # A fresh queue on the same journal replays to the same backlog.
        restored = LabelingQueue(8, snapshot_path=str(path))
        assert len(restored) == 3
        assert restored.drain()[0]["point"] == [2.0]

    def test_torn_and_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "labels.jsonl"
        path.write_text(
            '{"op": "offer", "entry": {"point": [1.0]}}\n'
            "not json at all\n"
            '{"op": "offer", "entry": {"point": [2.0]}}\n'
            '{"op": "offer", "entry"'  # torn final line from a crash
        )
        queue = LabelingQueue(8, snapshot_path=str(path))
        assert len(queue) == 2

    def test_no_snapshot_means_no_persistence(self, tmp_path):
        queue = LabelingQueue(8)
        queue.offer({"point": [0.0]})
        assert queue.stats()["persisted"] == 0

    def test_service_persist_labels_survives_restart(self, registry, scream_data):
        config = ServeConfig(max_batch=8, max_delay=0.0, disagreement_threshold=0.0)
        with ServeService.from_registry(
            "scream", directory=registry.directory, config=config, persist_labels=True
        ) as service:
            # Threshold 0 flags everything, so the queue certainly fills.
            service.predict(scream_data.X[:6].tolist())
            depth = service.feedback(limit=0)["queue"]["depth"]
            assert depth > 0
        journal = registry.directory / "labeling" / "scream.jsonl"
        assert journal.exists()
        with ServeService.from_registry(
            "scream", directory=registry.directory, config=config, persist_labels=True
        ) as service:
            assert service.feedback(limit=0)["queue"]["depth"] == depth
