"""Tests for the paper-comparison module."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    PAPER_TABLE1,
    TABLE1_CLAIMS,
    ShapeClaim,
    compare_to_paper,
    format_comparison,
)
from repro.stats import AlgorithmScores, SignificanceTable


def _table_from_means(means: dict, *, spread: float = 0.01, n: int = 40) -> SignificanceTable:
    rng = np.random.default_rng(0)
    base = rng.normal(0.0, spread, size=n)
    return SignificanceTable(
        [AlgorithmScores(name, base + mean) for name, mean in means.items()]
    )


def _paper_like_means() -> dict:
    return {row.algorithm: row.mean / 100.0 for row in PAPER_TABLE1.values()}


class TestPaperConstants:
    def test_all_nine_rows_present(self):
        assert len(PAPER_TABLE1) == 9
        assert PAPER_TABLE1["upsampling"].mean == 76.7
        assert PAPER_TABLE1["cross_ale"].p_vs_no_feedback == pytest.approx(3.33e-6)

    def test_baseline_has_no_self_pvalue(self):
        assert PAPER_TABLE1["no_feedback"].p_vs_no_feedback is None


class TestClaims:
    def test_papers_own_numbers_satisfy_all_claims(self):
        """Sanity: a table shaped exactly like the paper passes every claim."""
        table = _table_from_means(_paper_like_means())
        results = compare_to_paper(table)
        assert results, "no claims evaluated"
        failing = [claim_id for claim_id, held in results.items() if not held]
        assert not failing, failing

    def test_flat_table_fails_direction_claims(self):
        table = _table_from_means({name: 0.7 for name in _paper_like_means()})
        results = compare_to_paper(table)
        assert not results["ale_beats_baseline_within"]
        assert results["pool_no_better_than_free"]  # 'within' claims still hold

    def test_missing_algorithms_skipped(self):
        table = _table_from_means({"no_feedback": 0.70, "within_ale": 0.75})
        results = compare_to_paper(table)
        assert "ale_beats_baseline_within" in results
        assert "ale_beats_uniform" not in results

    def test_claim_kinds(self):
        table = _table_from_means({"a": 0.70, "b": 0.75})
        assert ShapeClaim("x", "", "better", "b", "a").holds(table)
        assert not ShapeClaim("x", "", "better", "a", "b").holds(table)
        assert ShapeClaim("x", "", "significant", "b", "a").holds(table)
        assert ShapeClaim("x", "", "within", "a", "b", margin=0.06).holds(table)
        assert not ShapeClaim("x", "", "within", "a", "b", margin=0.01).holds(table)

    def test_unknown_kind_rejected(self):
        table = _table_from_means({"a": 0.7, "b": 0.8})
        with pytest.raises(ValidationError):
            ShapeClaim("x", "", "vibes", "a", "b").holds(table)

    def test_unknown_algorithm_rejected(self):
        table = _table_from_means({"a": 0.7})
        with pytest.raises(ValidationError):
            ShapeClaim("x", "", "better", "a", "ghost").holds(table)


class TestFormatting:
    def test_verdict_sheet(self):
        table = _table_from_means(_paper_like_means())
        text = format_comparison(table)
        assert "✓" in text
        assert "Within-ALE significantly beats" in text
