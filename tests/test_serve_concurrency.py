"""Concurrency tests for repro.serve: the engine under parallel load.

Hammers the in-process client from many threads and checks the engine's
core promises hold under contention:

- **no drops, no duplicates** — every accepted request gets exactly one
  reply, and the reply is for *its own* rows (micro-batch fan-out never
  crosses wires);
- **determinism** — every served label matches offline
  ``AutoML.predict`` row for row, whatever batch a row landed in;
- **bounded overload** — with a tiny queue and a slowed model, excess
  requests shed with :class:`BackpressureError` instead of blocking;
- **honest metrics** — the ``/metrics`` counters reconcile exactly with
  a ground-truth log the test threads keep themselves.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import BackpressureError
from repro.serve import InferenceEngine, InProcessClient, ModelRegistry, ServeConfig, ServeService

N_THREADS = 8
REQUESTS_PER_THREAD = 20
ROWS_PER_REQUEST = 3


@pytest.fixture(scope="module")
def bundle(tmp_path_factory, fitted_automl, scream_data):
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.register("scream", fitted_automl, scream_data.X, scream_data.domains)
    return registry.load("scream")


class TestParallelClients:
    def test_no_drops_no_duplicates_and_deterministic(self, bundle, fitted_automl, scream_data):
        service = ServeService(bundle, ServeConfig(max_batch=8, max_delay=0.002, queue_bound=512))
        client = InProcessClient(service)
        X = scream_data.X
        offline_labels = fitted_automl.predict(X)
        results: dict[tuple[int, int], dict] = {}
        errors: list[BaseException] = []
        lock = threading.Lock()

        def worker(thread_index: int) -> None:
            for request_index in range(REQUESTS_PER_THREAD):
                # Each request targets a distinct, known row window so a
                # crossed wire (reply for someone else's rows) is detectable.
                start = (thread_index * REQUESTS_PER_THREAD + request_index) * ROWS_PER_REQUEST % (
                    X.shape[0] - ROWS_PER_REQUEST
                )
                rows = X[start : start + ROWS_PER_REQUEST]
                try:
                    response = client.predict(rows.tolist())
                except BaseException as error:  # collected, not raised mid-thread
                    with lock:
                        errors.append(error)
                    return
                with lock:
                    results[(thread_index, request_index)] = {"start": start, "response": response}

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        service.close()

        assert errors == []
        # No drops: every (thread, request) pair answered exactly once.
        assert len(results) == N_THREADS * REQUESTS_PER_THREAD
        # No crossed wires + determinism: each reply matches offline
        # predictions for exactly the rows that request sent.
        for entry in results.values():
            start = entry["start"]
            expected = offline_labels[start : start + ROWS_PER_REQUEST].tolist()
            assert entry["response"]["labels"] == expected
            np.testing.assert_allclose(
                np.asarray(entry["response"]["proba"]),
                fitted_automl.predict_proba(X[start : start + ROWS_PER_REQUEST]),
                rtol=0,
                atol=1e-12,
            )

    def test_metrics_reconcile_with_ground_truth(self, bundle, scream_data):
        service = ServeService(bundle, ServeConfig(max_batch=8, max_delay=0.002, queue_bound=512))
        client = InProcessClient(service)
        X = scream_data.X
        sent_requests = 0
        sent_points = 0
        lock = threading.Lock()

        def worker() -> None:
            nonlocal sent_requests, sent_points
            for index in range(REQUESTS_PER_THREAD):
                rows = X[index % 16 : index % 16 + 2]
                client.predict(rows.tolist())
                with lock:
                    sent_requests += 1
                    sent_points += rows.shape[0]

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        snapshot = client.metrics()
        service.close()

        counters = snapshot["counters"]
        assert counters["requests"] == sent_requests == N_THREADS * REQUESTS_PER_THREAD
        assert counters["points"] == sent_points
        assert counters["shed"] == 0 and counters["timeouts"] == 0 and counters["errors"] == 0
        # Every accepted request produced exactly one latency observation,
        # and batches cover exactly the points that were sent.
        histograms = snapshot["histograms"]
        assert histograms["latency_seconds"]["count"] == sent_requests
        assert histograms["batch_size"]["sum"] == sent_points
        assert histograms["batch_size"]["count"] == counters["batches"]

    def test_overload_sheds_at_configured_bound(self, bundle, scream_data):
        config = ServeConfig(max_batch=1, max_delay=0.0, queue_bound=2, request_timeout=30.0)
        engine = InferenceEngine(bundle, config)
        gate = threading.Event()
        original = bundle.automl.predict_batch

        def slow_predict_batch(X):
            gate.wait(10.0)  # hold every batch until the test releases it
            return original(X)

        engine.bundle.automl.predict_batch = slow_predict_batch
        outcomes: list[str] = []
        lock = threading.Lock()

        def worker() -> None:
            try:
                engine.predict(scream_data.X[:1])
                outcome = "ok"
            except BackpressureError:
                outcome = "shed"
            with lock:
                outcomes.append(outcome)

        try:
            threads = [threading.Thread(target=worker) for _ in range(12)]
            for thread in threads:
                thread.start()
            # Let every worker reach submit before opening the gate: with a
            # wedged batcher, at most 1 (in flight) + 2 (queued) can be
            # accepted; the rest must shed rather than block.
            for _ in range(400):
                with lock:
                    if len(outcomes) >= 12 - (1 + config.queue_bound):
                        break
                threading.Event().wait(0.005)
            gate.set()
            for thread in threads:
                thread.join(30.0)
        finally:
            gate.set()
            engine.bundle.automl.predict_batch = original
            engine.close()

        shed = outcomes.count("shed")
        ok = outcomes.count("ok")
        assert ok + shed == 12
        assert shed >= 12 - (1 + config.queue_bound + 1)  # nearly all excess shed
        assert ok >= 1
        assert engine.metrics.counter("shed").value == shed
        assert engine.metrics.counter("requests").value == ok


class TestHotSwapUnderLoad:
    """Concurrent /predict across promote()/rollback(): whole versions only."""

    def test_swaps_never_tear(self, tmp_path, scream_data):
        from repro.automl import AutoMLClassifier

        X, y = scream_data.X, scream_data.y
        # v1 learns the labels, v2 learns their inversion, so a reply pairing
        # v1's version tag with v2's labels (a torn read) is detectable on
        # nearly every row.
        automl_v1 = AutoMLClassifier(
            n_iterations=4, ensemble_size=3, min_distinct_members=2, random_state=1
        ).fit(X, y)
        automl_v2 = AutoMLClassifier(
            n_iterations=4, ensemble_size=3, min_distinct_members=2, random_state=2
        ).fit(X, 1 - y)
        registry = ModelRegistry(tmp_path / "registry")
        registry.register("swap", automl_v1, X, scream_data.domains)
        registry.register("swap", automl_v2, X, scream_data.domains, promote=False)
        service = ServeService.from_registry(
            "swap",
            directory=registry.directory,
            config=ServeConfig(max_batch=8, max_delay=0.002, queue_bound=512, request_timeout=30.0),
        )
        offline = {1: automl_v1.predict(X), 2: automl_v2.predict(X)}

        stop = threading.Event()
        mismatches: list[tuple[int, list, list]] = []
        errors: list[BaseException] = []
        served = [0]
        lock = threading.Lock()

        def traffic(thread_index: int) -> None:
            index = thread_index
            while not stop.is_set():
                start = index % (X.shape[0] - ROWS_PER_REQUEST)
                index += 7
                rows = X[start : start + ROWS_PER_REQUEST]
                try:
                    response = service.predict(rows)
                except BackpressureError:
                    continue
                except BaseException as error:
                    with lock:
                        errors.append(error)
                    return
                expected = offline[response["version"]][start : start + ROWS_PER_REQUEST].tolist()
                with lock:
                    served[0] += 1
                    if response["labels"] != expected:
                        mismatches.append((response["version"], response["labels"], expected))

        threads = [threading.Thread(target=traffic, args=(i,)) for i in range(N_THREADS)]
        for thread in threads:
            thread.start()
        seen_versions = set()
        try:
            # Flip the promoted version back and forth under live traffic.
            for flip in range(6):
                registry.promote("swap", 2 if flip % 2 == 0 else 1)
                service.reload()
                seen_versions.add(service.version)
                threading.Event().wait(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(30.0)
            service.close()

        assert errors == []
        assert mismatches == []  # every reply was a whole version
        assert seen_versions == {1, 2}
        assert served[0] > 0


class TestShadowDoesNotChangeServedBytes:
    def test_mirroring_leaves_responses_bitwise_identical(self, bundle, fitted_automl, scream_data):
        from repro.serve import ShadowMirror

        X = scream_data.X
        config = ServeConfig(max_batch=8, max_delay=0.002, queue_bound=512)

        def serve_all(attach_mirror: bool):
            service = ServeService(bundle, config)
            mirror = None
            if attach_mirror:
                # The candidate disagrees with the incumbent (trained on
                # inverted labels would be ideal, but *any* model works:
                # mirrored predictions must never reach a caller).
                mirror = ShadowMirror(fitted_automl, fraction=1.0, max_rows=256)
                service.engine.attach_shadow(mirror)
            responses = {}
            errors: list[BaseException] = []
            lock = threading.Lock()

            def worker(thread_index: int) -> None:
                for request_index in range(REQUESTS_PER_THREAD):
                    start = (
                        thread_index * REQUESTS_PER_THREAD + request_index
                    ) * ROWS_PER_REQUEST % (X.shape[0] - ROWS_PER_REQUEST)
                    try:
                        response = service.predict(X[start : start + ROWS_PER_REQUEST])
                    except BaseException as error:
                        with lock:
                            errors.append(error)
                        return
                    with lock:
                        responses[(thread_index, request_index)] = response

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(N_THREADS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            # Close before snapshotting: mirroring runs after replies are
            # delivered, so the last batch's shadow counters land only once
            # the batcher thread has drained.
            service.close()
            metrics = service.metrics()
            assert errors == []
            return responses, metrics, mirror

        plain, plain_metrics, _ = serve_all(attach_mirror=False)
        shadowed, shadow_metrics, mirror = serve_all(attach_mirror=True)

        # Bitwise-identical served bytes, request by request.
        assert plain.keys() == shadowed.keys()
        for key, response in plain.items():
            assert shadowed[key]["labels"] == response["labels"]
            np.testing.assert_array_equal(
                np.asarray(shadowed[key]["proba"]), np.asarray(response["proba"])
            )
            assert shadowed[key]["in_uncertain_region"] == response["in_uncertain_region"]

        # The mirror really ran (fraction=1.0 mirrors every batch) ...
        stats = mirror.stats()
        assert stats["mirrored_batches"] == shadow_metrics["counters"]["batches"]
        assert stats["mirrored_rows"] == shadow_metrics["counters"]["points"]
        assert shadow_metrics["counters"]["shadow_rows"] == stats["mirrored_rows"]
        assert stats["errors"] == 0
        # ... and no request was shed or failed because of it.
        assert shadow_metrics["counters"]["shed"] == plain_metrics["counters"]["shed"] == 0
        assert shadow_metrics["counters"]["errors"] == 0
