"""Tests for the Wilcoxon test and the significance table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as scipy_stats

from repro.exceptions import ValidationError
from repro.stats import AlgorithmScores, SignificanceTable, wilcoxon_signed_rank


class TestWilcoxon:
    def test_clear_difference_small_p(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.0, 0.1, size=30)
        y = x + 0.5  # y is clearly larger
        result = wilcoxon_signed_rank(x, y, alternative="less")
        assert result.p_value < 1e-4
        assert result.significant()

    def test_no_difference_large_p(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=25)
        y = x + rng.normal(0, 1e-3, size=25)
        result = wilcoxon_signed_rank(x, y, alternative="less")
        assert result.p_value > 0.01

    def test_direction_of_alternative(self):
        x = np.arange(10.0)
        y = x + 1.0
        less = wilcoxon_signed_rank(x, y, alternative="less")
        greater = wilcoxon_signed_rank(x, y, alternative="greater")
        assert less.p_value < 0.05
        assert greater.p_value > 0.9

    def test_zero_differences_discarded(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        result = wilcoxon_signed_rank(x, x, alternative="less")
        assert result.n_effective == 0
        assert result.p_value == 1.0

    def test_exact_small_sample(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([2.0, 3.0, 4.0])
        result = wilcoxon_signed_rank(x, y, alternative="less")
        assert result.method == "exact"
        # All 3 differences negative: P(W+ <= 0) = 1/8.
        assert result.p_value == pytest.approx(1 / 8)

    def test_normal_approximation_large_sample(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=50)
        y = x + rng.normal(0.2, 0.5, size=50)
        result = wilcoxon_signed_rank(x, y, alternative="less")
        assert result.method == "normal"
        assert 0.0 <= result.p_value <= 1.0

    def test_matches_scipy_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            x = rng.normal(size=12)
            y = x + rng.normal(0.3, 0.8, size=12)
            ours = wilcoxon_signed_rank(x, y, alternative="less")
            theirs = scipy_stats.wilcoxon(x, y, alternative="less", mode="exact")
            assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_matches_scipy_normal_approx(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=60)
        y = x + rng.normal(0.1, 0.6, size=60)
        ours = wilcoxon_signed_rank(x, y, alternative="less")
        theirs = scipy_stats.wilcoxon(x, y, alternative="less", mode="approx", correction=True)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=0.02)

    def test_two_sided(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=15)
        y = x + 1.0
        result = wilcoxon_signed_rank(x, y, alternative="two-sided")
        one_sided = wilcoxon_signed_rank(x, y, alternative="less")
        assert result.p_value == pytest.approx(2 * one_sided.p_value, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValidationError):
            wilcoxon_signed_rank([1.0, 2.0], [1.0], alternative="less")
        with pytest.raises(ValidationError):
            wilcoxon_signed_rank([1.0], [1.0], alternative="weird")


class TestSignificanceTable:
    def _table(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0.7, 0.05, size=40)
        return SignificanceTable(
            [
                AlgorithmScores("weak", base - 0.05),
                AlgorithmScores("strong", base + 0.05),
                AlgorithmScores("same", base + rng.normal(0, 1e-4, size=40)),
            ]
        )

    def test_mean_std_formatting(self):
        table = self._table()
        text = table.scores("strong").formatted()
        assert "%" in text and "±" in text

    def test_p_value_direction(self):
        table = self._table()
        assert table.p_value("weak", "strong") < 0.01
        assert table.p_value("strong", "weak") > 0.9

    def test_self_comparison_is_nan(self):
        table = self._table()
        assert np.isnan(table.p_value("weak", "weak"))

    def test_matrix_against(self):
        table = self._table()
        matrix = table.matrix_against(["strong"])
        assert matrix["weak"]["strong"] < 0.01

    def test_format_table_text(self):
        text = self._table().format_table(["strong"])
        assert "P(X, strong)" in text
        assert "weak" in text

    def test_unknown_algorithm(self):
        table = self._table()
        with pytest.raises(ValidationError):
            table.p_value("weak", "nope")
        with pytest.raises(ValidationError):
            table.format_table(["nope"])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            SignificanceTable(
                [AlgorithmScores("a", np.ones(5)), AlgorithmScores("b", np.ones(6))]
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            SignificanceTable(
                [AlgorithmScores("a", np.ones(5)), AlgorithmScores("a", np.ones(5))]
            )

    def test_empty_scores_rejected(self):
        with pytest.raises(ValidationError):
            AlgorithmScores("a", np.array([]))


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(5, 40),
    shift=st.floats(-1.0, 1.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)
def test_wilcoxon_p_value_valid_probability_property(n, shift, seed):
    """p-values are always in [0, 1] and the two alternatives are coherent."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n)
    y = x + shift + rng.normal(0, 0.2, size=n)
    less = wilcoxon_signed_rank(x, y, alternative="less").p_value
    greater = wilcoxon_signed_rank(x, y, alternative="greater").p_value
    assert 0.0 <= less <= 1.0
    assert 0.0 <= greater <= 1.0
    # The two one-sided tests cannot both be tiny.
    assert less + greater >= 0.9
