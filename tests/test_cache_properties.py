"""Property-based tests for the artifact cache (hypothesis).

The cache's two load-bearing promises, attacked with generated inputs
rather than hand-picked ones:

1. **Key stability** — ``digest_payload`` / ``task_key`` are functions of
   payload *content*: dict insertion order, numpy scalar wrapping, and
   provenance round-trips must not move a key (a moved key silently
   forfeits every cached artifact).
2. **Prune never corrupts** — after ``prune()`` to any budget, every
   surviving entry still loads to exactly the value that was stored.

Also pins the digest/round-trip behaviour of the payload types the
experiment grid actually ships: ``LabeledDataset``, ``AutoMLSpec``,
ndarrays, and nested feedback mappings.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.automl.spec import AutoMLSpec
from repro.core.subspace import FeatureDomain
from repro.datasets.scream import LabeledDataset
from repro.runtime import ArtifactCache, Provenance, Task, digest_payload, task_key

SETTINGS = settings(max_examples=25, deadline=None)

# JSON-ish payload scalars the digest canonicalizes structurally.
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)
payloads = st.dictionaries(st.text(min_size=1, max_size=10), scalars, max_size=6)


def _shuffled(mapping: dict, order: list[int]) -> dict:
    items = list(mapping.items())
    return {items[i][0]: items[i][1] for i in order}


class TestDigestStability:
    @SETTINGS
    @given(payload=payloads, data=st.data())
    def test_digest_ignores_dict_insertion_order(self, payload, data):
        order = data.draw(st.permutations(range(len(payload))))
        assert digest_payload(payload) == digest_payload(_shuffled(payload, list(order)))

    @SETTINGS
    @given(payload=payloads, seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_task_key_ignores_label_and_dict_order(self, payload, seed):
        reordered = _shuffled(payload, list(reversed(range(len(payload)))))
        a = Task(fn_name="probe.draw", payload=payload, seed_path=(seed,), label="a")
        b = Task(fn_name="probe.draw", payload=reordered, seed_path=(seed,), label="something else")
        assert task_key(a) == task_key(b)

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_seed_path_always_distinguishes(self, seed):
        a = Task(fn_name="probe.draw", payload={"n": 1}, seed_path=(seed,))
        b = Task(fn_name="probe.draw", payload={"n": 1}, seed_path=(seed, 0))
        assert task_key(a) != task_key(b)

    @SETTINGS
    @given(value=st.integers(min_value=0, max_value=2**31 - 1))
    def test_numpy_scalars_digest_like_python_scalars(self, value):
        assert digest_payload({"n": value}) == digest_payload({"n": np.int64(value)})

    @SETTINGS
    @given(key=st.text(min_size=1, max_size=64))
    def test_provenance_digests_by_key_not_value(self, key):
        # The grid's fix for non-canonical model pickles: two different
        # in-memory values with the same provenance share a digest, and
        # the wrapped value's bytes never enter the hash.
        same = digest_payload({"m": Provenance(key, object())})
        assert same == digest_payload({"m": Provenance(key, np.arange(5))})
        assert same != digest_payload({"m": Provenance(key + "x", object())})


class TestGridPayloadTypes:
    """Digest stability + cache round-trip for what the grid really ships."""

    def _dataset(self, rng: np.random.Generator) -> LabeledDataset:
        n = int(rng.integers(3, 12))
        names = [f"f{i}" for i in range(4)]
        return LabeledDataset(
            X=rng.normal(size=(n, 4)),
            y=rng.integers(0, 2, size=n),
            feature_names=names,
            domains=[FeatureDomain(name, 0.0, 1.0) for name in names],
        )

    @SETTINGS
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_dataset_payload_round_trips_with_stable_digest(self, seed, tmp_path_factory):
        rng = np.random.default_rng(seed)
        dataset = self._dataset(rng)
        payload = {"train": dataset, "factory": AutoMLSpec(n_iterations=3, ensemble_size=2)}
        digest = digest_payload(payload)
        # A pickle round-trip (what crossing a process boundary or the
        # cache does to a payload) must not move the digest.
        assert digest_payload(pickle.loads(pickle.dumps(payload))) == digest

        cache = ArtifactCache(tmp_path_factory.mktemp("cache"))
        cache.store("ab" + digest[2:], payload)
        hit, loaded = cache.load("ab" + digest[2:])
        assert hit
        np.testing.assert_array_equal(loaded["train"].X, dataset.X)
        np.testing.assert_array_equal(loaded["train"].y, dataset.y)
        assert digest_payload(loaded) == digest

    @SETTINGS
    @given(
        threshold=st.one_of(st.none(), st.floats(0.01, 10.0)),
        grid_size=st.integers(4, 64),
    )
    def test_feedback_mapping_digest_is_order_independent(self, threshold, grid_size):
        forward = {"threshold": threshold, "threshold_scale": 2.0, "grid_size": grid_size}
        backward = {"grid_size": grid_size, "threshold_scale": 2.0, "threshold": threshold}
        assert digest_payload(forward) == digest_payload(backward)


class TestPruneNeverCorrupts:
    @SETTINGS
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=12),
        budget_fraction=st.floats(min_value=0.0, max_value=1.2),
    )
    def test_survivors_load_exactly_after_prune(self, sizes, budget_fraction, tmp_path_factory):
        cache = ArtifactCache(tmp_path_factory.mktemp("cache"))
        stored: dict[str, bytes] = {}
        for index, size in enumerate(sizes):
            key = f"{index:02x}" + "0" * 62
            value = bytes(range(256)) * (size // 256) + bytes(size % 256)
            cache.store(key, value)
            stored[key] = value
        total = sum(cache.path_for(key).stat().st_size for key in stored)
        cache.prune(int(total * budget_fraction))
        for key, value in stored.items():
            if cache.path_for(key).exists():
                hit, loaded = cache.load(key)
                assert hit and loaded == value
        assert cache.corrupt_evictions == 0
