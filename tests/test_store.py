"""Tests for repro.store — artifact server, wire protocol, remote tier.

Four promises under test:

1. **Wire integrity** — a blob survives publish→fetch bitwise (property-
   tested over arbitrary bytes); a digest mismatch is rejected with a
   typed 400 and *nothing* is installed; oversized bodies get a typed
   413; corrupted transfers are never returned as data by the client.
2. **Transport equivalence** — the threaded and event-loop servers
   render byte-identical status+body for an identical request battery
   (both route through one :class:`StoreDispatcher`).
3. **Remote tier semantics** — read-through installs are byte-identical
   to local execution, write-through pushes replicate to the origin,
   retries are bounded and deterministic, and a dead peer trips the
   breaker into local-only degradation instead of failing the run.
4. **The grid contract** — an empty local cache against a warmed store
   executes zero tasks and reproduces records bitwise; killing the
   server mid-run degrades gracefully and is recorded in grid metadata.

Plus regression coverage for the cache races the store work surfaced:
concurrent same-key installs can never tear a blob, and ``remove``/
``prune``/``info`` tolerate entries vanishing mid-sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import (
    PayloadTooLargeError,
    StoreError,
    StoreIntegrityError,
    StoreUnavailableError,
    ValidationError,
)
from repro.experiments import Table1Config, run_table1
from repro.experiments.grid import clear_dataset_memo
from repro.runtime import ArtifactCache, SerialExecutor, TaskRuntime
from repro.store import (
    BLOB_DIGEST_HEADER,
    RemoteCacheTier,
    StoreClient,
    StoreDispatcher,
    StoreService,
    blob_digest,
    serve_store_async,
    serve_store_http,
)
from repro.store.server import BLOB_SIZE_HEADER


def _key(tag: str) -> str:
    """A valid (64-hex) store key derived from a test tag."""
    return hashlib.sha256(tag.encode("utf-8")).hexdigest()


def _raw(url: str, method: str, path: str, body: bytes | None = None, headers=None):
    """One HTTP exchange; errors come back as (status, body) like successes."""
    request = urllib.request.Request(url + path, data=body, method=method, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _start(transport: str, service: StoreService):
    return serve_store_http(service) if transport == "threaded" else serve_store_async(service)


@pytest.fixture(params=["threaded", "async"])
def store_server(request, tmp_path):
    service = StoreService(tmp_path / "store")
    server = _start(request.param, service)
    yield server
    server.close()


class TestStoreService:
    def test_put_get_round_trip(self, tmp_path):
        service = StoreService(tmp_path)
        key, blob = _key("rt"), b"artifact bytes" * 100
        result = service.put_blob(key, blob, blob_digest(blob))
        assert result == {"key": key, "bytes": len(blob), "sha256": blob_digest(blob), "installed": True}
        got, digest = service.get_blob(key)
        assert got == blob and digest == blob_digest(blob)
        assert service.stat_key(key)["bytes"] == len(blob)

    def test_digest_mismatch_installs_nothing(self, tmp_path):
        service = StoreService(tmp_path)
        key = _key("bad-digest")
        with pytest.raises(StoreIntegrityError, match="not installing"):
            service.put_blob(key, b"real bytes", blob_digest(b"other bytes"))
        assert service.cache.read_blob(key) is None
        assert not list(tmp_path.glob("*/*.tmp"))  # the rejected temp file is gone too
        assert service.metrics()["counters"]["integrity_rejections"] == 1

    def test_missing_digest_header_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="X-Repro-Blob-SHA256"):
            StoreService(tmp_path).put_blob(_key("k"), b"x", None)

    def test_oversize_rejected_declared_and_streamed(self, tmp_path):
        service = StoreService(tmp_path, max_blob_bytes=16)
        key, blob = _key("big"), b"y" * 32
        with pytest.raises(PayloadTooLargeError, match="exceeds the store bound"):
            service.put_blob(key, blob, blob_digest(blob))
        # Streamed without a declared length: the running-size check fires.
        with pytest.raises(PayloadTooLargeError):
            service.put_stream(key, (b"y" * 8 for _ in range(4)), blob_digest(blob))
        assert service.cache.read_blob(key) is None
        assert service.metrics()["counters"]["oversized_rejections"] == 2

    def test_keys_must_be_full_sha256_digests(self, tmp_path):
        service = StoreService(tmp_path)
        for bad in ("abcd1234", "x" * 64, "A" * 63):
            with pytest.raises(ValidationError, match="64-char sha256"):
                service.get_blob(bad)

    def test_closed_store_is_unavailable(self, tmp_path):
        service = StoreService(tmp_path)
        service.close()
        for call in (
            lambda: service.get_blob(_key("k")),
            lambda: service.put_blob(_key("k"), b"x", blob_digest(b"x")),
            lambda: service.stat(),
            lambda: service.healthz(),
        ):
            with pytest.raises(StoreUnavailableError, match="shut down"):
                call()

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(blob=st.binary(min_size=0, max_size=4096))
    def test_round_trip_bitwise_for_arbitrary_bytes(self, tmp_path, blob):
        """Publish→fetch is bitwise through the shared dispatcher."""
        dispatcher = StoreDispatcher(StoreService(tmp_path))
        key = blob_digest(blob)  # any 64-hex key works; this one is unique per blob
        status, body, _, _ = dispatcher.handle(
            "PUT", f"/artifacts/{key}", blob, {BLOB_DIGEST_HEADER: blob_digest(blob)}
        )
        assert status == 200 and json.loads(body)["installed"] is True
        status, body, content_type, headers = dispatcher.handle("GET", f"/artifacts/{key}")
        assert status == 200 and content_type == "application/octet-stream"
        assert body == blob
        assert headers[BLOB_DIGEST_HEADER] == blob_digest(blob)
        assert headers[BLOB_SIZE_HEADER] == str(len(blob))


class TestWireProtocol:
    def test_push_fetch_head_miss(self, store_server):
        client = StoreClient(store_server.url)
        key, blob = _key("wire"), b"\x00\x01wire bytes\xff" * 50
        assert client.fetch(key) is None  # miss before push
        assert client.head(key) is None
        result = client.push(key, blob)
        assert result["sha256"] == blob_digest(blob) and result["installed"] is True
        assert client.fetch(key) == blob
        head = client.head(key)
        assert head == {"key": key, "bytes": len(blob), "sha256": blob_digest(blob)}
        assert client.healthz()["role"] == "artifact-store"
        assert client.stat()["entries"] == 1

    def test_digest_mismatch_is_typed_400_and_not_installed(self, store_server):
        key = _key("wire-bad")
        status, body, _ = _raw(
            store_server.url, "PUT", f"/artifacts/{key}",
            body=b"actual bytes", headers={BLOB_DIGEST_HEADER: blob_digest(b"claimed other")},
        )
        payload = json.loads(body)
        assert status == 400 and payload["type"] == "StoreIntegrityError"
        status, _, _ = _raw(store_server.url, "GET", f"/artifacts/{key}")
        assert status == 404

    def test_unknown_routes_are_404(self, store_server):
        for method, path in (("GET", "/nope"), ("PUT", "/stat")):
            status, body, _ = _raw(store_server.url, method, path, body=b"" if method != "GET" else None)
            assert status == 404 and json.loads(body)["type"] == "NotFound"

    def test_unknown_methods_are_404_in_the_dispatcher(self, tmp_path):
        status, body, _, _ = StoreDispatcher(StoreService(tmp_path)).handle(
            "DELETE", "/artifacts/" + _key("k")
        )
        assert status == 404 and json.loads(body)["type"] == "NotFound"

    def test_oversized_body_is_typed_413(self, tmp_path):
        for transport in ("threaded", "async"):
            service = StoreService(tmp_path / transport, max_blob_bytes=64)
            server = _start(transport, service)
            try:
                blob = b"z" * 256
                status, body, _ = _raw(
                    server.url, "PUT", f"/artifacts/{_key('big')}",
                    body=blob, headers={BLOB_DIGEST_HEADER: blob_digest(blob)},
                )
                payload = json.loads(body)
                assert status == 413, transport
                assert payload["type"] == "PayloadTooLargeError"
                assert "exceeds the store bound (64 bytes)" in payload["error"]
                assert service.metrics()["counters"]["oversized_rejections"] == 1
            finally:
                server.close()

    def test_client_rejects_tampered_transfer(self):
        """A body that does not hash to the server's claim is never returned."""

        class _LyingHandler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"tampered bytes"
                self.send_response(200)
                self.send_header("Content-Type", "application/octet-stream")
                self.send_header("Content-Length", str(len(body)))
                self.send_header(BLOB_DIGEST_HEADER, blob_digest(b"the bytes the server promised"))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002 - stdlib signature
                pass

        liar = ThreadingHTTPServer(("127.0.0.1", 0), _LyingHandler)
        thread = threading.Thread(target=liar.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = liar.server_address[:2]
            client = StoreClient(f"http://{host}:{port}")
            with pytest.raises(StoreIntegrityError, match="hash to"):
                client.fetch(_key("tampered"))
        finally:
            liar.shutdown()
            liar.server_close()

    def test_transports_render_identical_responses(self, tmp_path):
        """One request battery, two transports, byte-identical status+body."""
        key, blob = _key("equiv"), b"equivalence payload" * 20
        big = b"B" * 2048
        battery = [
            ("GET", f"/artifacts/{key}", None, {}),  # miss
            ("PUT", f"/artifacts/{key}", blob, {BLOB_DIGEST_HEADER: blob_digest(blob)}),
            ("GET", f"/artifacts/{key}", None, {}),  # hit
            ("HEAD", f"/artifacts/{key}", None, {}),
            ("PUT", f"/artifacts/{key}", blob, {BLOB_DIGEST_HEADER: blob_digest(b"wrong")}),
            ("PUT", f"/artifacts/{key}", blob, {}),  # missing digest header
            ("PUT", f"/artifacts/{_key('big')}", big, {BLOB_DIGEST_HEADER: blob_digest(big)}),
            ("GET", "/artifacts/not-a-key", None, {}),
            ("GET", "/unknown", None, {}),
            ("GET", f"/stat/{key}", None, {}),
            ("GET", "/metrics", None, {}),  # identical histories → identical counters
        ]
        transcripts = {}
        for transport in ("threaded", "async"):
            server = _start(transport, StoreService(tmp_path / transport, max_blob_bytes=1024))
            try:
                transcripts[transport] = [
                    _raw(server.url, method, path, body=body, headers=headers)[:2]
                    for method, path, body, headers in battery
                ]
            finally:
                server.close()
        assert transcripts["threaded"] == transcripts["async"]

    @pytest.mark.slow
    def test_concurrent_fetches_of_one_key(self, store_server):
        """Many sockets streaming the same entry all get the exact bytes."""
        key = _key("hot")
        blob = os.urandom(2 * 1024 * 1024)
        StoreClient(store_server.url).push(key, blob)
        results: list[bytes | None] = [None] * 8
        errors: list[Exception] = []
        barrier = threading.Barrier(len(results))

        def fetch(slot: int) -> None:
            client = StoreClient(store_server.url)
            barrier.wait()
            try:
                results[slot] = client.fetch(key)
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        threads = [threading.Thread(target=fetch, args=(i,)) for i in range(len(results))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert all(result == blob for result in results)


class _ScriptedClient:
    """StoreClient stand-in: scripted fetch/push outcomes, recorded calls."""

    def __init__(self, *, fetch=None, push=None):
        self.fetch_calls: list[str] = []
        self.push_calls: list[str] = []
        self._fetch = fetch
        self._push = push

    def fetch(self, key):
        self.fetch_calls.append(key)
        if callable(self._fetch):
            return self._fetch(key)
        return self._fetch

    def push(self, key, blob):
        self.push_calls.append(key)
        if callable(self._push):
            return self._push(key, blob)
        return {"installed": True}


def _raise(error):
    def inner(*args):
        raise error

    return inner


class TestRemoteCacheTier:
    def test_read_through_installs_bitwise_locally(self, tmp_path):
        origin = StoreService(tmp_path / "origin")
        origin.cache.store(_key("shared"), {"table": [1.0, 2.5], "n": 7})
        server = serve_store_http(origin)
        tier = RemoteCacheTier(ArtifactCache(tmp_path / "local"), server.url, background_push=False)
        try:
            hit, value = tier.load(_key("shared"))
            assert hit and value == {"table": [1.0, 2.5], "n": 7}
            # The install is the origin's exact bytes, not a re-pickle.
            assert tier.local.read_blob(_key("shared")) == origin.cache.read_blob(_key("shared"))
            assert tier.remote_stats()["remote_hits"] == 1
            hit, _ = tier.load(_key("shared"))  # now a purely local hit
            assert hit and tier.remote_stats()["remote_hits"] == 1
        finally:
            tier.close()
            server.close()

    def test_write_through_replicates_to_origin(self, tmp_path):
        origin = StoreService(tmp_path / "origin")
        server = serve_store_http(origin)
        tier = RemoteCacheTier(ArtifactCache(tmp_path / "local"), server.url, background_push=False)
        try:
            tier.store(_key("pushed"), [3, 4, 5])
            assert origin.cache.read_blob(_key("pushed")) == tier.local.read_blob(_key("pushed"))
            assert tier.remote_stats()["pushes"] == 1
        finally:
            tier.close()
            server.close()

    def test_background_push_flush_drains(self, tmp_path):
        origin = StoreService(tmp_path / "origin")
        server = serve_store_http(origin)
        tier = RemoteCacheTier(ArtifactCache(tmp_path / "local"), server.url)
        try:
            for index in range(4):
                tier.store(_key(f"bg{index}"), index)
            assert tier.flush(timeout=10.0) is True
            assert tier.remote_stats()["pushes"] == 4
            assert sorted(origin.cache.keys()) == sorted(tier.local.keys())
        finally:
            tier.close()
            server.close()

    def test_dead_peer_degrades_to_local_only(self, tmp_path):
        # Bind-then-close: a port with nothing listening.
        probe = ThreadingHTTPServer(("127.0.0.1", 0), BaseHTTPRequestHandler)
        host, port = probe.server_address[:2]
        probe.server_close()
        tier = RemoteCacheTier(
            ArtifactCache(tmp_path), f"http://{host}:{port}",
            retries=0, failure_threshold=1, background_push=False,
        )
        hit, _ = tier.load(_key("gone"))
        assert not hit
        stats = tier.remote_stats()
        assert stats["degraded"] is True and stats["degradations"] == 1
        assert stats["remote_fetch_failures"] == 1
        # Local-only service continues: stores land, loads answer, pushes drop.
        tier.store(_key("local-life"), "still works")
        assert tier.load(_key("local-life")) == (True, "still works")
        assert tier.remote_stats()["push_drops"] == 1
        tier.close()

    def test_fetch_retries_are_bounded_and_deterministic(self, tmp_path):
        client = _ScriptedClient(fetch=_raise(StoreUnavailableError("down")))
        tier = RemoteCacheTier(ArtifactCache(tmp_path), "http://unused", retries=2, client=client)
        hit, _ = tier.load(_key("r"))
        assert not hit
        assert len(client.fetch_calls) == 3  # retries + 1, back-to-back
        assert tier.remote_stats()["remote_fetch_failures"] == 1
        tier.close()

    def test_breaker_trips_after_threshold_and_stops_calling(self, tmp_path):
        client = _ScriptedClient(fetch=_raise(StoreUnavailableError("down")))
        tier = RemoteCacheTier(
            ArtifactCache(tmp_path), "http://unused",
            retries=0, failure_threshold=2, client=client,
        )
        tier.load(_key("a"))
        assert tier.degraded is False
        tier.load(_key("b"))
        assert tier.degraded is True
        tier.load(_key("c"))  # breaker open: the wire is not touched again
        assert len(client.fetch_calls) == 2
        assert tier.remote_stats()["degradations"] == 1
        tier.close()

    def test_integrity_failure_is_never_retried(self, tmp_path):
        client = _ScriptedClient(fetch=_raise(StoreIntegrityError("corrupt")))
        tier = RemoteCacheTier(ArtifactCache(tmp_path), "http://unused", retries=3, client=client)
        hit, _ = tier.load(_key("c"))
        assert not hit
        assert len(client.fetch_calls) == 1  # corrupt bytes are not worth re-reading
        stats = tier.remote_stats()
        assert stats["integrity_rejections"] == 1 and stats["degraded"] is False
        tier.close()

    def test_remote_miss_counts_without_degrading(self, tmp_path):
        client = _ScriptedClient(fetch=None)
        tier = RemoteCacheTier(ArtifactCache(tmp_path), "http://unused", client=client)
        assert tier.load(_key("m")) == (False, None)
        stats = tier.remote_stats()
        assert stats["remote_misses"] == 1 and stats["degraded"] is False
        tier.close()

    def test_typed_push_rejection_does_not_trip_breaker(self, tmp_path):
        client = _ScriptedClient(push=_raise(PayloadTooLargeError("too big")))
        tier = RemoteCacheTier(
            ArtifactCache(tmp_path), "http://unused",
            failure_threshold=1, background_push=False, client=client,
        )
        tier.store(_key("fat"), "x" * 64)
        stats = tier.remote_stats()
        assert stats["push_failures"] == 1 and stats["degraded"] is False
        tier.close()

    def test_push_queue_overflow_drops_instead_of_blocking(self, tmp_path):
        release = threading.Event()

        def blocking_push(key, blob):
            release.wait(timeout=30)
            return {"installed": True}

        client = _ScriptedClient(push=blocking_push)
        tier = RemoteCacheTier(
            ArtifactCache(tmp_path), "http://unused",
            max_pending_pushes=1, client=client,
        )
        tier.store(_key("q0"), 0)  # dequeued by the worker, blocks in push
        for _ in range(50):  # wait (bounded) for the worker to take it
            if not tier.remote_stats()["pending_pushes"]:
                break
            threading.Event().wait(0.01)
        tier.store(_key("q1"), 1)  # fills the queue
        tier.store(_key("q2"), 2)  # overflow: dropped, store() returns at once
        assert tier.remote_stats()["push_drops"] >= 1
        release.set()
        assert tier.flush(timeout=10.0) is True
        tier.close()

    def test_everything_else_delegates_to_local(self, tmp_path):
        local = ArtifactCache(tmp_path)
        tier = RemoteCacheTier(local, "http://unused", client=_ScriptedClient())
        tier.store(_key("d"), "v")
        assert tier.keys() == local.keys()
        assert tier.path_for(_key("d")) == local.path_for(_key("d"))
        assert tier.info()["entries"] == 1
        tier.close()

    def test_runtime_store_url_wires_the_tier(self, tmp_path):
        with pytest.raises(ValidationError, match="requires a local cache"):
            TaskRuntime(SerialExecutor(), store_url="http://127.0.0.1:1")
        local = ArtifactCache(tmp_path)
        runtime = TaskRuntime(SerialExecutor(), cache=local, store_url="http://127.0.0.1:1/")
        assert isinstance(runtime.cache, RemoteCacheTier)
        assert runtime.cache.local is local
        assert runtime.cache.url == "http://127.0.0.1:1"
        runtime.cache.close()


class TestCacheRaceRegressions:
    def test_concurrent_same_key_stores_never_tear(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = _key("torn")
        payloads = [bytes([value]) * 4096 for value in range(8)]
        barrier = threading.Barrier(len(payloads))

        def writer(payload: bytes) -> None:
            barrier.wait()
            for _ in range(10):
                cache.store(key, payload)

        threads = [threading.Thread(target=writer, args=(p,)) for p in payloads]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        hit, value = cache.load(key)
        assert hit and value in payloads  # a complete blob from *one* writer
        assert not list(tmp_path.glob("*/*.tmp"))  # every temp file consumed

    def test_install_survives_interleaved_remove(self, tmp_path, monkeypatch):
        """Injected interleaving: remove() fires between temp-write and rename."""
        import repro.runtime.cache as cache_mod

        cache = ArtifactCache(tmp_path)
        key = _key("interleave")
        cache.store(key, "old")
        real_replace = os.replace
        fired = []

        def interleaved(src, dst):
            if not fired:
                fired.append(True)
                assert cache.remove(key) is True  # concurrent eviction wins the gap
                assert cache.remove(key) is False  # ...and a second sweep is a no-op, not a crash
            real_replace(src, dst)

        monkeypatch.setattr(cache_mod.os, "replace", interleaved)
        cache.store(key, "new")
        assert cache.load(key) == (True, "new")  # the full rename still lands

    def test_prune_tolerates_entries_vanishing_mid_sweep(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        keys = [_key(f"p{index}") for index in range(3)]
        for index, key in enumerate(keys):
            cache.store(key, index)
        real_entries = cache._entries

        def racing_entries():
            for index, path in enumerate(real_entries()):
                if index == 0:
                    path.unlink()  # a concurrent remove() between glob and stat
                yield path

        cache._entries = racing_entries
        assert cache.prune(0) == 2  # survivors swept; the vanished entry skipped
        assert cache.keys() == []

    def test_info_tolerates_entries_vanishing_mid_sweep(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for index in range(3):
            cache.store(_key(f"i{index}"), index)
        real_entries = cache._entries

        def racing_entries():
            for index, path in enumerate(real_entries()):
                if index == 1:
                    path.unlink()
                yield path

        cache._entries = racing_entries
        assert cache.info()["entries"] == 2


# Deliberately tiny: one repeat, two strategies — a real sharded grid run
# (datasets, initial fit, cells) in seconds, not minutes.
GRID_CONFIG = Table1Config(
    n_train=50, n_test=60, n_pool=40, n_feedback=8, n_test_sets=3,
    n_repeats=1, cross_runs=2, automl_iterations=3, ensemble_size=3,
    min_distinct_members=2, grid_size=8,
)
GRID_ALGORITHMS = ["no_feedback", "within_ale"]
#: datasets (eval + train reservoir) + initial fits + (repeats × strategies) cells
GRID_UNITS = 2 + GRID_CONFIG.n_repeats + GRID_CONFIG.n_repeats * len(GRID_ALGORITHMS)


@pytest.fixture(scope="module")
def cold_grid(tmp_path_factory):
    """One cold, cache-backed grid run: the origin every other run warms from."""
    cache_dir = tmp_path_factory.mktemp("store-origin-cache")
    clear_dataset_memo()
    runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir))
    table, record = run_table1(GRID_CONFIG, algorithms=list(GRID_ALGORITHMS), runtime=runtime)
    assert runtime.stats["executed"] == GRID_UNITS
    return cache_dir, table, record


class TestRemoteWarmGrid:
    def test_warm_store_executes_nothing_and_reproduces_bitwise(self, cold_grid, tmp_path):
        cache_dir, cold_table, _ = cold_grid
        origin = StoreService(cache_dir)
        server = serve_store_http(origin)
        runtime = TaskRuntime(
            SerialExecutor(), cache=ArtifactCache(tmp_path / "empty-local"), store_url=server.url
        )
        try:
            clear_dataset_memo()
            table, record = run_table1(
                GRID_CONFIG, algorithms=list(GRID_ALGORITHMS), runtime=runtime
            )
            # Zero executions: every unit answered across the wire.
            assert runtime.stats["executed"] == 0
            assert runtime.stats["cache_hits"] == GRID_UNITS
            for name in GRID_ALGORITHMS:
                np.testing.assert_array_equal(
                    cold_table.scores(name).scores, table.scores(name).scores
                )
            store_meta = record.metadata["grid"]["store"]
            assert store_meta["degraded"] is False
            assert store_meta["remote_hits"] == GRID_UNITS
            assert store_meta["url"] == server.url
            # Installed artifacts are the origin's exact bytes.
            local = runtime.cache.local
            assert sorted(local.keys()) == sorted(origin.cache.keys())
            for key in local.keys():
                assert local.read_blob(key) == origin.cache.read_blob(key)
        finally:
            runtime.cache.close()
            server.close()

    def test_server_killed_mid_session_degrades_to_local(self, cold_grid, tmp_path):
        _, cold_table, _ = cold_grid
        origin = StoreService(tmp_path / "origin")
        server = serve_store_http(origin)
        runtime = TaskRuntime(
            SerialExecutor(), cache=ArtifactCache(tmp_path / "local"), store_url=server.url
        )
        try:
            assert runtime.cache.client.healthz()["status"] == "ok"  # peer alive at start
            server.close()  # ...and killed before the grid's first fetch
            clear_dataset_memo()
            table, record = run_table1(
                GRID_CONFIG, algorithms=list(GRID_ALGORITHMS), runtime=runtime
            )
            # The grid completed locally and recorded the degradation.
            store_meta = record.metadata["grid"]["store"]
            assert store_meta["degraded"] is True
            assert store_meta["degradations"] == 1
            assert runtime.stats["executed"] == GRID_UNITS
            for name in GRID_ALGORITHMS:
                np.testing.assert_array_equal(
                    cold_table.scores(name).scores, table.scores(name).scores
                )
        finally:
            runtime.cache.close()


class TestStoreErrors:
    def test_error_hierarchy(self):
        for kind in (StoreIntegrityError, PayloadTooLargeError, StoreUnavailableError):
            assert issubclass(kind, StoreError)

    def test_unmapped_errors_reraise(self, tmp_path):
        dispatcher = StoreDispatcher(StoreService(tmp_path))
        with pytest.raises(KeyError):
            dispatcher.error_response(KeyError("untyped"))
