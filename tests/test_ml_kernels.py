"""Tests for the flat-array ensemble prediction kernels.

The load-bearing property is *bitwise* identity: the TreeBank fast path
must reproduce the legacy per-member loops' float sequences exactly, or
the golden-master fixtures and the serve offline-vs-served tests drift.
"""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml import (
    ExtraTreesClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    TreeBank,
    per_member_fallback,
)
from repro.ml.forest import _MAX_BOOTSTRAP_REDRAWS, _bootstrap_sample
from repro.ml.kernels import bank_enabled
from repro.ml.tree import DecisionTreeClassifier, _apply_tree


def _dataset(seed, n=120, n_features=5, n_classes=3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, n_features))
    y = rng.integers(0, n_classes, size=n)
    return X, y


class TestTreeBank:
    def _fitted_trees(self, seed, n_trees=4):
        X, y = _dataset(seed)
        trees = [
            DecisionTreeClassifier(max_depth=d, random_state=seed + d).fit(X, y)
            for d in range(2, 2 + n_trees)
        ]
        return X, trees

    def test_apply_matches_per_tree_apply(self):
        X, trees = self._fitted_trees(seed=0)
        bank = TreeBank([tree.tree_ for tree in trees])
        leaves = bank.apply(X)
        assert leaves.shape == (len(trees), X.shape[0])
        for t, tree in enumerate(trees):
            expected = _apply_tree(tree.tree_, X) + bank.offsets[t]
            assert np.array_equal(leaves[t], expected)

    def test_offsets_are_node_count_prefix_sums(self):
        _, trees = self._fitted_trees(seed=1)
        bank = TreeBank([tree.tree_ for tree in trees])
        sizes = [tree.tree_["feature"].shape[0] for tree in trees]
        assert bank.offsets[0] == 0
        assert np.array_equal(np.diff(bank.offsets), sizes)
        assert bank.n_nodes == sum(sizes)
        assert bank.n_trees == len(trees)

    def test_value_scatter_preserves_bits_and_zeros_rest(self):
        X, y = _dataset(seed=2, n_classes=4)
        tree = DecisionTreeClassifier(max_depth=3, random_state=2).fit(X, y)
        columns = np.array([1, 2, 4, 5], dtype=np.int64)
        bank = TreeBank([tree.tree_], value_columns=[columns], n_value_columns=7)
        assert bank.value.shape == (tree.tree_["value"].shape[0], 7)
        assert np.array_equal(bank.value[:, columns], tree.tree_["value"])
        rest = np.setdiff1d(np.arange(7), columns)
        assert np.all(bank.value[:, rest] == 0.0)

    def test_validation(self):
        _, trees = self._fitted_trees(seed=3, n_trees=2)
        dicts = [tree.tree_ for tree in trees]
        with pytest.raises(ValidationError, match="at least one tree"):
            TreeBank([])
        with pytest.raises(ValidationError, match="together"):
            TreeBank(dicts, value_columns=[np.arange(3), np.arange(3)])
        with pytest.raises(ValidationError, match="column maps"):
            TreeBank(dicts, value_columns=[np.arange(3)], n_value_columns=3)
        with pytest.raises(ValidationError, match="the map names"):
            TreeBank(dicts, value_columns=[np.arange(2), np.arange(2)], n_value_columns=3)


class TestForestKernel:
    @pytest.mark.parametrize("cls", [RandomForestClassifier, ExtraTreesClassifier])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bank_bitwise_equals_per_member(self, cls, seed):
        X, y = _dataset(seed)
        model = cls(n_estimators=12, max_depth=5, random_state=seed).fit(X, y)
        X_test = np.random.default_rng(seed + 100).normal(size=(64, X.shape[1]))
        assert np.array_equal(model.predict_proba(X_test), model._predict_proba_per_member(X_test))

    def test_class_subset_members_bitwise(self):
        # A tiny bootstrapped fit makes some member trees miss a class,
        # exercising the value-scatter path of the bank.
        rng = np.random.default_rng(7)
        X = rng.normal(size=(12, 3))
        y = np.array([0] * 5 + [1] * 5 + [2] * 2)
        model = RandomForestClassifier(n_estimators=20, max_depth=3, random_state=7).fit(X, y)
        assert any(tree.classes_.size < model.n_classes_ for tree in model.estimators_)
        assert np.array_equal(model.predict_proba(X), model._predict_proba_per_member(X))

    def test_fallback_context_routes_and_restores(self):
        X, y = _dataset(seed=4)
        model = RandomForestClassifier(n_estimators=6, random_state=4).fit(X, y)
        fast = model.predict_proba(X)
        assert bank_enabled()
        with per_member_fallback():
            assert not bank_enabled()
            assert np.array_equal(model.predict_proba(X), fast)
        assert bank_enabled()

    def test_pickle_drops_bank_and_predicts_identically(self):
        X, y = _dataset(seed=5)
        model = RandomForestClassifier(n_estimators=6, random_state=5).fit(X, y)
        before = model.predict_proba(X)  # forces bank construction
        assert model._bank is not None
        restored = pickle.loads(pickle.dumps(model))
        assert restored._bank is None
        assert np.array_equal(restored.predict_proba(X), before)

    def test_single_class_fit_raises(self):
        X = np.random.default_rng(6).normal(size=(20, 3))
        with pytest.raises(ValidationError, match="at least 2 distinct classes"):
            RandomForestClassifier(n_estimators=3, random_state=6).fit(X, np.zeros(20))

    def test_bootstrap_redraw_cap_raises(self):
        class _StuckRng:
            """Always samples row 0 — every draw is single-class."""

            def integers(self, low, high, size):
                return np.zeros(size, dtype=np.int64)

        encoded = np.array([0, 1, 0, 1])
        with pytest.raises(ValidationError, match="redraws"):
            _bootstrap_sample(_StuckRng(), encoded, encoded.size, max_redraws=5)
        assert _MAX_BOOTSTRAP_REDRAWS >= 5

    def test_bootstrap_sample_keeps_two_classes(self):
        rng = np.random.default_rng(8)
        encoded = np.array([0] * 19 + [1])
        for _ in range(25):
            sample = _bootstrap_sample(rng, encoded, encoded.size)
            assert np.unique(encoded[sample]).size >= 2


class TestBoostingKernel:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bank_bitwise_equals_per_member(self, seed):
        X, y = _dataset(seed)
        model = GradientBoostingClassifier(n_estimators=8, max_depth=2, random_state=seed).fit(X, y)
        X_test = np.random.default_rng(seed + 200).normal(size=(48, X.shape[1]))
        assert np.array_equal(
            model.decision_function(X_test), model._decision_function_per_member(X_test)
        )
        with per_member_fallback():
            slow = model.predict_proba(X_test)
        assert np.array_equal(model.predict_proba(X_test), slow)

    def test_pickle_drops_bank_and_predicts_identically(self):
        X, y = _dataset(seed=9)
        model = GradientBoostingClassifier(n_estimators=5, random_state=9).fit(X, y)
        before = model.predict_proba(X)
        assert model._bank is not None
        restored = pickle.loads(pickle.dumps(model))
        assert restored._bank is None
        assert np.array_equal(restored.predict_proba(X), before)


class TestStackedPredictionInvariance:
    """Row independence: batch composition never changes predicted bits.

    This is the invariant the batched committee ALE (and the serving
    engine's micro-batching) relies on.
    """

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: RandomForestClassifier(n_estimators=8, random_state=0),
            lambda: ExtraTreesClassifier(n_estimators=8, random_state=0),
            lambda: GradientBoostingClassifier(n_estimators=5, random_state=0),
        ],
    )
    def test_stacked_equals_separate(self, factory):
        X, y = _dataset(seed=10)
        model = factory().fit(X, y)
        rng = np.random.default_rng(11)
        a = rng.normal(size=(30, X.shape[1]))
        b = rng.normal(size=(50, X.shape[1]))
        stacked = model.predict_proba(np.concatenate([a, b], axis=0))
        assert np.array_equal(stacked[:30], model.predict_proba(a))
        assert np.array_equal(stacked[30:], model.predict_proba(b))
