"""Tests for the operator-facing rendering."""

import numpy as np
import pytest

from repro.core.explanations import ascii_ale_plot, curves_to_csv, explain_report
from repro.core.feedback import AleFeedback
from repro.core.subspace import FeatureDomain
from repro.exceptions import ValidationError
from repro.ml.linear import softmax


class _StepModel:
    def __init__(self, threshold):
        self.threshold = threshold

    def predict_proba(self, X):
        logits = 8.0 * (np.asarray(X)[:, 0] - self.threshold)
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


@pytest.fixture
def report():
    domains = [FeatureDomain("link_rate", 0, 10), FeatureDomain("loss", 0, 10)]
    X = np.random.default_rng(0).uniform(0, 10, size=(400, 2))
    return AleFeedback(grid_size=16).analyze([_StepModel(4.0), _StepModel(6.0)], X, domains)


class TestExplainReport:
    def test_mentions_all_features(self, report):
        text = explain_report(report)
        assert "link_rate" in text and "loss" in text

    def test_max_features_truncates(self, report):
        text = explain_report(report, max_features=1)
        assert "link_rate" in text  # highest disagreement first
        assert "Feature 'loss'" not in text

    def test_mentions_threshold_and_committee(self, report):
        text = explain_report(report)
        assert "2 models" in text
        assert "T =" in text

    def test_plain_language_present(self, report):
        text = explain_report(report)
        assert "label additional samples" in text or "no extra data needed" in text


class TestAsciiPlot:
    def test_contains_curve_and_axis(self, report):
        text = ascii_ale_plot(report.profiles[0], threshold=report.threshold)
        assert "*" in text
        assert "ALE of 'link_rate'" in text

    def test_flags_high_variance_columns(self, report):
        text = ascii_ale_plot(report.profiles[0], threshold=report.threshold)
        assert "^" in text

    def test_no_threshold_no_flags(self, report):
        text = ascii_ale_plot(report.profiles[0])
        assert "disagreement > T" not in text

    def test_dimension_validation(self, report):
        with pytest.raises(ValidationError):
            ascii_ale_plot(report.profiles[0], width=4)
        with pytest.raises(ValidationError):
            ascii_ale_plot(report.profiles[0], class_index=99)

    def test_custom_size(self, report):
        text = ascii_ale_plot(report.profiles[0], width=32, height=6)
        lines = text.splitlines()
        assert len(lines) <= 10


class TestCsvExport:
    def test_header_and_rows(self, report):
        csv_text = curves_to_csv(report.profiles[0])
        lines = csv_text.strip().splitlines()
        header = lines[0].split(",")
        assert header[:2] == ["grid", "count"]
        assert "mean_class0" in header and "std_class1" in header
        assert len(lines) - 1 == report.profiles[0].grid.shape[0]

    def test_roundtrip_values(self, report):
        profile = report.profiles[0]
        csv_text = curves_to_csv(profile)
        rows = [line.split(",") for line in csv_text.strip().splitlines()[1:]]
        grid = np.array([float(row[0]) for row in rows])
        assert np.allclose(grid, profile.grid)
        counts = np.array([int(row[1]) for row in rows])
        assert counts.sum() == profile.counts.sum()
