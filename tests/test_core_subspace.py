"""Tests for the subspace algebra (intervals, boxes, half-space unions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.subspace import Box, FeatureDomain, Interval, IntervalUnion, SubspaceUnion
from repro.exceptions import SubspaceError


class TestInterval:
    def test_contains_scalar_and_vector(self):
        interval = Interval(1.0, 3.0)
        assert interval.contains(2.0) is True
        assert interval.contains(0.5) is False
        assert interval.contains([0.0, 1.0, 2.0, 4.0]).tolist() == [False, True, True, False]

    def test_bounds_inclusive(self):
        interval = Interval(1.0, 3.0)
        assert interval.contains(1.0) and interval.contains(3.0)

    def test_length(self):
        assert Interval(2.0, 5.0).length == 3.0
        assert Interval(2.0, 2.0).length == 0.0

    def test_invalid(self):
        with pytest.raises(SubspaceError):
            Interval(3.0, 1.0)
        with pytest.raises(SubspaceError):
            Interval(float("nan"), 1.0)
        with pytest.raises(SubspaceError):
            Interval(0.0, float("inf"))

    def test_intersection(self):
        assert Interval(0, 2).intersection(Interval(1, 3)) == Interval(1, 2)
        assert Interval(0, 1).intersection(Interval(2, 3)) is None
        assert Interval(0, 1).intersection(Interval(1, 2)) == Interval(1, 1)

    def test_sample_within(self):
        rng = np.random.default_rng(0)
        draws = Interval(5.0, 6.0).sample(100, rng)
        assert np.all((draws >= 5.0) & (draws <= 6.0))

    def test_degenerate_sample(self):
        draws = Interval(2.0, 2.0).sample(5, np.random.default_rng(0))
        assert np.all(draws == 2.0)


class TestIntervalUnion:
    def test_merges_overlaps(self):
        union = IntervalUnion([Interval(0, 2), Interval(1, 3), Interval(5, 6)])
        assert len(union) == 2
        assert union.intervals[0] == Interval(0, 3)

    def test_merges_touching(self):
        union = IntervalUnion([Interval(0, 1), Interval(1, 2)])
        assert len(union) == 1

    def test_canonical_form_equality(self):
        a = IntervalUnion([Interval(0, 1), Interval(2, 3)])
        b = IntervalUnion([Interval(2, 3), Interval(0, 1)])
        assert a == b

    def test_total_length(self):
        union = IntervalUnion([Interval(0, 1), Interval(5, 7)])
        assert union.total_length == 3.0

    def test_contains(self):
        union = IntervalUnion([Interval(0, 1), Interval(5, 7)])
        assert union.contains([0.5, 3.0, 6.0]).tolist() == [True, False, True]

    def test_intersection(self):
        a = IntervalUnion([Interval(0, 4)])
        b = IntervalUnion([Interval(1, 2), Interval(3, 6)])
        result = a.intersection(b)
        assert result == IntervalUnion([Interval(1, 2), Interval(3, 4)])

    def test_clip(self):
        union = IntervalUnion([Interval(0, 10)])
        assert union.clip(2, 5) == IntervalUnion([Interval(2, 5)])

    def test_empty_behaviour(self):
        empty = IntervalUnion()
        assert not empty
        assert str(empty) == "∅"
        with pytest.raises(SubspaceError):
            empty.sample(3, np.random.default_rng(0))

    def test_sample_proportional_to_length(self):
        union = IntervalUnion([Interval(0, 9), Interval(100, 101)])
        draws = union.sample(500, np.random.default_rng(0))
        fraction_low = np.mean(draws < 50)
        assert fraction_low == pytest.approx(0.9, abs=0.07)

    def test_sample_point_intervals(self):
        union = IntervalUnion([Interval(1, 1), Interval(2, 2)])
        draws = union.sample(50, np.random.default_rng(0))
        assert set(draws.tolist()) <= {1.0, 2.0}

    def test_str_matches_paper_style(self):
        union = IntervalUnion([Interval(0, 45), Interval(99, 120)])
        assert "∪" in str(union)


class TestFeatureDomain:
    def test_empty_domain_rejected(self):
        with pytest.raises(SubspaceError):
            FeatureDomain("x", 1.0, 1.0)

    def test_integer_sampling_rounds(self):
        domain = FeatureDomain("flows", 1, 8, integer=True)
        draws = domain.sample(100, np.random.default_rng(0))
        assert np.all(draws == np.round(draws))


class TestBox:
    @pytest.fixture
    def domains(self):
        return (FeatureDomain("a", 0, 10), FeatureDomain("b", 0, 100))

    def test_contains(self, domains):
        box = Box(domains, {0: Interval(2, 4)})
        assert box.contains([[3.0, 50.0]])[0]
        assert not box.contains([[5.0, 50.0]])[0]

    def test_constraint_clipped_to_domain(self, domains):
        box = Box(domains, {0: Interval(5, 50)})
        assert box.interval_for(0) == Interval(5, 10)

    def test_constraint_outside_domain_rejected(self, domains):
        with pytest.raises(SubspaceError):
            Box(domains, {0: Interval(20, 30)})

    def test_out_of_range_feature_rejected(self, domains):
        with pytest.raises(SubspaceError):
            Box(domains, {7: Interval(0, 1)})

    def test_relative_volume(self, domains):
        box = Box(domains, {0: Interval(0, 5)})  # half of a, all of b
        assert box.volume() == pytest.approx(0.5)

    def test_halfspace_form(self, domains):
        box = Box(domains, {0: Interval(2, 4)})
        A, b = box.as_halfspaces()
        assert A.shape == (2, 2)
        # A x <= b must hold exactly for inside points, fail outside.
        inside = np.array([3.0, 50.0])
        outside = np.array([5.0, 50.0])
        assert np.all(A @ inside <= b + 1e-12)
        assert not np.all(A @ outside <= b + 1e-12)

    def test_unconstrained_box_has_no_rows(self, domains):
        A, b = Box(domains, {}).as_halfspaces()
        assert A.shape == (0, 2)

    def test_sample_respects_constraints_and_integrality(self):
        domains = (FeatureDomain("a", 0, 10), FeatureDomain("n", 1, 8, integer=True))
        box = Box(domains, {0: Interval(2, 3)})
        draws = box.sample(200, np.random.default_rng(0))
        assert np.all((draws[:, 0] >= 2) & (draws[:, 0] <= 3))
        assert np.all(draws[:, 1] == np.round(draws[:, 1]))

    def test_describe(self, domains):
        assert "a ∈" in Box(domains, {0: Interval(1, 2)}).describe()
        assert Box(domains, {}).describe() == "entire domain"


class TestSubspaceUnion:
    @pytest.fixture
    def domains(self):
        return (FeatureDomain("a", 0, 10), FeatureDomain("b", 0, 10))

    def test_contains_union_semantics(self, domains):
        union = SubspaceUnion(domains)
        union.add(Box(domains, {0: Interval(0, 1)}))
        union.add(Box(domains, {1: Interval(9, 10)}))
        points = np.array([[0.5, 5.0], [5.0, 9.5], [5.0, 5.0]])
        assert union.contains(points).tolist() == [True, True, False]

    def test_sample_stays_inside(self, domains):
        union = SubspaceUnion(domains, [Box(domains, {0: Interval(2, 3)})])
        draws = union.sample(100, 0)
        assert union.contains(draws).all()

    def test_sample_union_uniformity_over_overlap(self, domains):
        # Two heavily overlapping boxes must not double density.
        union = SubspaceUnion(
            domains,
            [Box(domains, {0: Interval(0, 6)}), Box(domains, {0: Interval(4, 10)})],
        )
        draws = union.sample(3000, 1)
        in_overlap = np.mean((draws[:, 0] >= 4) & (draws[:, 0] <= 6))
        assert in_overlap == pytest.approx(0.2, abs=0.05)

    def test_empty_union(self, domains):
        union = SubspaceUnion(domains)
        assert not union
        assert union.volume() == 0.0
        with pytest.raises(SubspaceError):
            union.sample(1)

    def test_mismatched_domains_rejected(self, domains):
        other = (FeatureDomain("x", 0, 1),)
        union = SubspaceUnion(domains)
        with pytest.raises(SubspaceError):
            union.add(Box(other, {}))

    def test_halfspace_union_form(self, domains):
        union = SubspaceUnion(
            domains,
            [Box(domains, {0: Interval(0, 1)}), Box(domains, {1: Interval(2, 3)})],
        )
        systems = union.as_halfspaces()
        assert len(systems) == 2
        for A, b in systems:
            assert A.shape[0] == b.shape[0] == 2

    def test_monte_carlo_volume(self, domains):
        union = SubspaceUnion(
            domains,
            [Box(domains, {0: Interval(0, 5)}), Box(domains, {0: Interval(5, 10)})],
        )
        assert union.volume() == pytest.approx(1.0, abs=0.05)


@st.composite
def _interval_lists(draw):
    n = draw(st.integers(1, 6))
    intervals = []
    for _ in range(n):
        low = draw(st.floats(-100, 100, allow_nan=False))
        width = draw(st.floats(0, 50, allow_nan=False))
        intervals.append(Interval(low, low + width))
    return intervals


@settings(max_examples=60, deadline=None)
@given(_interval_lists())
def test_interval_union_canonical_property(intervals):
    """Canonical form: sorted, disjoint, non-touching; length preserved <= sum."""
    union = IntervalUnion(intervals)
    members = union.intervals
    for earlier, later in zip(members, members[1:]):
        assert earlier.high < later.low  # strictly disjoint after merging
    assert union.total_length <= sum(i.length for i in intervals) + 1e-9
    # Idempotence: re-wrapping the canonical members changes nothing.
    assert IntervalUnion(members) == union


@settings(max_examples=60, deadline=None)
@given(_interval_lists(), st.floats(-150, 150, allow_nan=False))
def test_interval_union_membership_property(intervals, probe):
    """A point is in the union iff it is in at least one input interval."""
    union = IntervalUnion(intervals)
    expected = any(interval.contains(probe) for interval in intervals)
    assert bool(union.contains(probe)) == expected


@settings(max_examples=40, deadline=None)
@given(
    lows=st.lists(st.floats(0, 4, allow_nan=False), min_size=2, max_size=2),
    widths=st.lists(st.floats(0.5, 5, allow_nan=False), min_size=2, max_size=2),
    seed=st.integers(0, 2**31 - 1),
)
def test_box_samples_satisfy_halfspaces_property(lows, widths, seed):
    """Every sampled point satisfies the box's own Ax <= b system."""
    domains = (FeatureDomain("a", 0, 10), FeatureDomain("b", 0, 10))
    constraints = {
        i: Interval(lows[i], min(lows[i] + widths[i], 10.0)) for i in range(2)
    }
    box = Box(domains, constraints)
    draws = box.sample(20, np.random.default_rng(seed))
    A, b = box.as_halfspaces()
    assert np.all(draws @ A.T <= b + 1e-9)
