"""Determinism guarantees of ``repro.runtime``.

The contract under test: a task's result is a pure function of (task fn,
payload, seed path) — so the serial executor, the process executor, any
submission order, and a cache-warm rerun must all agree bitwise, both at
the single-task level (``probe.draw``) and end-to-end on a tiny Table-1
run.  Fault injection (timeouts, retry exhaustion, poisoned cache
entries) checks that failure handling never silently changes results.
"""

import numpy as np
import pytest

from repro.automl import AutoMLSpec
from repro.core.feedback import AleFeedback, within_ale_committee
from repro.experiments.runner import AugmentationContext, evaluate_on_test_sets, run_strategy
from repro.experiments.table1 import Table1Config, run_table1
from repro.ml.metrics import accuracy
from repro.runtime import (
    ArtifactCache,
    ProcessExecutor,
    SerialExecutor,
    Task,
    TaskError,
    TaskRuntime,
    TaskTimeoutError,
    digest_payload,
    task_key,
)


def draw_tasks(n=4, size=5):
    return [
        Task(fn_name="probe.draw", payload={"n": size}, seed_path=(1234, index))
        for index in range(n)
    ]


class TestTaskDeterminism:
    def test_serial_and_process_executors_agree_bitwise(self):
        tasks = draw_tasks()
        serial = [outcome.value for outcome in SerialExecutor().run(tasks)]
        pooled = [outcome.value for outcome in ProcessExecutor(max_workers=2).run(tasks)]
        assert serial == pooled

    def test_submission_order_is_irrelevant(self):
        tasks = draw_tasks(n=6)
        by_path = {
            task.seed_path: outcome.value
            for task, outcome in zip(tasks, SerialExecutor().run(tasks))
        }
        shuffled = list(reversed(tasks))
        for task, outcome in zip(shuffled, SerialExecutor().run(shuffled)):
            assert outcome.value == by_path[task.seed_path]

    def test_results_come_back_in_task_order(self):
        tasks = [
            Task(fn_name="probe.sleep", payload={"seconds": 0.2, "value": "slow"}),
            Task(fn_name="probe.sleep", payload={"seconds": 0.0, "value": "fast"}),
        ]
        outcomes = ProcessExecutor(max_workers=2).run(tasks)
        assert [outcome.value for outcome in outcomes] == ["slow", "fast"]

    def test_retry_succeeds_on_configured_attempt(self):
        task = Task(fn_name="probe.fail", payload={"succeed_on_attempt": 1}, seed_path=(9,))
        [outcome] = SerialExecutor().run([task], retries=2)
        assert outcome.value == 1  # succeeded on the second attempt (0-indexed)
        assert outcome.attempts == 2

    def test_retry_exhaustion_raises_task_error_with_attempt_count(self):
        task = Task(
            fn_name="probe.fail",
            payload={"succeed_on_attempt": 99},
            seed_path=(9,),
            label="doomed",
        )
        with pytest.raises(TaskError) as excinfo:
            SerialExecutor().run([task], retries=1)
        assert excinfo.value.attempts == 2
        assert "doomed" in str(excinfo.value)

    def test_process_timeout_raises_timeout_error(self):
        task = Task(fn_name="probe.sleep", payload={"seconds": 30.0}, label="sleeper")
        with pytest.raises(TaskTimeoutError):
            ProcessExecutor(max_workers=1).run([task], timeout=0.3)

    def test_serial_timeout_detected_after_the_fact(self):
        task = Task(fn_name="probe.sleep", payload={"seconds": 0.4})
        with pytest.raises(TaskTimeoutError):
            SerialExecutor().run([task], timeout=0.05)


class TestArtifactCache:
    def test_second_run_is_answered_from_cache(self, tmp_path):
        runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(tmp_path))
        first = runtime.run(draw_tasks())
        assert runtime.stats["executed"] == 4 and runtime.stats["cache_stores"] == 4
        runtime.reset_stats()
        second = runtime.run(draw_tasks())
        assert second == first
        assert runtime.stats["cache_hits"] == 4 and runtime.stats["executed"] == 0

    def test_poisoned_entry_is_evicted_and_recomputed(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        runtime = TaskRuntime(SerialExecutor(), cache=cache)
        [task] = draw_tasks(n=1)
        [clean] = runtime.run([task])
        cache.path_for(task_key(task)).write_bytes(b"not a pickle")
        [recomputed] = runtime.run([task])
        assert recomputed == clean
        assert cache.corrupt_evictions == 1

    def test_refresh_mode_overwrites_without_reading(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        warm = TaskRuntime(SerialExecutor(), cache=cache)
        warm.run(draw_tasks(n=1))
        refresh = TaskRuntime(SerialExecutor(), cache=ArtifactCache(tmp_path), cache_mode="refresh")
        refresh.run(draw_tasks(n=1))
        assert refresh.stats["cache_hits"] == 0
        assert refresh.stats["executed"] == 1 and refresh.stats["cache_stores"] == 1

    def test_payload_digest_ignores_mapping_order(self):
        assert digest_payload({"a": 1, "b": 2.5}) == digest_payload({"b": 2.5, "a": 1})

    def test_key_depends_on_seed_path_and_payload(self):
        base = Task(fn_name="probe.draw", payload={"n": 3}, seed_path=(1,))
        assert task_key(base) != task_key(Task(fn_name="probe.draw", payload={"n": 3}, seed_path=(2,)))
        assert task_key(base) != task_key(Task(fn_name="probe.draw", payload={"n": 4}, seed_path=(1,)))


class TestFeedbackTaskMapper:
    def test_mapper_path_matches_inline_path(self, scream_data, fitted_automl):
        committee = within_ale_committee(fitted_automl)
        inline = AleFeedback(grid_size=8)
        mapped = AleFeedback(grid_size=8, task_mapper=TaskRuntime(SerialExecutor()).named_map)
        a = inline.analyze(committee, scream_data.X, scream_data.domains)
        b = mapped.analyze(committee, scream_data.X, scream_data.domains)
        assert a.threshold == b.threshold
        assert len(a.profiles) == len(b.profiles)
        for pa, pb in zip(a.profiles, b.profiles):
            np.testing.assert_array_equal(pa.std_curve, pb.std_curve)
            np.testing.assert_array_equal(pa.mean_curve, pb.mean_curve)


TINY = Table1Config(
    n_train=60,
    n_test=80,
    n_pool=60,
    n_feedback=10,
    n_test_sets=4,
    n_repeats=1,
    cross_runs=2,
    automl_iterations=4,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=8,
)
TINY_ALGOS = ["no_feedback", "cross_ale", "within_ale_pool"]


@pytest.fixture(scope="module")
def tiny_table1_runs(tmp_path_factory):
    """One tiny Table-1 experiment under three execution regimes."""
    cache_dir = tmp_path_factory.mktemp("artifact-cache")
    implicit, _ = run_table1(TINY, algorithms=TINY_ALGOS)
    parallel_runtime = TaskRuntime(ProcessExecutor(max_workers=2), cache=ArtifactCache(cache_dir))
    parallel, _ = run_table1(TINY, algorithms=TINY_ALGOS, runtime=parallel_runtime)
    warm_runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir))
    warm, _ = run_table1(TINY, algorithms=TINY_ALGOS, runtime=warm_runtime)
    return implicit, parallel, warm, parallel_runtime, warm_runtime


class TestTable1EndToEnd:
    def test_parallel_scores_bitwise_identical_to_serial(self, tiny_table1_runs):
        implicit, parallel, _, _, _ = tiny_table1_runs
        for name in TINY_ALGOS:
            np.testing.assert_array_equal(
                implicit.scores(name).scores, parallel.scores(name).scores
            )

    def test_cache_warm_scores_bitwise_identical(self, tiny_table1_runs):
        implicit, _, warm, _, _ = tiny_table1_runs
        for name in TINY_ALGOS:
            np.testing.assert_array_equal(implicit.scores(name).scores, warm.scores(name).scores)

    def test_cache_warm_run_performs_zero_automl_refits(self, tiny_table1_runs):
        _, _, _, parallel_runtime, warm_runtime = tiny_table1_runs
        assert parallel_runtime.executions_of("automl.fit") > 0
        assert warm_runtime.executions_of("automl.fit") == 0
        assert warm_runtime.stats["executed"] == 0
        assert warm_runtime.stats["cache_hits"] == parallel_runtime.stats["cache_stores"]


class TestSkipRefit:
    """Regression: ``run_strategy`` must not refit an unchanged training set."""

    @pytest.fixture
    def ctx(self, scream_data, fitted_automl):
        spec = AutoMLSpec(n_iterations=4, ensemble_size=3, min_distinct_members=2, scorer=accuracy)
        return AugmentationContext(
            train=scream_data.subset(np.arange(100)),
            pool=scream_data.subset(np.arange(100, 160)),
            oracle=None,
            initial_automl=fitted_automl,
            automl_factory=spec,
            n_feedback=8,
            feedback=AleFeedback(grid_size=8),
            cross_runs=2,
            rng=np.random.default_rng(42),
            runtime=TaskRuntime(SerialExecutor()),
        )

    @pytest.fixture
    def test_sets(self, scream_data):
        return [scream_data.subset(np.arange(100, 130)), scream_data.subset(np.arange(130, 160))]

    def test_no_feedback_reuses_initial_automl(self, ctx, test_sets):
        scores, result = run_strategy("no_feedback", ctx, test_sets, random_state=0)
        assert result.points_added == 0
        assert ctx.runtime.executions_of("automl.fit") == 0
        assert scores == evaluate_on_test_sets(ctx.initial_automl, test_sets)

    def test_empty_region_pool_strategy_skips_refit(self, ctx, test_sets):
        # The ISSUE's bug: an explicit threshold no committee exceeds flags
        # no region, the pool strategy adds nothing — yet a fresh dataset
        # object is built, so only content comparison can spot the no-op.
        ctx.feedback = AleFeedback(grid_size=8, threshold=1e9)
        scores, result = run_strategy("within_ale_pool", ctx, test_sets, random_state=0)
        assert result.points_added == 0
        assert result.train is not ctx.train
        assert ctx.runtime.executions_of("automl.fit") == 0
        assert scores == evaluate_on_test_sets(ctx.initial_automl, test_sets)

    def test_changed_training_set_still_refits(self, ctx, test_sets):
        ctx.runtime.reset_stats()
        run_strategy("confidence", ctx, test_sets, random_state=0)
        assert ctx.runtime.executions_of("automl.fit") == 1
