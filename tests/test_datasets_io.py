"""Tests for dataset persistence (save/load)."""

import numpy as np
import pytest

from repro.datasets import LabeledDataset


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, scream_data):
        path = tmp_path / "scream.npz"
        scream_data.save(path)
        loaded = LabeledDataset.load(path)
        assert np.array_equal(loaded.X, scream_data.X)
        assert np.array_equal(loaded.y, scream_data.y)
        assert loaded.feature_names == scream_data.feature_names
        assert loaded.description == scream_data.description

    def test_domains_roundtrip(self, tmp_path, scream_data):
        path = tmp_path / "scream.npz"
        scream_data.save(path)
        loaded = LabeledDataset.load(path)
        for original, restored in zip(scream_data.domains, loaded.domains):
            assert restored.name == original.name
            assert restored.low == original.low
            assert restored.high == original.high
            assert restored.integer == original.integer

    def test_string_labels_roundtrip(self, tmp_path, firewall_data):
        path = tmp_path / "firewall.npz"
        firewall_data.save(path)
        loaded = LabeledDataset.load(path)
        assert set(np.unique(loaded.y)) == set(np.unique(firewall_data.y))

    def test_loaded_dataset_usable(self, tmp_path, scream_data):
        from repro.ml import GaussianNB

        path = tmp_path / "scream.npz"
        scream_data.save(path)
        loaded = LabeledDataset.load(path)
        model = GaussianNB().fit(loaded.X, loaded.y)
        assert model.score(loaded.X, loaded.y) > 0.5
