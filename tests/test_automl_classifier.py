"""Tests for the AutoMLClassifier façade."""

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.exceptions import NotFittedError, ValidationError
from repro.ml import balanced_accuracy


class TestAutoMLClassifier:
    def test_learns_blobs_well(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(n_iterations=8, ensemble_size=4, random_state=0).fit(X, y)
        assert automl.score(X, y) > 0.9

    def test_exposes_ensemble_members(self, fitted_automl):
        members = fitted_automl.ensemble_members_
        assert len(members) >= 3  # min_distinct_members floor
        for member in members:
            assert hasattr(member, "predict_proba")

    def test_min_distinct_members_floor(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(
            n_iterations=8, ensemble_size=1, min_distinct_members=5, random_state=1
        ).fit(X, y)
        assert len(automl.ensemble_members_) == 5

    def test_floor_capped_by_evaluated_candidates(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(
            n_iterations=2, ensemble_size=1, min_distinct_members=10, random_state=2
        ).fit(X, y)
        assert len(automl.ensemble_members_) <= 2

    def test_predict_proba_valid(self, fitted_automl, scream_data):
        proba = fitted_automl.predict_proba(scream_data.X[:20])
        assert proba.shape == (20, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_unfitted_raises(self):
        automl = AutoMLClassifier()
        with pytest.raises(NotFittedError):
            automl.predict([[0.0]])
        with pytest.raises(NotFittedError):
            automl.ensemble_members_

    def test_search_result_recorded(self, fitted_automl):
        result = fitted_automl.search_result_
        assert result.evaluated
        assert result.best.score >= max(item.score for item in result.evaluated) - 1e-12

    def test_describe_readable(self, fitted_automl):
        text = fitted_automl.describe()
        assert "ensemble" in text and "best single candidate" in text

    def test_multiclass(self, blobs_3class):
        X, y = blobs_3class
        automl = AutoMLClassifier(n_iterations=6, ensemble_size=3, random_state=3).fit(X, y)
        assert balanced_accuracy(y, automl.predict(X)) > 0.9
        assert automl.classes_.tolist() == [0, 1, 2]

    def test_reproducible_with_seed(self, blobs_2class):
        X, y = blobs_2class
        a = AutoMLClassifier(n_iterations=5, random_state=11).fit(X, y)
        b = AutoMLClassifier(n_iterations=5, random_state=11).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            AutoMLClassifier(ensemble_size=0)
        with pytest.raises(ValidationError):
            AutoMLClassifier(min_distinct_members=0)

    def test_string_labels(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 2))
        y = np.where(X[:, 0] > 0, "right", "left")
        automl = AutoMLClassifier(n_iterations=5, random_state=0).fit(X, y)
        assert set(automl.predict(X)) <= {"left", "right"}
