"""Tests for meta-learning warm start."""

import numpy as np
import pytest

from repro.automl import (
    MetaLearningStore,
    RandomSearch,
    WarmStartSearch,
    compute_meta_features,
)
from repro.automl.meta import META_FEATURE_NAMES, MetaRecord
from repro.exceptions import ValidationError


class TestMetaFeatures:
    def test_fixed_length_vector(self, blobs_2class):
        X, y = blobs_2class
        meta = compute_meta_features(X, y)
        assert meta.shape == (len(META_FEATURE_NAMES),)
        assert np.all(np.isfinite(meta))

    def test_captures_size(self, blobs_2class):
        X, y = blobs_2class
        small = compute_meta_features(X[:50], y[:50])
        large = compute_meta_features(X, y)
        assert large[0] > small[0]  # log_n_samples

    def test_captures_imbalance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        balanced = compute_meta_features(X, np.array([0, 1] * 50))
        skewed = compute_meta_features(X, np.array([0] * 90 + [1] * 10))
        assert balanced[3] > skewed[3]  # class entropy
        assert skewed[4] > balanced[4]  # majority fraction

    def test_similar_closer_than_dissimilar(self, blobs_2class):
        X, y = blobs_2class
        a = compute_meta_features(X[:140], y[:140])
        b = compute_meta_features(X[140:280], y[140:280])
        rng = np.random.default_rng(0)
        X_other = np.abs(rng.lognormal(3.0, 2.0, size=(500, 9)))
        y_other = rng.integers(0, 4, size=500)
        c = compute_meta_features(X_other, y_other)
        assert np.linalg.norm(a - b) < np.linalg.norm(a - c)


class TestStore:
    def test_remember_and_suggest(self, blobs_2class, tmp_path):
        X, y = blobs_2class
        store = MetaLearningStore(tmp_path / "meta.json")
        result = RandomSearch(n_iterations=6, random_state=0).run(X, y)
        store.remember(X, y, result)
        assert len(store) >= 1
        suggestions = store.suggest(X, y, k=3)
        assert suggestions
        assert suggestions[0].family == result.evaluated[0].candidate.family

    def test_persistence_roundtrip(self, blobs_2class, tmp_path):
        X, y = blobs_2class
        path = tmp_path / "meta.json"
        store = MetaLearningStore(path)
        result = RandomSearch(n_iterations=4, random_state=1).run(X, y)
        store.remember(X, y, result)
        reloaded = MetaLearningStore(path)
        assert len(reloaded) == len(store)
        assert reloaded.suggest(X, y, k=1)[0].family == store.suggest(X, y, k=1)[0].family

    def test_empty_store_suggests_nothing(self, blobs_2class):
        X, y = blobs_2class
        assert MetaLearningStore().suggest(X, y) == []

    def test_suggestions_deduplicated(self, blobs_2class):
        X, y = blobs_2class
        store = MetaLearningStore()
        record = MetaRecord(
            meta_features=compute_meta_features(X, y).tolist(),
            family="gaussian_nb",
            params={"var_smoothing": 1e-9},
            scaler="none",
            score=0.9,
        )
        store.records = [record, record, record]
        assert len(store.suggest(X, y, k=5)) == 1


class TestWarmStartSearch:
    def test_warm_candidates_evaluated_first(self, blobs_2class):
        X, y = blobs_2class
        store = MetaLearningStore()
        store.records = [
            MetaRecord(
                meta_features=compute_meta_features(X, y).tolist(),
                family="gaussian_nb",
                params={"var_smoothing": 1e-8},
                scaler="standard",
                score=0.99,
            )
        ]
        search = WarmStartSearch(store, n_iterations=4, n_warm=1, remember=False, random_state=0)
        result = search.run(X, y)
        families = [item.candidate.family for item in result.evaluated] + [
            c.family for c, _ in result.failures
        ]
        assert "gaussian_nb" in families

    def test_learning_accumulates(self, blobs_2class, blobs_3class):
        X2, y2 = blobs_2class
        store = MetaLearningStore()
        WarmStartSearch(store, n_iterations=5, n_warm=2, random_state=0).run(X2, y2)
        assert len(store) >= 1
        X3, y3 = blobs_3class
        WarmStartSearch(store, n_iterations=5, n_warm=2, random_state=1).run(X3, y3)
        assert len(store) >= 2

    def test_stale_record_skipped(self, blobs_2class):
        X, y = blobs_2class
        store = MetaLearningStore()
        store.records = [
            MetaRecord(
                meta_features=compute_meta_features(X, y).tolist(),
                family="model_from_the_future",
                params={"quantumness": 11},
                scaler="none",
                score=1.0,
            )
        ]
        result = WarmStartSearch(store, n_iterations=4, n_warm=1, remember=False, random_state=0).run(X, y)
        assert result.evaluated  # ran fine without the unknown family

    def test_budget_validation(self):
        store = MetaLearningStore()
        with pytest.raises(ValidationError):
            WarmStartSearch(store, n_iterations=5, n_warm=5)
        with pytest.raises(ValidationError):
            WarmStartSearch(store, n_warm=-1)
