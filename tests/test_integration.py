"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, explain_report, within_ale_committee
from repro.datasets import ScreamOracle, generate_firewall_dataset, split_train_test_pool
from repro.ml import balanced_accuracy


class TestScreamFeedbackLoop:
    """The paper's primary loop: train -> feedback -> collect -> retrain."""

    def test_full_loop_runs_and_improves_on_average_region(self, scream_data):
        train = scream_data.subset(np.arange(120))
        automl = AutoMLClassifier(
            n_iterations=8, ensemble_size=4, min_distinct_members=3, random_state=0
        ).fit(train.X, train.y)

        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(automl), train.X, train.domains
        )
        assert report.region, "median-threshold feedback should flag something"

        suggested = report.suggest(25, random_state=1)
        oracle = ScreamOracle(random_state=2)
        labels = oracle.label(suggested)
        assert set(np.unique(labels)) <= {0, 1}

        augmented = train.extended(suggested, labels)
        retrained = AutoMLClassifier(
            n_iterations=8, ensemble_size=4, min_distinct_members=3, random_state=3
        ).fit(augmented.X, augmented.y)

        holdout = scream_data.subset(np.arange(120, scream_data.n_samples))
        score = balanced_accuracy(holdout.y, retrained.predict(holdout.X))
        assert score > 0.5  # sanity: not degenerate

    def test_explanation_pipeline_text(self, fitted_automl, scream_data):
        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(fitted_automl), scream_data.X, scream_data.domains
        )
        text = explain_report(report)
        for feature in scream_data.feature_names:
            assert feature in text

    def test_halfspace_output_machine_checkable(self, fitted_automl, scream_data):
        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(fitted_automl), scream_data.X, scream_data.domains
        )
        if not report.region:
            pytest.skip("no region at median threshold for this committee")
        points = report.suggest(30, random_state=0)
        satisfied = np.zeros(points.shape[0], dtype=bool)
        for A, b in report.region.as_halfspaces():
            satisfied |= np.all(points @ A.T <= b + 1e-9, axis=1)
        assert satisfied.all()


class TestFirewallPoolLoop:
    """The §4.2 loop: feedback restricted to a fixed pool of logged data."""

    def test_pool_loop(self, firewall_data):
        bundle = split_train_test_pool(firewall_data, n_test_sets=5, random_state=0)
        automl = AutoMLClassifier(
            n_iterations=6, ensemble_size=3, min_distinct_members=3, random_state=1
        ).fit(bundle.train.X, bundle.train.y)

        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(automl), bundle.train.X, bundle.train.domains
        )
        picks = report.filter_pool(bundle.pool.X, max_points=60, random_state=2)
        augmented = bundle.train.extended(bundle.pool.X[picks], bundle.pool.y[picks])
        assert augmented.n_samples == bundle.train.n_samples + picks.size

        retrained = AutoMLClassifier(
            n_iterations=6, ensemble_size=3, min_distinct_members=3, random_state=3
        ).fit(augmented.X, augmented.y)
        scores = [balanced_accuracy(t.y, retrained.predict(t.X)) for t in bundle.test_sets]
        assert all(0.0 <= s <= 1.0 for s in scores)

    def test_operator_veto_workflow(self, firewall_data):
        """restrict_to() after inspecting explanations (the §4.2 story)."""
        bundle = split_train_test_pool(firewall_data, n_test_sets=5, random_state=4)
        automl = AutoMLClassifier(
            n_iterations=6, ensemble_size=3, min_distinct_members=3, random_state=5
        ).fit(bundle.train.X, bundle.train.y)
        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(automl), bundle.train.X, bundle.train.domains
        )
        kept = [name for name in firewall_data.feature_names if name != "src_port"]
        restricted = report.restrict_to(kept)
        assert len(restricted.region) <= len(report.region)
        full_picks = report.filter_pool(bundle.pool.X)
        restricted_picks = restricted.filter_pool(bundle.pool.X)
        assert set(restricted_picks.tolist()) <= set(full_picks.tolist()) or not report.region
