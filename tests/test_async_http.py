"""Tests for repro.serve.async_http — the event-loop HTTP transport.

Exercised over real TCP sockets against a served ensemble, one scenario
per promise the transport makes: correct JSON round trips, HTTP/1.1
keep-alive and pipelining, incremental parsing of byte-dribbled
requests, survival of mid-request disconnects, idle reaping, oversized
and malformed request rejection, request timeouts as 504, and a drain
on close that answers in-flight requests instead of abandoning them.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.serve import AsyncHTTPServer, ServeConfig, ServeService, serve_async_http
from repro.serve.http import MAX_BODY_BYTES


def _host_port(url: str) -> tuple[str, int]:
    host, _, port = url.split("//", 1)[-1].partition(":")
    return host, int(port)


def _request_bytes(method: str, path: str, body: bytes = b"", headers: dict | None = None) -> bytes:
    lines = [f"{method} {path} HTTP/1.1", "Host: test", f"Content-Length: {len(body)}"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


class _Client:
    """A raw HTTP/1.1 test client with a *buffered* reader.

    Buffering matters: pipelined responses can land in one TCP segment,
    so the reader must keep leftover bytes for the next read instead of
    discarding them with the recv buffer.
    """

    def __init__(self, url: str, timeout: float = 5.0):
        self.sock = socket.create_connection(_host_port(url), timeout=timeout)
        self.sock.settimeout(timeout)
        self.reader = self.sock.makefile("rb")

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def read_response(self) -> tuple[int, dict, bytes]:
        """Read one full response; returns (status, headers, body)."""
        status_line = self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed before a response")
        status = int(status_line.split(b" ", 2)[1])
        headers = {}
        while True:
            line = self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body = self.reader.read(int(headers.get("content-length", "0")))
        return status, headers, body

    def exchange(self, method: str, path: str, payload=None, **kwargs):
        body = json.dumps(payload).encode("utf-8") if payload is not None else b""
        self.send_raw(_request_bytes(method, path, body, **kwargs))
        return self.read_response()

    def at_eof(self) -> bool:
        """True once the server has closed its side of the connection."""
        return self.reader.read(1) == b""

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:
            pass
        self.sock.close()

    def __enter__(self) -> "_Client":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@pytest.fixture()
def async_server(served_scream_registry):
    service = ServeService.from_registry(
        "scream",
        directory=served_scream_registry.directory,
        config=ServeConfig(max_batch=16, max_delay=0.005),
    )
    server = serve_async_http(service)
    yield server
    server.close()


class TestAsyncEndpoints:
    def test_healthz_predict_metrics_round_trip(self, async_server, fitted_automl, scream_data):
        with _Client(async_server.url) as client:
            status, _, body = client.exchange("GET", "/healthz")
            assert status == 200
            health = json.loads(body)
            assert health["status"] == "ok" and health["model"] == "scream"

            points = scream_data.X[:5]
            status, _, body = client.exchange("POST", "/predict", {"rows": points.tolist()})
            assert status == 200
            response = json.loads(body)
            assert response["labels"] == fitted_automl.predict(points).tolist()
            np.testing.assert_array_equal(
                np.asarray(response["proba"]), fitted_automl.predict_proba(points)
            )

            status, _, body = client.exchange("GET", "/metrics")
            assert status == 200
            assert json.loads(body)["counters"]["requests"] >= 1

    def test_named_route_and_feedback(self, async_server, scream_data):
        with _Client(async_server.url) as client:
            status, _, body = client.exchange(
                "POST", "/predict/scream", {"rows": scream_data.X[:2].tolist()}
            )
            assert status == 200 and json.loads(body)["model"] == "scream"
            status, _, body = client.exchange("POST", "/feedback", {"limit": 4})
            assert status == 200 and "candidates" in json.loads(body)

    def test_keep_alive_serves_many_requests_per_connection(self, async_server, scream_data):
        rows = scream_data.X[:1].tolist()
        with _Client(async_server.url) as client:
            for _ in range(5):
                status, headers, _ = client.exchange("POST", "/predict", {"rows": rows})
                assert status == 200
                assert headers.get("connection", "") != "close"

    def test_pipelined_requests_answered_in_order(self, async_server, scream_data):
        """Two requests in one write: the state machine takes them one at a time."""
        first = _request_bytes(
            "POST", "/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode()
        )
        second = _request_bytes("GET", "/healthz")
        with _Client(async_server.url) as client:
            client.send_raw(first + second)
            status, _, body = client.read_response()
            assert status == 200 and "labels" in json.loads(body)
            status, _, body = client.read_response()
            assert status == 200 and json.loads(body)["status"] == "ok"

    def test_connection_close_header_honored(self, async_server):
        with _Client(async_server.url) as client:
            status, headers, _ = client.exchange(
                "GET", "/healthz", headers={"Connection": "close"}
            )
            assert status == 200
            assert headers.get("connection") == "close"
            assert client.at_eof()  # server actually closed


class TestAsyncRobustness:
    def test_dribbled_request_completes(self, async_server, scream_data):
        """A slow client costs a buffer, not a failure: bytes arrive in 8-byte chunks."""
        request = _request_bytes(
            "POST", "/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode()
        )
        with _Client(async_server.url) as client:
            for start in range(0, len(request), 8):
                client.send_raw(request[start : start + 8])
                threading.Event().wait(0.001)
            status, _, body = client.read_response()
            assert status == 200 and "labels" in json.loads(body)

    def test_mid_request_disconnect_does_not_wedge_server(self, async_server, scream_data):
        request = _request_bytes(
            "POST", "/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode()
        )
        for _ in range(3):
            sock = socket.create_connection(_host_port(async_server.url), timeout=5.0)
            sock.sendall(request[: len(request) // 2])
            sock.close()  # gave up mid-send
        with _Client(async_server.url) as client:  # the server is still fine
            status, _, _ = client.exchange("POST", "/predict", {"rows": scream_data.X[:1].tolist()})
            assert status == 200

    def test_malformed_request_line_is_400_and_close(self, async_server):
        with _Client(async_server.url) as client:
            client.send_raw(b"garbage\r\n\r\n")
            status, headers, body = client.read_response()
            assert status == 400
            assert json.loads(body)["type"] == "ValidationError"
            assert headers.get("connection") == "close"

    def test_invalid_content_length_is_400(self, async_server):
        with _Client(async_server.url) as client:
            client.send_raw(b"POST /predict HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            status, _, body = client.read_response()
            assert status == 400
            assert json.loads(body)["error"] == "invalid Content-Length"

    def test_oversized_body_rejected_without_reading_it(self, async_server):
        declared = MAX_BODY_BYTES + 1
        with _Client(async_server.url) as client:
            client.send_raw(f"POST /predict HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n".encode())
            status, _, body = client.read_response()
            assert status == 400
            payload = json.loads(body)
            assert payload["type"] == "ValidationError"
            assert payload["error"] == f"request body too large ({declared} bytes > {MAX_BODY_BYTES})"

    def test_oversized_headers_rejected(self, async_server):
        with _Client(async_server.url) as client:
            client.send_raw(b"GET /healthz HTTP/1.1\r\nX-Junk: " + b"a" * 70000)
            status, _, body = client.read_response()
            assert status == 400
            assert "headers too large" in json.loads(body)["error"]

    def test_unknown_route_and_method_are_404(self, async_server):
        with _Client(async_server.url) as client:
            status, _, body = client.exchange("GET", "/nope")
            assert status == 404 and json.loads(body)["type"] == "NotFound"
        with _Client(async_server.url) as client:
            status, _, _ = client.exchange("PUT", "/predict", {"rows": [[0.0]]})
            assert status == 404

    def test_idle_connections_are_reaped(self, served_scream_registry):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=8, max_delay=0.0),
        )
        server = serve_async_http(service, idle_timeout=0.2)
        try:
            with _Client(server.url) as idle:
                # No bytes sent: after idle_timeout the server closes our end.
                assert idle.at_eof()
            with _Client(server.url) as fresh:  # new connections still served
                status, _, _ = fresh.exchange("GET", "/healthz")
                assert status == 200
        finally:
            server.close()


class TestAsyncTimeoutsAndDrain:
    def test_wedged_engine_yields_504_and_timeout_counter(self, served_scream_registry, scream_data):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=1, max_delay=0.0, request_timeout=0.2),
        )
        release = threading.Event()
        original = service.bundle.automl.predict_batch

        def wedged(X):
            release.wait(10.0)
            return original(X)

        service.bundle.automl.predict_batch = wedged
        server = serve_async_http(service)
        try:
            with _Client(server.url) as client:
                status, _, body = client.exchange(
                    "POST", "/predict", {"rows": scream_data.X[:1].tolist()}
                )
                assert status == 504
                payload = json.loads(body)
                assert payload["type"] == "RequestTimeoutError"
                assert "no reply within 0.200s" in payload["error"]
            assert service.metrics_registry.counter("timeouts").value == 1
        finally:
            release.set()
            service.bundle.automl.predict_batch = original
            server.close()

    def test_close_drains_inflight_requests(self, served_scream_registry, scream_data):
        """A request already accepted into the engine gets a real reply on close."""
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=1, max_delay=0.0, request_timeout=10.0),
        )
        gate = threading.Event()
        entered = threading.Event()
        original = service.bundle.automl.predict_batch

        def gated(X):
            entered.set()
            gate.wait(10.0)
            return original(X)

        service.bundle.automl.predict_batch = gated
        server = serve_async_http(service)
        try:
            client = _Client(server.url, timeout=10.0)
            client.send_raw(
                _request_bytes(
                    "POST", "/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode()
                )
            )
            assert entered.wait(5.0)  # the batcher holds our request
            closer = threading.Thread(target=server.close, kwargs={"drain_timeout": 10.0})
            closer.start()
            threading.Event().wait(0.2)
            gate.set()  # let the model answer
            status, _, body = client.read_response()
            assert status == 200
            assert "labels" in json.loads(body)
            client.close()
            closer.join(10.0)
            assert not closer.is_alive()
        finally:
            gate.set()
            service.bundle.automl.predict_batch = original

    def test_serve_background_thread_and_url(self, served_scream_registry):
        service = ServeService.from_registry(
            "scream", directory=served_scream_registry.directory
        )
        server = AsyncHTTPServer(service)
        thread = server.serve_background()
        try:
            assert thread.is_alive()
            assert server.url.startswith("http://127.0.0.1:")
        finally:
            server.close()
        assert not thread.is_alive()
