"""Tests for the congestion-control algorithms (protocol semantics)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.netsim.cc import BBR, PROTOCOLS, Cubic, Reno, Scream, Vegas, make_protocol


class TestRegistry:
    def test_all_protocols_constructible(self):
        for name in PROTOCOLS:
            controller = make_protocol(name)
            assert controller.name == name

    def test_unknown_protocol(self):
        with pytest.raises(ValidationError):
            make_protocol("warp_drive")

    def test_expected_membership(self):
        assert set(PROTOCOLS) == {"reno", "cubic", "vegas", "scream", "bbr"}


class TestReno:
    def test_slow_start_doubles_per_rtt_of_acks(self):
        reno = Reno()
        reno.reset(now=0.0)
        start = reno.cwnd
        for i in range(int(start)):
            reno.on_ack(now=0.01 * i, rtt=0.05)
        assert reno.cwnd == pytest.approx(2 * start)

    def test_congestion_avoidance_adds_one_per_window(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.ssthresh = 1.0  # force congestion avoidance
        reno.cwnd = 10.0
        for i in range(10):
            reno.on_ack(now=0.01 * i, rtt=0.05)
        assert reno.cwnd == pytest.approx(11.0, abs=0.1)

    def test_loss_halves_window(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.cwnd = 20.0
        reno.on_loss(now=1.0)
        assert reno.cwnd == pytest.approx(10.0)
        assert reno.ssthresh == pytest.approx(10.0)

    def test_window_floor(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.cwnd = 1.0
        for _ in range(5):
            reno.on_loss(now=0.0)
        assert reno.congestion_window() >= 1.0

    def test_fluid_growth_matches_event_growth(self):
        event = Reno()
        event.reset(now=0.0)
        event.ssthresh = 1.0
        event.cwnd = 10.0
        fluid = Reno()
        fluid.reset(now=0.0)
        fluid.ssthresh = 1.0
        fluid.cwnd = 10.0
        # One RTT of acks: 10 acks event-wise == one fluid step of rtt with
        # delivered_rate = cwnd/rtt.
        for i in range(10):
            event.on_ack(now=0.0, rtt=0.1)
        fluid.fluid_update(now=0.0, dt=0.1, rtt=0.1, expected_losses=0.0, delivered_rate=100.0)
        assert fluid.cwnd == pytest.approx(event.cwnd, rel=0.05)


class TestCubic:
    def test_loss_reduces_by_beta(self):
        cubic = Cubic()
        cubic.reset(now=0.0)
        cubic.cwnd = 100.0
        cubic.on_loss(now=1.0)
        assert cubic.cwnd == pytest.approx(70.0)
        assert cubic.w_max == 100.0

    def test_recovers_toward_w_max(self):
        cubic = Cubic()
        cubic.reset(now=0.0)
        cubic.cwnd = 100.0
        cubic.on_loss(now=0.0)
        for step in range(400):
            cubic.fluid_update(now=0.01 * step, dt=0.01, rtt=0.05, expected_losses=0.0, delivered_rate=1000.0)
        assert cubic.cwnd == pytest.approx(100.0, rel=0.2)

    def test_concave_then_convex_growth(self):
        cubic = Cubic()
        cubic.reset(now=0.0)
        cubic.cwnd = 100.0
        cubic.on_loss(now=0.0)
        windows = []
        for step in range(1000):
            cubic.fluid_update(now=0.01 * step, dt=0.01, rtt=0.05, expected_losses=0.0, delivered_rate=1000.0)
            windows.append(cubic.cwnd)
        growth = np.diff(windows)
        k_index = int(cubic.k / 0.01)
        if 10 < k_index < 900:
            early = growth[:k_index].mean()
            late = growth[k_index + 50 :].mean()
            assert late > 0  # convex region grows again

    def test_invalid_vegas_params(self):
        with pytest.raises(ValueError):
            Vegas(alpha=5.0, beta=2.0)


class TestVegas:
    def test_grows_when_queue_empty(self):
        vegas = Vegas()
        vegas.reset(now=0.0)
        vegas.cwnd = 10.0
        vegas.observe_rtt(0.05)
        before = vegas.cwnd
        for i in range(10):
            vegas.on_ack(now=0.01 * i, rtt=0.05)  # rtt == base: no queue
        assert vegas.cwnd > before

    def test_shrinks_when_queue_deep(self):
        vegas = Vegas()
        vegas.reset(now=0.0)
        vegas.cwnd = 50.0
        vegas.observe_rtt(0.05)
        before = vegas.cwnd
        for i in range(10):
            vegas.on_ack(now=0.01 * i, rtt=0.2)  # heavy queueing
        assert vegas.cwnd < before

    def test_equilibrium_between_alpha_and_beta(self):
        vegas = Vegas(alpha=2.0, beta=4.0)
        vegas.reset(now=0.0)
        vegas.observe_rtt(0.1)
        capacity = 500.0  # pkts/s
        queue = 0.0
        for step in range(4000):
            rtt = 0.1 + queue / capacity
            rate = vegas.sending_rate(rtt)
            queue = max(0.0, queue + (rate - capacity) * 0.01)
            vegas.fluid_update(now=step * 0.01, dt=0.01, rtt=rtt, expected_losses=0.0, delivered_rate=min(rate, capacity))
        assert 1.0 <= queue <= 6.0  # settles between alpha and beta packets


class TestScream:
    def test_grows_below_target_delay(self):
        scream = Scream(target_delay=0.05)
        scream.reset(now=0.0)
        scream.observe_rtt(0.05)
        before = scream.cwnd
        for i in range(20):
            scream.on_ack(now=0.01 * i, rtt=0.06)  # 10ms queue < 50ms target
        assert scream.cwnd > before

    def test_shrinks_above_target_delay(self):
        scream = Scream(target_delay=0.02)
        scream.reset(now=0.0)
        scream.observe_rtt(0.05)
        scream.cwnd = 50.0
        for i in range(20):
            scream.on_ack(now=0.01 * i, rtt=0.15)  # 100ms queue >> target
        assert scream.cwnd < 50.0

    def test_loss_backoff(self):
        scream = Scream(loss_beta=0.8)
        scream.reset(now=0.0)
        scream.cwnd = 10.0
        scream.on_loss(now=0.0)
        assert scream.cwnd == pytest.approx(8.0)

    def test_shrink_bounded_per_step(self):
        scream = Scream(target_delay=0.01, max_shrink_per_rtt=0.5)
        scream.reset(now=0.0)
        scream.observe_rtt(0.01)
        scream.cwnd = 100.0
        scream.fluid_update(now=0.0, dt=0.01, rtt=1.0, expected_losses=0.0, delivered_rate=10.0)
        # One step of dt/rtt = 0.01 of an RTT: shrink <= 0.5% of the window.
        assert scream.cwnd >= 99.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            Scream(target_delay=0.0)

    def test_steady_state_queue_near_target(self):
        scream = Scream(target_delay=0.02)
        scream.reset(now=0.0)
        capacity = 800.0
        base_rtt = 0.04
        queue = 0.0
        scream.observe_rtt(base_rtt)
        for step in range(6000):
            rtt = base_rtt + queue / capacity
            rate = scream.sending_rate(rtt)
            queue = max(0.0, queue + (rate - capacity) * 0.005)
            scream.fluid_update(now=step * 0.005, dt=0.005, rtt=rtt, expected_losses=0.0, delivered_rate=min(rate, capacity))
        final_queue_delay = queue / capacity
        assert final_queue_delay == pytest.approx(0.02, abs=0.015)


class TestBBR:
    def test_bandwidth_filter_takes_windowed_max(self):
        bbr = BBR(bw_window_s=1.0)
        bbr.reset(now=0.0)
        bbr._update_bw(0.0, 100.0)
        bbr._update_bw(0.5, 80.0)
        assert bbr.btl_bw == 100.0
        bbr._update_bw(1.6, 90.0)  # the 100 sample has expired
        assert bbr.btl_bw == 90.0

    def test_startup_exits_after_plateau(self):
        bbr = BBR()
        bbr.reset(now=0.0)
        for round_index in range(10):
            bbr.on_ack(now=0.1 * (round_index + 1), rtt=0.1, delivered_rate=100.0)
        assert not bbr._in_startup

    def test_paces_above_estimate_when_probing(self):
        bbr = BBR()
        bbr.reset(now=0.0)
        bbr._in_startup = False
        bbr.btl_bw = 100.0
        gains = set()
        for step in range(40):
            bbr.fluid_update(now=0.05 * step, dt=0.05, rtt=0.05, expected_losses=0.0, delivered_rate=100.0)
            gains.add(round(bbr.rate_pps / 100.0, 2))
        assert 1.25 in gains and 0.75 in gains

    def test_inflight_cap_has_floor(self):
        bbr = BBR()
        bbr.reset(now=0.0)
        bbr.btl_bw = 1.0
        bbr.min_rtt = 0.01
        assert bbr.inflight_cap() >= 4.0

    def test_loss_barely_reacts(self):
        bbr = BBR()
        bbr.reset(now=0.0)
        bbr.rate_pps = 100.0
        bbr.on_loss(now=0.0)
        assert bbr.rate_pps == pytest.approx(95.0)


class TestSharedMachinery:
    def test_queue_delay_estimate(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.observe_rtt(0.05)
        assert reno.queue_delay(0.08) == pytest.approx(0.03)
        assert reno.queue_delay(0.04) == 0.0  # below min: clamped

    def test_loss_credit_fires_once_per_window(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.cwnd = 64.0
        fired = reno.accumulate_loss(1.5, now=1.0, rtt=0.1)
        assert fired and reno.cwnd == pytest.approx(32.0)
        # Immediately after, another loss must NOT fire (same window).
        fired_again = reno.accumulate_loss(1.5, now=1.01, rtt=0.1)
        assert not fired_again

    def test_sending_rate_window_vs_rate(self):
        reno = Reno()
        reno.reset(now=0.0)
        reno.cwnd = 10.0
        assert reno.sending_rate(0.1) == pytest.approx(100.0)
        bbr = BBR()
        bbr.reset(now=0.0)
        bbr.rate_pps = 123.0
        assert bbr.sending_rate(0.1) == pytest.approx(123.0)

    def test_negative_rtt_rejected(self):
        reno = Reno()
        with pytest.raises(Exception):
            reno.observe_rtt(-0.1)
