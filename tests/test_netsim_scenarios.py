"""Tests for scenario sampling."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.netsim.scenarios import DEFAULT_SPACE, ScenarioSpace


class TestScenarioSpace:
    def test_domains_match_feature_order(self):
        names = DEFAULT_SPACE.feature_names()
        assert names == ["bandwidth_mbps", "rtt_ms", "loss_rate", "n_flows"]
        flows = DEFAULT_SPACE.domains()[3]
        assert flows.integer

    def test_uniform_samples_in_range(self):
        scenarios = DEFAULT_SPACE.sample(200, random_state=0)
        for scenario in scenarios:
            assert DEFAULT_SPACE.bandwidth_mbps[0] <= scenario.bandwidth_mbps <= DEFAULT_SPACE.bandwidth_mbps[1]
            assert DEFAULT_SPACE.rtt_ms[0] <= scenario.rtt_ms <= DEFAULT_SPACE.rtt_ms[1]
            assert DEFAULT_SPACE.loss_rate[0] <= scenario.loss_rate <= DEFAULT_SPACE.loss_rate[1]
            assert DEFAULT_SPACE.n_flows[0] <= scenario.n_flows <= DEFAULT_SPACE.n_flows[1]

    def test_biased_sampling_concentrates_low_loss(self):
        uniform = DEFAULT_SPACE.sample(500, random_state=1)
        biased = DEFAULT_SPACE.sample_production_biased(500, random_state=1)
        mean_loss_uniform = np.mean([s.loss_rate for s in uniform])
        mean_loss_biased = np.mean([s.loss_rate for s in biased])
        assert mean_loss_biased < 0.6 * mean_loss_uniform

    def test_scenario_from_features_roundtrip(self):
        scenario = DEFAULT_SPACE.sample(1, random_state=2)[0]
        rebuilt = DEFAULT_SPACE.scenario_from_features(scenario.as_features())
        assert rebuilt == scenario

    def test_scenario_from_features_clips(self):
        scenario = DEFAULT_SPACE.scenario_from_features([1e9, -5.0, 0.5, 100])
        assert scenario.bandwidth_mbps == DEFAULT_SPACE.bandwidth_mbps[1]
        assert scenario.rtt_ms == DEFAULT_SPACE.rtt_ms[0]
        assert scenario.loss_rate == DEFAULT_SPACE.loss_rate[1]
        assert scenario.n_flows == DEFAULT_SPACE.n_flows[1]

    def test_feature_count_validated(self):
        with pytest.raises(ValidationError):
            DEFAULT_SPACE.scenario_from_features([1.0, 2.0])

    def test_empty_range_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioSpace(rtt_ms=(50.0, 50.0))

    def test_sampling_reproducible(self):
        a = DEFAULT_SPACE.sample(5, random_state=7)
        b = DEFAULT_SPACE.sample(5, random_state=7)
        assert a == b
