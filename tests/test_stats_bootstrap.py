"""Tests for bootstrap confidence intervals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.stats import bootstrap_difference_ci, bootstrap_mean_ci


class TestBootstrapMean:
    def test_estimate_is_sample_mean(self):
        scores = np.array([0.5, 0.6, 0.7])
        ci = bootstrap_mean_ci(scores, random_state=0)
        assert ci.estimate == pytest.approx(0.6)

    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(0.7, 0.05, size=40)
        ci = bootstrap_mean_ci(scores, random_state=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(1)
        small = bootstrap_mean_ci(rng.normal(0.7, 0.1, size=10), random_state=2)
        large = bootstrap_mean_ci(rng.normal(0.7, 0.1, size=500), random_state=2)
        assert (large.high - large.low) < (small.high - small.low)

    def test_higher_confidence_wider(self):
        rng = np.random.default_rng(2)
        scores = rng.normal(0.7, 0.1, size=30)
        narrow = bootstrap_mean_ci(scores, confidence=0.8, random_state=3)
        wide = bootstrap_mean_ci(scores, confidence=0.99, random_state=3)
        assert (wide.high - wide.low) > (narrow.high - narrow.low)

    def test_coverage_on_known_distribution(self):
        # ~95% of CIs from N(0.5, 0.1) samples should contain 0.5.
        rng = np.random.default_rng(3)
        hits = 0
        for trial in range(100):
            scores = rng.normal(0.5, 0.1, size=25)
            ci = bootstrap_mean_ci(scores, n_resamples=400, random_state=trial)
            hits += ci.contains(0.5)
        assert hits >= 85

    def test_validation(self):
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([0.5])
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([0.5, 0.6], confidence=1.5)
        with pytest.raises(ValidationError):
            bootstrap_mean_ci([0.5, 0.6], n_resamples=10)

    def test_str_rendering(self):
        ci = bootstrap_mean_ci(np.array([0.5, 0.6, 0.7]), random_state=0)
        assert "95%" in str(ci)


class TestBootstrapDifference:
    def test_clear_improvement_excludes_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0.6, 0.02, size=40)
        y = x + 0.1
        ci = bootstrap_difference_ci(x, y, random_state=1)
        assert ci.low > 0.0
        assert ci.estimate == pytest.approx(0.1)

    def test_no_difference_straddles_zero(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0.6, 0.05, size=40)
        y = x + rng.normal(0.0, 0.01, size=40)
        ci = bootstrap_difference_ci(x, y, random_state=2)
        assert ci.low < 0.0 < ci.high or abs(ci.estimate) < 0.01

    def test_pairing_matters(self):
        # Paired differences with tiny noise give a much tighter CI than
        # the marginal spreads suggest.
        rng = np.random.default_rng(2)
        base = rng.normal(0.5, 0.2, size=50)  # huge between-test-set spread
        x = base
        y = base + 0.05 + rng.normal(0, 0.005, size=50)
        ci = bootstrap_difference_ci(x, y, random_state=3)
        assert ci.low > 0.03

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            bootstrap_difference_ci([0.1, 0.2], [0.1])


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(5, 50),
    mu=st.floats(-1, 1, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)
def test_bootstrap_ci_ordering_property(n, mu, seed):
    """low <= estimate <= high always holds."""
    rng = np.random.default_rng(seed)
    scores = rng.normal(mu, 0.1, size=n)
    ci = bootstrap_mean_ci(scores, n_resamples=200, random_state=seed)
    assert ci.low <= ci.estimate <= ci.high
