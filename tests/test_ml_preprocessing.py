"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.preprocessing import (
    IdentityTransformer,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(5.0, 3.0, size=(200, 3))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_not_divided_by_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 0], 0.0)

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 4))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_before_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])

    def test_feature_count_mismatch(self):
        scaler = StandardScaler().fit(np.ones((5, 2)) * [[1], [2], [3], [4], [5]])
        with pytest.raises(ValidationError):
            scaler.transform(np.ones((2, 3)))


class TestMinMaxScaler:
    def test_range_is_unit(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-10, 10, size=(100, 2))
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_constant_column(self):
        X = np.column_stack([np.full(5, 7.0), np.arange(5.0)])
        Z = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))

    def test_out_of_range_test_data(self):
        scaler = MinMaxScaler().fit(np.arange(10.0).reshape(-1, 1))
        assert scaler.transform([[18.0]])[0, 0] == pytest.approx(2.0)


class TestSimpleImputer:
    def test_mean_fill(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0]])
        Z = SimpleImputer(strategy="mean").fit_transform(X)
        assert Z[0, 1] == pytest.approx(4.0)

    def test_median_fill(self):
        X = np.array([[1.0], [np.nan], [100.0], [2.0]])
        Z = SimpleImputer(strategy="median").fit_transform(X)
        assert Z[1, 0] == pytest.approx(2.0)

    def test_all_nan_column_fills_zero(self):
        X = np.array([[np.nan], [np.nan]])
        Z = SimpleImputer().fit_transform(X)
        assert np.allclose(Z, 0.0)

    def test_does_not_mutate_input(self):
        X = np.array([[np.nan, 1.0]])
        imputer = SimpleImputer().fit(X)
        imputer.transform(X)
        assert np.isnan(X[0, 0])

    def test_invalid_strategy(self):
        with pytest.raises(ValidationError):
            SimpleImputer(strategy="mode")


class TestOneHotEncoder:
    def test_expands_selected_column(self):
        X = np.array([[0.0, 1.5], [1.0, 2.5], [2.0, 3.5]])
        Z = OneHotEncoder(columns=(0,)).fit_transform(X)
        assert Z.shape == (3, 4)
        assert Z[:, :3].sum(axis=1).tolist() == [1.0, 1.0, 1.0]
        assert np.allclose(Z[:, 3], X[:, 1])

    def test_unseen_category_maps_to_zeros(self):
        encoder = OneHotEncoder(columns=(0,)).fit(np.array([[0.0], [1.0]]))
        Z = encoder.transform(np.array([[9.0]]))
        assert np.allclose(Z, 0.0)

    def test_out_of_range_column(self):
        with pytest.raises(ValidationError):
            OneHotEncoder(columns=(5,)).fit(np.ones((3, 2)))

    def test_no_columns_is_identity(self):
        X = np.arange(6.0).reshape(3, 2)
        assert np.allclose(OneHotEncoder().fit_transform(X), X)


class TestLabelEncoder:
    def test_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        encoder = LabelEncoder().fit(y)
        encoded = encoder.transform(y)
        assert encoded.tolist() == [1, 0, 2, 0]
        assert encoder.inverse_transform(encoded).tolist() == y.tolist()

    def test_unseen_label_rejected(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValidationError, match="not seen"):
            encoder.transform(["z"])

    def test_out_of_range_inverse(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValidationError):
            encoder.inverse_transform([5])

    def test_2d_rejected(self):
        with pytest.raises(ValidationError):
            LabelEncoder().fit([["a"], ["b"]])


class TestIdentity:
    def test_passthrough(self):
        X = np.arange(4.0).reshape(2, 2)
        assert np.array_equal(IdentityTransformer().fit_transform(X), X)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            IdentityTransformer().transform([[1.0]])


@settings(max_examples=30, deadline=None)
@given(
    arrays(
        np.float64,
        st.tuples(st.integers(2, 30), st.integers(1, 5)),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_standard_scaler_idempotent_property(X):
    """Scaling an already-scaled matrix changes nothing (up to fp error).

    Columns whose variance is at floating-point noise level are excluded:
    there the scaler's constant-column guard kicks in on one pass but not
    necessarily the other, which is acceptable behaviour.
    """
    Z = StandardScaler().fit_transform(X)
    degenerate = Z.std(axis=0) < 1e-9
    Z2 = StandardScaler().fit_transform(Z)
    assert np.allclose(Z[:, ~degenerate], Z2[:, ~degenerate], atol=1e-8)
