"""Tests for the hyper-parameter search space machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automl.spaces import (
    Candidate,
    Categorical,
    FloatRange,
    IntRange,
    default_model_families,
    sample_candidate,
)
from repro.exceptions import ValidationError


class TestCategorical:
    def test_samples_from_choices(self):
        space = Categorical("a", "b", "c")
        rng = np.random.default_rng(0)
        draws = {space.sample(rng) for _ in range(50)}
        assert draws == {"a", "b", "c"}

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Categorical()


class TestIntRange:
    def test_inclusive_bounds(self):
        space = IntRange(3, 5)
        rng = np.random.default_rng(0)
        draws = {space.sample(rng) for _ in range(200)}
        assert draws == {3, 4, 5}

    def test_log_scale_in_bounds(self):
        space = IntRange(1, 100, log=True)
        rng = np.random.default_rng(1)
        draws = [space.sample(rng) for _ in range(300)]
        assert min(draws) >= 1 and max(draws) <= 100
        # Log sampling should visit the low decade much more than linear.
        assert sum(d <= 10 for d in draws) > 100

    def test_invalid(self):
        with pytest.raises(ValidationError):
            IntRange(5, 3)
        with pytest.raises(ValidationError):
            IntRange(0, 5, log=True)


class TestFloatRange:
    def test_in_bounds(self):
        space = FloatRange(0.5, 2.0)
        rng = np.random.default_rng(2)
        draws = [space.sample(rng) for _ in range(100)]
        assert all(0.5 <= d <= 2.0 for d in draws)

    def test_log_scale(self):
        space = FloatRange(1e-4, 1.0, log=True)
        rng = np.random.default_rng(3)
        draws = [space.sample(rng) for _ in range(500)]
        assert all(1e-4 <= d <= 1.0 for d in draws)
        assert sum(d < 1e-2 for d in draws) > 150  # half the log-range

    def test_invalid(self):
        with pytest.raises(ValidationError):
            FloatRange(2.0, 1.0)
        with pytest.raises(ValidationError):
            FloatRange(0.0, 1.0, log=True)


class TestDefaultFamilies:
    def test_has_expected_families(self):
        names = {family.name for family in default_model_families()}
        assert {"decision_tree", "random_forest", "extra_trees", "gradient_boosting",
                "logistic_regression", "gaussian_nb", "knn"} <= names

    def test_every_family_buildable_and_fittable(self, blobs_2class):
        X, y = blobs_2class
        rng = np.random.default_rng(4)
        for family in default_model_families():
            params = {name: space.sample(rng) for name, space in family.space.items()}
            model = family.build(params, rng)
            model.fit(X, y)
            assert model.score(X, y) > 0.5


class TestSampleCandidate:
    def test_produces_fittable_pipeline(self, blobs_2class):
        X, y = blobs_2class
        rng = np.random.default_rng(5)
        for _ in range(10):
            candidate = sample_candidate(default_model_families(), rng)
            candidate.pipeline.fit(X, y)
            assert candidate.pipeline.predict_proba(X).shape[0] == X.shape[0]

    def test_describe_is_readable(self):
        rng = np.random.default_rng(6)
        candidate = sample_candidate(default_model_families(), rng)
        text = candidate.describe()
        assert candidate.family in text and "scaler=" in text

    def test_unknown_scaler_rejected(self):
        with pytest.raises(ValidationError):
            sample_candidate(default_model_families(), np.random.default_rng(0), scaler_choices=("turbo",))

    def test_empty_families_rejected(self):
        with pytest.raises(ValidationError):
            sample_candidate([], np.random.default_rng(0))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_candidate_sampling_deterministic_property(seed):
    """Same rng seed -> identical candidate configuration."""
    a = sample_candidate(default_model_families(), np.random.default_rng(seed))
    b = sample_candidate(default_model_families(), np.random.default_rng(seed))
    assert a.family == b.family
    assert a.scaler == b.scaler
    assert a.params == b.params
