"""Tests for the random search and ensemble selection."""

import numpy as np
import pytest

from repro.automl.ensemble import EnsembleClassifier, greedy_ensemble_selection
from repro.automl.search import RandomSearch
from repro.exceptions import SearchBudgetError, ValidationError
from repro.ml import GaussianNB, LogisticRegression


class TestRandomSearch:
    def test_returns_sorted_results(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=8, random_state=0).run(X, y)
        scores = [item.score for item in result.evaluated]
        assert scores == sorted(scores, reverse=True)
        assert result.best.score == scores[0]

    def test_respects_iteration_budget(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=5, random_state=0).run(X, y)
        assert len(result.evaluated) + len(result.failures) <= 5

    def test_time_budget_stops_early(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=1000, time_budget=0.5, random_state=0).run(X, y)
        # Must stop well short of 1000 candidates in half a second.
        assert len(result.evaluated) < 1000
        assert len(result.evaluated) >= 1

    def test_valid_proba_matches_split(self, blobs_2class):
        X, y = blobs_2class
        search = RandomSearch(n_iterations=4, valid_fraction=0.25, random_state=1)
        result = search.run(X, y)
        for item in result.evaluated:
            assert item.valid_proba.shape == (result.valid_indices.size, 2)

    def test_split_is_disjoint(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=3, random_state=2).run(X, y)
        assert np.intersect1d(result.train_indices, result.valid_indices).size == 0

    def test_invalid_budgets(self):
        with pytest.raises(SearchBudgetError):
            RandomSearch(n_iterations=0)
        with pytest.raises(SearchBudgetError):
            RandomSearch(time_budget=-1.0)
        with pytest.raises(ValidationError):
            RandomSearch(valid_fraction=1.5)

    def test_reproducible(self, blobs_2class):
        X, y = blobs_2class
        a = RandomSearch(n_iterations=6, random_state=3).run(X, y)
        b = RandomSearch(n_iterations=6, random_state=3).run(X, y)
        assert [i.candidate.family for i in a.evaluated] == [i.candidate.family for i in b.evaluated]
        assert [i.score for i in a.evaluated] == [i.score for i in b.evaluated]


class TestGreedyEnsembleSelection:
    def test_avoids_harmful_candidate(self):
        y_valid = np.array([0, 0, 1, 1])
        classes = np.array([0, 1])
        # Softly correct vs confidently wrong: averaging in the bad model
        # would flip the argmax, so greedy selection must never add it.
        good = np.array([[0.6, 0.4], [0.6, 0.4], [0.4, 0.6], [0.4, 0.6]])
        bad = np.array([[0.01, 0.99], [0.01, 0.99], [0.99, 0.01], [0.99, 0.01]])
        picks = greedy_ensemble_selection([bad, good], y_valid, classes, ensemble_size=4)
        assert set(picks) == {1}

    def test_combines_complementary_models(self):
        # Model A nails the first half, model B the second; the averaged
        # ensemble beats either alone.
        y_valid = np.array([0, 0, 1, 1])
        classes = np.array([0, 1])
        a = np.array([[0.95, 0.05], [0.95, 0.05], [0.55, 0.45], [0.45, 0.55]])
        b = np.array([[0.45, 0.55], [0.55, 0.45], [0.05, 0.95], [0.05, 0.95]])
        picks = greedy_ensemble_selection([a, b], y_valid, classes, ensemble_size=6)
        assert {0, 1} <= set(picks)

    def test_size_respected(self):
        y_valid = np.array([0, 1])
        classes = np.array([0, 1])
        proba = np.array([[0.6, 0.4], [0.4, 0.6]])
        picks = greedy_ensemble_selection([proba], y_valid, classes, ensemble_size=3)
        assert len(picks) == 3

    def test_validation(self):
        with pytest.raises(ValidationError):
            greedy_ensemble_selection([], np.array([0]), np.array([0, 1]))
        with pytest.raises(ValidationError):
            greedy_ensemble_selection(
                [np.ones((3, 2))], np.array([0, 1]), np.array([0, 1]), ensemble_size=1
            )


class TestEnsembleClassifier:
    def _members(self, blobs):
        X, y = blobs
        return [GaussianNB().fit(X, y), LogisticRegression().fit(X, y)]

    def test_weighted_average(self, blobs_2class):
        X, y = blobs_2class
        members = self._members(blobs_2class)
        ensemble = EnsembleClassifier(members, [3.0, 1.0], np.array([0, 1]))
        expected = 0.75 * members[0].predict_proba(X) + 0.25 * members[1].predict_proba(X)
        assert np.allclose(ensemble.predict_proba(X), expected)

    def test_weights_normalized(self, blobs_2class):
        members = self._members(blobs_2class)
        ensemble = EnsembleClassifier(members, [2.0, 2.0], np.array([0, 1]))
        assert np.allclose(ensemble.weights, [0.5, 0.5])

    def test_member_predictions_shape(self, blobs_2class):
        X, _ = blobs_2class
        ensemble = EnsembleClassifier(self._members(blobs_2class), [1, 1], np.array([0, 1]))
        votes = ensemble.member_predictions(X[:10])
        assert votes.shape == (2, 10)

    def test_validation(self, blobs_2class):
        members = self._members(blobs_2class)
        with pytest.raises(ValidationError):
            EnsembleClassifier([], [], np.array([0, 1]))
        with pytest.raises(ValidationError):
            EnsembleClassifier(members, [1.0], np.array([0, 1]))
        with pytest.raises(ValidationError):
            EnsembleClassifier(members, [1.0, -1.0], np.array([0, 1]))

    def test_len(self, blobs_2class):
        ensemble = EnsembleClassifier(self._members(blobs_2class), [1, 1], np.array([0, 1]))
        assert len(ensemble) == 2

    def test_score(self, blobs_2class):
        X, y = blobs_2class
        ensemble = EnsembleClassifier(self._members(blobs_2class), [1, 1], np.array([0, 1]))
        assert ensemble.score(X, y) > 0.9
