"""Tests for repro.automl.pipeline."""

import numpy as np
import pytest

from repro.automl.pipeline import Pipeline
from repro.exceptions import NotFittedError, ValidationError
from repro.ml import GaussianNB, LogisticRegression, StandardScaler


def _make(blobs):
    X, y = blobs
    return Pipeline([("scale", StandardScaler()), ("model", GaussianNB())]).fit(X, y)


class TestPipelineConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            Pipeline([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Pipeline([("a", StandardScaler()), ("a", GaussianNB())])

    def test_non_transformer_middle_rejected(self):
        with pytest.raises(ValidationError, match="transform"):
            Pipeline([("model", GaussianNB()), ("model2", GaussianNB())])

    def test_non_classifier_tail_rejected(self):
        with pytest.raises(ValidationError, match="classifier"):
            Pipeline([("scale", StandardScaler())])

    def test_named_steps_view(self):
        pipeline = Pipeline([("scale", StandardScaler()), ("model", GaussianNB())])
        assert set(pipeline.named_steps) == {"scale", "model"}


class TestPipelineBehaviour:
    def test_fit_predict(self, blobs_2class):
        pipeline = _make(blobs_2class)
        X, y = blobs_2class
        assert pipeline.score(X, y) > 0.9

    def test_predict_proba_shape(self, blobs_3class):
        X, y = blobs_3class
        pipeline = Pipeline([("model", GaussianNB())]).fit(X, y)
        assert pipeline.predict_proba(X).shape == (X.shape[0], 3)

    def test_classes_forwarded(self, blobs_2class):
        pipeline = _make(blobs_2class)
        assert pipeline.classes_.tolist() == [0, 1]

    def test_unfitted_raises(self, blobs_2class):
        X, _ = blobs_2class
        pipeline = Pipeline([("scale", StandardScaler()), ("model", GaussianNB())])
        with pytest.raises(NotFittedError):
            pipeline.predict(X)

    def test_scaling_actually_applied(self):
        # kNN-free check: logistic regression on wildly-scaled features
        # converges to a better fit when the scaler is present.
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=400) * 1e6, rng.normal(size=400)])
        y = (X[:, 0] / 1e6 + X[:, 1] > 0).astype(int)
        scaled = Pipeline([("scale", StandardScaler()), ("model", LogisticRegression(max_iter=50))]).fit(X, y)
        assert scaled.score(X, y) > 0.9

    def test_clone_is_unfitted_deep_copy(self, blobs_2class):
        X, y = blobs_2class
        pipeline = _make(blobs_2class)
        copy = pipeline.clone()
        assert copy is not pipeline
        with pytest.raises(NotFittedError):
            copy.predict(X)
        copy.fit(X, y)
        assert copy.score(X, y) > 0.9
        # The original's fitted state is untouched.
        assert pipeline.score(X, y) > 0.9

    def test_get_params_flattened(self):
        pipeline = Pipeline([("scale", StandardScaler()), ("model", LogisticRegression(C=3.0))])
        params = pipeline.get_params()
        assert params["model__C"] == 3.0

    def test_repr_mentions_steps(self):
        pipeline = Pipeline([("model", GaussianNB())])
        assert "GaussianNB" in repr(pipeline)
