"""Tests for repro.devtools — the reprolint invariant checker.

Each rule is exercised against inline fixture sources (violating and
conforming snippets), then the reporters, inline suppressions, config
allowlists, and the ``repro lint`` CLI path are covered end to end.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.devtools import (
    LintConfig,
    LintConfigError,
    LintEngine,
    config_from_table,
    registered_project_rules,
    registered_rules,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def lint(source, path, config=None):
    engine = LintEngine(config or LintConfig())
    return engine.lint_source(textwrap.dedent(source), path=Path(path))


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestRegistry:
    def test_all_six_rules_registered(self):
        ids = [cls.id for cls in registered_rules()]
        assert ids == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]

    def test_project_rules_registered(self):
        ids = [cls.id for cls in registered_project_rules()]
        assert ids == ["RL007"]

    def test_syntax_error_reported_not_raised(self):
        findings = lint("def broken(:\n", "src/repro/core/x.py")
        assert rule_ids(findings) == ["RL000"]


class TestRL001RngDiscipline:
    def test_flags_legacy_global_functions(self):
        findings = lint(
            """
            import numpy as np
            x = np.random.rand(3)
            np.random.seed(0)
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL001", "RL001"]
        # The alias resolves to the canonical module name in the message.
        assert findings[0].line == 3 and "numpy.random.rand" in findings[0].message

    def test_flags_stdlib_random(self):
        findings = lint(
            """
            import random
            random.shuffle([1, 2])
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL001"]
        assert "random.shuffle" in findings[0].message

    def test_flags_default_rng_construction_even_seeded(self):
        findings = lint(
            """
            import numpy as np
            from numpy.random import default_rng
            a = np.random.default_rng()
            b = default_rng(42)
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL001", "RL001"]
        assert "check_random_state" in findings[0].message

    def test_passed_generator_usage_is_clean(self):
        findings = lint(
            """
            import numpy as np

            def draw(rng: np.random.Generator) -> np.ndarray:
                return rng.uniform(0.0, 1.0, size=8)

            def normalize(random_state=None):
                if isinstance(random_state, np.random.Generator):
                    return random_state
                return None
            """,
            "src/repro/core/x.py",
        )
        assert findings == []

    def test_rng_module_is_allowlisted_by_default(self):
        findings = lint(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            """,
            "src/repro/rng.py",
        )
        assert findings == []


class TestRL002Layering:
    def test_core_must_not_import_automl(self):
        findings = lint(
            "from ..automl.automl import AutoMLClassifier\n",
            "src/repro/core/bad.py",
        )
        assert rule_ids(findings) == ["RL002"]
        assert "'core' must not import 'automl'" in findings[0].message

    def test_ml_must_import_nothing_above_it(self):
        findings = lint(
            "import repro.experiments\nfrom ..core.ale import ale_curve\n",
            "src/repro/ml/bad.py",
        )
        assert rule_ids(findings) == ["RL002", "RL002"]

    def test_netsim_must_not_import_core(self):
        findings = lint(
            "from ..core.subspace import FeatureDomain\n",
            "src/repro/netsim/bad.py",
        )
        assert rule_ids(findings) == ["RL002"]
        assert "repro.core.subspace" in findings[0].message

    def test_allowed_edges_are_clean(self):
        findings = lint(
            """
            from ..exceptions import ValidationError
            from ..featurespace import FeatureDomain
            from ..ml.base import check_X_y
            from ..rng import check_random_state
            from .ale import ale_curve
            """,
            "src/repro/core/fine.py",
        )
        assert findings == []

    def test_relative_levels_resolve(self):
        # repro/netsim/cc/base.py: "from ...exceptions import X" climbs two
        # packages to repro; "from ...core import y" would leak a layer.
        clean = lint("from ...exceptions import EmulationError\n", "src/repro/netsim/cc/base.py")
        dirty = lint("from ...core.subspace import Box\n", "src/repro/netsim/cc/base.py")
        assert clean == []
        assert rule_ids(dirty) == ["RL002"]

    def test_experiments_and_cli_are_unrestricted(self):
        findings = lint(
            """
            from ..automl.automl import AutoMLClassifier
            from ..core.feedback import AleFeedback
            from ..netsim.emulator import run_packet_scenario
            """,
            "src/repro/experiments/fine.py",
        )
        assert findings == []

    def test_third_party_imports_ignored(self):
        findings = lint("import numpy\nimport scipy.stats\n", "src/repro/ml/fine.py")
        assert findings == []

    def test_layer_override_from_config(self):
        config = config_from_table({"layers": {"core": ["automl", "ml", "rng", "exceptions"]}})
        findings = lint(
            "from ..automl.automl import AutoMLClassifier\n",
            "src/repro/core/now_fine.py",
            config=config,
        )
        assert findings == []


class TestRL003EstimatorContract:
    def test_fit_must_return_self(self):
        findings = lint(
            """
            class Bad:
                def fit(self, X, y):
                    self.coef_ = X.mean()
                    return self.coef_

                def predict(self, X):
                    return X
            """,
            "src/repro/ml/bad.py",
        )
        assert rule_ids(findings) == ["RL003"]
        assert "return self" in findings[0].message

    def test_fit_without_any_return_flagged(self):
        findings = lint(
            """
            class Bad:
                def fit(self, X, y):
                    self.coef_ = X.mean()

                def predict(self, X):
                    return X
            """,
            "src/repro/ml/bad.py",
        )
        assert rule_ids(findings) == ["RL003"]

    def test_missing_predict_and_transform_flagged(self):
        findings = lint(
            """
            class Bad:
                def fit(self, X, y):
                    return self
            """,
            "src/repro/ml/bad.py",
        )
        assert rule_ids(findings) == ["RL003"]
        assert "predict/transform" in findings[0].message

    def test_mixin_and_same_module_base_provide_predict(self):
        findings = lint(
            """
            class ClassifierMixin:
                def predict(self, X):
                    return X

            class _Base(ClassifierMixin):
                def fit(self, X, y):
                    return self

            class Concrete(_Base):
                def fit(self, X, y):
                    return self
            """,
            "src/repro/ml/fine.py",
        )
        assert findings == []

    def test_randomness_requires_random_state(self):
        findings = lint(
            """
            from ..rng import check_random_state

            class Bad:
                def __init__(self, n_estimators=10):
                    self.n_estimators = n_estimators

                def fit(self, X, y):
                    rng = check_random_state(123)
                    return self

                def predict(self, X):
                    return X
            """,
            "src/repro/ml/bad.py",
        )
        assert rule_ids(findings) == ["RL003"]
        assert "random_state" in findings[0].message

    def test_randomness_with_random_state_is_clean(self):
        findings = lint(
            """
            from ..rng import check_random_state

            class Fine:
                def __init__(self, random_state=None):
                    self.random_state = random_state

                def fit(self, X, y):
                    rng = check_random_state(self.random_state)
                    return self

                def predict(self, X):
                    return X
            """,
            "src/repro/ml/fine.py",
        )
        assert findings == []

    def test_rule_scoped_to_ml_package(self):
        findings = lint(
            """
            class NotAnEstimator:
                def fit(self, curve):
                    return curve
            """,
            "src/repro/core/fine.py",
        )
        assert findings == []

    def test_real_transformer_shape_is_clean(self):
        findings = lint(
            """
            class Scaler:
                def fit(self, X, y=None):
                    self.mean_ = X.mean(axis=0)
                    return self

                def transform(self, X):
                    return X - self.mean_
            """,
            "src/repro/ml/fine.py",
        )
        assert findings == []


class TestRL004WallClock:
    def test_flags_clock_reads_outside_budget_owners(self):
        findings = lint(
            """
            import time
            from time import perf_counter

            start = time.monotonic()
            t = time.time()
            p = perf_counter()
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL004", "RL004", "RL004"]

    def test_budget_owning_modules_allowlisted(self):
        source = "import time\nstart = time.monotonic()\n"
        for allowed in (
            "src/repro/automl/search.py",
            "src/repro/automl/halving.py",
            "src/repro/runtime/clock.py",
        ):
            assert lint(source, allowed) == []

    def test_time_module_non_clock_use_is_clean(self):
        findings = lint("import time\ntime.sleep(0.0)\n", "src/repro/core/x.py")
        assert findings == []


class TestRL005Footguns:
    def test_mutable_defaults_flagged(self):
        findings = lint(
            """
            def f(items=[]):
                return items

            def g(*, table={}, tags=set(), factory=dict()):
                return table, tags, factory
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL005"] * 4

    def test_bare_except_flagged(self):
        findings = lint(
            """
            try:
                risky()
            except:
                pass
            """,
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL005"]
        assert "bare" in findings[0].message

    def test_conforming_defaults_and_handlers_clean(self):
        findings = lint(
            """
            def f(items=None, n=3, name="x"):
                items = [] if items is None else items
                return items

            try:
                risky()
            except ValueError:
                pass
            """,
            "src/repro/core/x.py",
        )
        assert findings == []


class TestRL006DocstringDrift:
    def test_removed_parameter_still_documented_flagged(self):
        findings = lint(
            '''
            def f(x):
                """Add.

                Parameters
                ----------
                x : int
                    Kept.
                y : int
                    Removed from the signature.
                """
                return x
            ''',
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL006"]
        assert "'y'" in findings[0].message

    def test_comma_separated_names_each_checked(self):
        findings = lint(
            '''
            def f(timeout):
                """Run.

                Parameters
                ----------
                timeout, retries : int
                    Only timeout survives.
                """
            ''',
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL006"]
        assert "'retries'" in findings[0].message

    def test_class_docstring_checked_against_own_init(self):
        findings = lint(
            '''
            class C:
                """Widget.

                Parameters
                ----------
                old_name:
                    Renamed to new_name.
                """

                def __init__(self, new_name=None):
                    self.new_name = new_name
            ''',
            "src/repro/core/x.py",
        )
        assert rule_ids(findings) == ["RL006"]
        assert "class 'C'" in findings[0].message

    def test_class_without_own_init_skipped(self):
        findings = lint(
            '''
            class Config:
                """A dataclass-style class.

                Parameters
                ----------
                anything:
                    Signature is generated, not visible statically.
                """

                n: int = 3
            ''',
            "src/repro/core/x.py",
        )
        assert findings == []

    def test_kwargs_absorbs_documented_names(self):
        findings = lint(
            '''
            def f(x, **kwargs):
                """Doc.

                Parameters
                ----------
                anything:
                    Lands in kwargs.
                """
            ''',
            "src/repro/core/x.py",
        )
        assert findings == []

    def test_matching_section_clean_and_later_sections_ignored(self):
        findings = lint(
            '''
            def f(x, *items, retries=0):
                """Doc.

                Parameters
                ----------
                x : int
                    With a deeper-indented description line
                    that must not parse as an entry.
                *items:
                    Star-prefixed entry.
                retries:
                    Keyword-only.

                Returns
                -------
                value : int
                    Return names are not parameters.
                """
            ''',
            "src/repro/core/x.py",
        )
        assert findings == []

    def test_undocumented_parameters_allowed(self):
        findings = lint(
            '''
            def f(x, y, z):
                """Doc.

                Parameters
                ----------
                x : int
                    The only interesting one.
                """
            ''',
            "src/repro/core/x.py",
        )
        assert findings == []


class TestSuppressionsAndAllowlists:
    def test_inline_disable_suppresses_matching_rule(self):
        findings = lint(
            """
            import numpy as np
            a = np.random.rand(3)  # reprolint: disable=RL001
            b = np.random.rand(3)  # reprolint: disable=RL004
            c = np.random.rand(3)
            """,
            "src/repro/core/x.py",
        )
        assert [finding.line for finding in findings] == [4, 5]

    def test_inline_disable_all(self):
        findings = lint(
            "import time\nt = time.time()  # reprolint: disable=all\n",
            "src/repro/core/x.py",
        )
        assert findings == []

    def test_config_allowlist_glob_and_suffix(self):
        config = config_from_table({"allow": {"RL004": ["src/repro/core/clocky.py", "*/generated/*"]}})
        source = "import time\nt = time.time()\n"
        assert lint(source, "src/repro/core/clocky.py", config=config) == []
        assert lint(source, "src/repro/generated/out.py", config=config) == []
        assert rule_ids(lint(source, "src/repro/core/other.py", config=config)) == ["RL004"]

    def test_config_disable_rule_globally(self):
        config = config_from_table({"disable": ["RL005"]})
        findings = lint("def f(x=[]):\n    return x\n", "src/repro/core/x.py", config=config)
        assert findings == []

    def test_config_merges_over_defaults(self):
        # Adding an allowlist entry must not drop the built-in rng.py one.
        config = config_from_table({"allow": {"RL001": ["somewhere/else.py"]}})
        assert lint("import numpy as np\nnp.random.default_rng()\n", "src/repro/rng.py", config=config) == []

    def test_malformed_table_rejected(self):
        with pytest.raises(LintConfigError):
            config_from_table({"disable": "RL001"})
        with pytest.raises(LintConfigError):
            config_from_table({"layers": {"core": 7}})


class TestReporters:
    def _findings(self):
        return lint(
            "import numpy as np\nnp.random.seed(0)\nimport time\nt = time.time()\n",
            "src/repro/core/x.py",
        )

    def test_text_report_names_file_line_rule(self):
        text = render_text(self._findings())
        assert "src/repro/core/x.py:2:0 RL001" in text
        assert "src/repro/core/x.py:4:4 RL004" in text
        assert text.endswith("reprolint: 2 findings")

    def test_json_report_is_valid_and_stable(self):
        first = render_json(self._findings())
        second = render_json(self._findings())
        assert first == second
        document = json.loads(first)
        assert document["count"] == 2
        assert [f["rule"] for f in document["findings"]] == ["RL001", "RL004"]
        assert set(document["findings"][0]) == {"path", "line", "col", "rule", "severity", "message"}

    def test_findings_sorted_deterministically(self):
        findings = self._findings()
        assert findings == sorted(findings)


class TestRL007DeadExport:
    """Cross-file dead-export detection via ``LintEngine.lint_project``."""

    @staticmethod
    def write_tree(tmp_path, files):
        """Write a src-layout package tree and return the file paths."""
        paths = []
        for relative, source in files.items():
            path = tmp_path / relative
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
            paths.append(path)
        # Make every directory between src/ and each module a package, so
        # engine module resolution sees the full dotted path (repro.core.x).
        for path in paths:
            if "src" not in path.parts:
                continue
            current = path.parent
            while current.name != "src" and current != tmp_path:
                init = current / "__init__.py"
                if not init.exists():
                    init.write_text("", encoding="utf-8")
                current = current.parent
        return paths

    def scan(self, tmp_path, files, config=None):
        self.write_tree(tmp_path, files)
        engine = LintEngine(config or LintConfig())
        return engine.lint_project([tmp_path], root=tmp_path)

    def test_unused_export_flagged(self, tmp_path):
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["used_helper", "dead_helper"]

                def used_helper():
                    return 1

                def dead_helper():
                    return 2
                """,
                "tests/test_util.py": """
                from repro.core.util import used_helper

                assert used_helper() == 1
                """,
            },
        )
        assert [f.rule_id for f in findings] == ["RL007"]
        assert "dead_helper" in findings[0].message
        assert findings[0].path.endswith("util.py")

    def test_export_used_only_in_own_module_is_dead(self, tmp_path):
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["internal_only"]

                def internal_only():
                    return 1

                VALUE = internal_only()
                """,
            },
        )
        assert [f.rule_id for f in findings] == ["RL007"]

    def test_attribute_access_counts_as_use(self, tmp_path):
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["helper"]

                def helper():
                    return 1
                """,
                "benchmarks/bench.py": """
                import repro.core.util as util

                util.helper()
                """,
            },
        )
        assert findings == []

    def test_star_import_exempts_module(self, tmp_path):
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["maybe_used"]

                def maybe_used():
                    return 1
                """,
                "tests/test_star.py": """
                from repro.core.util import *
                """,
            },
        )
        assert findings == []

    def test_allowlist_by_name_and_qualified_glob(self, tmp_path):
        files = {
            "src/repro/core/util.py": """
            __all__ = ["public_api", "other_dead"]

            def public_api():
                return 1

            def other_dead():
                return 2
            """,
        }
        config = config_from_table({"deadcode": {"allow": ["repro.core.util.public_api"]}})
        findings = self.scan(tmp_path, files, config=config)
        assert len(findings) == 1 and "other_dead" in findings[0].message
        config = config_from_table({"deadcode": {"allow": ["repro.core.*"]}})
        findings = self.scan(tmp_path, files, config=config)
        assert findings == []

    def test_inline_suppression_honored(self, tmp_path):
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = [
                    "quiet_dead",  # reprolint: disable=RL007
                ]

                def quiet_dead():
                    return 1
                """,
            },
        )
        assert findings == []

    def test_disable_in_config(self, tmp_path):
        config = config_from_table({"disable": ["RL007"]})
        findings = self.scan(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["dead"]

                def dead():
                    return 1
                """,
            },
            config=config,
        )
        assert findings == []

    def test_cli_reports_dead_export(self, tmp_path, capsys, monkeypatch):
        self.write_tree(
            tmp_path,
            {
                "src/repro/core/util.py": """
                __all__ = ["dead_name"]

                def dead_name():
                    return 1
                """,
            },
        )
        monkeypatch.chdir(tmp_path)  # keep the repo pyproject out of discovery
        exit_code = repro_main(["lint", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "RL007" in out and "dead_name" in out


class TestEndToEnd:
    def test_shipped_tree_is_clean_via_cli(self, capsys):
        exit_code = repro_main(["lint", str(SRC / "repro")])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "0 findings" in out

    def test_seeded_violation_fails_with_location(self, tmp_path, capsys):
        # Reproduce the acceptance scenario: a stray np.random.rand() in a
        # copy of core/ale.py must fail the lint run, naming file/line/rule.
        bad_tree = tmp_path / "src" / "repro" / "core"
        bad_tree.mkdir(parents=True)
        original = (SRC / "repro" / "core" / "ale.py").read_text(encoding="utf-8")
        bad_file = bad_tree / "ale.py"
        bad_file.write_text(original + "\n_noise = np.random.rand(3)\n", encoding="utf-8")
        n_lines = original.count("\n") + 2

        exit_code = repro_main(["lint", str(tmp_path / "src")])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert f"ale.py:{n_lines}" in out
        assert "RL001" in out

    def test_json_format_flag(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n", encoding="utf-8")
        exit_code = repro_main(["lint", str(bad), "--format", "json"])
        document = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert document["count"] == 1
        assert document["findings"][0]["rule"] == "RL004"

    def test_missing_path_is_usage_error(self, capsys):
        exit_code = repro_main(["lint", "no/such/dir"])
        assert exit_code == 2
        assert "no such path" in capsys.readouterr().err
