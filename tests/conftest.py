"""Shared fixtures.

Expensive artifacts (emulator-labeled datasets, fitted AutoML ensembles)
are session-scoped so the suite stays fast; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.core import FeatureDomain
from repro.datasets import generate_firewall_dataset, generate_scream_dataset


@pytest.fixture(scope="session")
def blobs_2class():
    """Two well-separated Gaussian blobs: the 'any sane model works' set."""
    rng = np.random.default_rng(42)
    n = 150
    X0 = rng.normal(loc=(-2.0, 0.0), scale=0.8, size=(n, 2))
    X1 = rng.normal(loc=(2.0, 1.0), scale=0.8, size=(n, 2))
    X = np.vstack([X0, X1])
    y = np.array([0] * n + [1] * n)
    order = rng.permutation(2 * n)
    return X[order], y[order]


@pytest.fixture(scope="session")
def blobs_3class():
    """Three-class blobs for multi-class paths."""
    rng = np.random.default_rng(43)
    n = 90
    centers = [(-3.0, 0.0), (3.0, 0.0), (0.0, 3.5)]
    parts = [rng.normal(loc=c, scale=0.9, size=(n, 2)) for c in centers]
    X = np.vstack(parts)
    y = np.repeat([0, 1, 2], n)
    order = rng.permutation(3 * n)
    return X[order], y[order]


@pytest.fixture(scope="session")
def nonlinear_xor():
    """XOR-ish problem linear models cannot solve (tree sanity checks)."""
    rng = np.random.default_rng(44)
    n = 400
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


@pytest.fixture(scope="session")
def unit_domains():
    return [FeatureDomain("f0", 0.0, 1.0), FeatureDomain("f1", 0.0, 1.0)]


@pytest.fixture(scope="session")
def scream_data():
    """A small emulator-labeled Scream-vs-rest dataset (session cached)."""
    return generate_scream_dataset(160, random_state=123)


@pytest.fixture(scope="session")
def firewall_data():
    """A small synthetic firewall dataset (session cached)."""
    return generate_firewall_dataset(1500, random_state=321)


@pytest.fixture(scope="session")
def fitted_automl(scream_data):
    """One fitted AutoML run on the scream data, reused across tests."""
    automl = AutoMLClassifier(
        n_iterations=8, ensemble_size=5, min_distinct_members=3, random_state=7
    )
    return automl.fit(scream_data.X, scream_data.y)


@pytest.fixture(scope="session")
def served_scream_registry(tmp_path_factory, fitted_automl, scream_data):
    """A session registry with the shared ensemble as ``scream`` v1.

    Read-only by contract: tests that mutate manifest state (promotion,
    canary splits) must build their own registry in a tmp_path.
    """
    from repro.serve import ModelRegistry

    registry = ModelRegistry(tmp_path_factory.mktemp("served-scream"))
    registry.register("scream", fitted_automl, scream_data.X, scream_data.domains)
    return registry
