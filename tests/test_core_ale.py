"""Tests for the ALE computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ale import ale_curve, ale_curves_for_features, ale_curves_for_models, make_grid
from repro.exceptions import ValidationError
from repro.ml.linear import softmax


class _LinearProbaModel:
    """predict_proba = sigmoid(w @ x): analytically tractable for ALE."""

    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=np.float64)

    def predict_proba(self, X):
        logits = np.asarray(X) @ self.weights
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


class _IgnoresFeatureModel:
    """Output depends on feature 1 only."""

    def predict_proba(self, X):
        X = np.asarray(X)
        p = 1 / (1 + np.exp(-X[:, 1]))
        return np.column_stack([1 - p, p])


class TestMakeGrid:
    def test_quantile_grid_covers_data(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=500)
        edges = make_grid(x, grid_size=10)
        assert edges[0] == pytest.approx(x.min())
        assert edges[-1] == pytest.approx(x.max())
        assert np.all(np.diff(edges) > 0)

    def test_quantile_grid_equal_mass(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=1000)
        edges = make_grid(x, grid_size=8)
        counts, _ = np.histogram(x, bins=edges)
        assert counts.min() >= 100  # ~125 each

    def test_uniform_grid_spacing(self):
        edges = make_grid(np.array([0.0, 10.0]), grid_size=5, strategy="uniform", domain=(0, 10))
        assert np.allclose(np.diff(edges), 2.0)

    def test_duplicate_edges_dropped(self):
        x = np.array([1.0] * 95 + [2.0] * 5)
        edges = make_grid(x, grid_size=10)
        assert np.unique(edges).size == edges.size

    def test_constant_feature_rejected(self):
        with pytest.raises(ValidationError, match="constant"):
            make_grid(np.ones(50), grid_size=5)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            make_grid(np.array([1.0]), grid_size=5)
        with pytest.raises(ValidationError):
            make_grid(np.array([1.0, 2.0]), grid_size=1)
        with pytest.raises(ValidationError):
            make_grid(np.array([1.0, 2.0]), strategy="magic")
        with pytest.raises(ValidationError):
            make_grid(np.array([1.0, 2.0]), strategy="uniform", domain=(5, 5))

    def test_quantile_domain_clips_source(self):
        rng = np.random.default_rng(5)
        x = np.concatenate([rng.uniform(0, 1, size=400), [-50.0, 50.0]])
        edges = make_grid(x, grid_size=8, strategy="quantile", domain=(0.0, 1.0))
        assert edges[0] >= 0.0 and edges[-1] <= 1.0
        # Without the domain the outliers stretch the grid far beyond it.
        unbounded = make_grid(x, grid_size=8, strategy="quantile")
        assert unbounded[0] < 0.0 and unbounded[-1] > 1.0

    def test_quantile_domain_noop_when_data_inside(self):
        rng = np.random.default_rng(6)
        x = rng.uniform(0.2, 0.8, size=300)
        bounded = make_grid(x, grid_size=8, strategy="quantile", domain=(0.0, 1.0))
        unbounded = make_grid(x, grid_size=8, strategy="quantile")
        assert np.array_equal(bounded, unbounded)

    def test_quantile_degenerate_domain_rejected(self):
        with pytest.raises(ValidationError, match="degenerate"):
            make_grid(np.array([1.0, 2.0, 3.0]), strategy="quantile", domain=(2.0, 2.0))


class TestAleCurve:
    def _data(self, n=600, d=3, seed=0):
        return np.random.default_rng(seed).uniform(-2, 2, size=(n, d))

    def test_linear_model_gives_linear_ale(self):
        # For f(x) = sigmoid(w0*x0), ALE of x0 should be monotonically
        # increasing and ALE of an ignored feature flat.
        X = self._data()
        model = _LinearProbaModel([1.5, 0.0, 0.0])
        edges = make_grid(X[:, 0], grid_size=12)
        curve = ale_curve(model, X, 0, edges)
        assert np.all(np.diff(curve.values[:, 1]) >= -1e-9)
        assert curve.value_range() > 0.3

    def test_ignored_feature_is_flat(self):
        X = self._data()
        model = _IgnoresFeatureModel()
        edges = make_grid(X[:, 0], grid_size=12)
        curve = ale_curve(model, X, 0, edges)
        assert curve.value_range() < 1e-9

    def test_centering_weighted_zero_mean(self):
        X = self._data()
        model = _LinearProbaModel([1.0, 0.5, -0.5])
        edges = make_grid(X[:, 1], grid_size=10)
        curve = ale_curve(model, X, 1, edges)
        weighted_mean = np.sum(curve.counts[:, None] * curve.values, axis=0) / curve.counts.sum()
        assert np.allclose(weighted_mean, 0.0, atol=1e-9)

    def test_counts_sum_to_samples(self):
        X = self._data(n=200)
        edges = make_grid(X[:, 0], grid_size=8)
        curve = ale_curve(_IgnoresFeatureModel(), X, 0, edges)
        assert curve.counts.sum() == 200

    def test_probability_class_columns(self):
        X = self._data()
        edges = make_grid(X[:, 0], grid_size=6)
        curve = ale_curve(_LinearProbaModel([1.0, 0, 0]), X, 0, edges)
        assert curve.n_classes == 2
        # Class 0's ALE is the mirror image of class 1's (probabilities sum to 1).
        assert np.allclose(curve.values[:, 0], -curve.values[:, 1], atol=1e-12)

    def test_grid_metadata(self):
        X = self._data()
        edges = make_grid(X[:, 2], grid_size=7)
        curve = ale_curve(_IgnoresFeatureModel(), X, 2, edges, feature_name="loss")
        assert curve.feature_name == "loss"
        assert curve.grid.shape[0] == curve.n_bins == edges.size - 1

    def test_out_of_range_samples_clamped(self):
        X = self._data()
        edges = np.array([-0.5, 0.0, 0.5])  # narrower than the data
        curve = ale_curve(_LinearProbaModel([1, 0, 0]), X, 0, edges)
        assert curve.counts.sum() == X.shape[0]

    def test_validation(self):
        X = self._data()
        model = _IgnoresFeatureModel()
        with pytest.raises(ValidationError):
            ale_curve(model, X, 99, np.array([0.0, 1.0]))
        with pytest.raises(ValidationError):
            ale_curve(model, X, 0, np.array([0.0]))
        with pytest.raises(ValidationError):
            ale_curve(model, X[0], 0, np.array([0.0, 1.0]))

    def test_empty_X_rejected(self):
        # Regression: an empty dataset used to flow through to an all-NaN
        # curve (0/0 in the centering step) instead of failing loudly.
        with pytest.raises(ValidationError, match="no samples"):
            ale_curve(_IgnoresFeatureModel(), np.empty((0, 3)), 0, np.array([0.0, 1.0]))

    def test_ale_insensitive_to_correlated_shift(self):
        # The key ALE property vs PDP: effects are computed locally, so a
        # strong correlation between features does not leak feature 1's
        # effect into feature 0's curve.
        rng = np.random.default_rng(3)
        x0 = rng.uniform(-2, 2, size=800)
        x1 = x0 + rng.normal(0, 0.1, size=800)  # highly correlated
        X = np.column_stack([x0, x1])
        model = _IgnoresFeatureModel()  # only uses feature 1
        edges = make_grid(X[:, 0], grid_size=10)
        curve0 = ale_curve(model, X, 0, edges)
        assert curve0.value_range() < 0.05


class TestAleAcrossModels:
    def test_shared_grid_alignment(self, blobs_2class):
        X, _ = blobs_2class
        models = [_LinearProbaModel([1.0, 0.0]), _LinearProbaModel([2.0, 0.0])]
        edges = make_grid(X[:, 0], grid_size=8)
        curves = ale_curves_for_models(models, X, 0, edges)
        assert len(curves) == 2
        assert np.array_equal(curves[0].edges, curves[1].edges)

    def test_identical_models_zero_variance(self, blobs_2class):
        X, _ = blobs_2class
        models = [_LinearProbaModel([1.0, 0.0])] * 3
        edges = make_grid(X[:, 0], grid_size=8)
        curves = ale_curves_for_models(models, X, 0, edges)
        stacked = np.stack([c.values for c in curves])
        assert np.allclose(stacked.std(axis=0), 0.0)

    def test_empty_committee_rejected(self, blobs_2class):
        X, _ = blobs_2class
        with pytest.raises(ValidationError):
            ale_curves_for_models([], X, 0, np.array([0.0, 1.0]))


class _CountingModel(_LinearProbaModel):
    """Counts predict_proba calls to observe batching behaviour."""

    def __init__(self, weights):
        super().__init__(weights)
        self.calls = 0

    def predict_proba(self, X):
        self.calls += 1
        return super().predict_proba(X)


class TestBatchedCurves:
    def _setup(self, seed=0, n=200, d=3, n_features=3):
        X = np.random.default_rng(seed).uniform(-2, 2, size=(n, d))
        edges = [make_grid(X[:, j], grid_size=8) for j in range(n_features)]
        return X, list(range(n_features)), edges

    def test_batched_bitwise_equals_per_feature(self):
        X, indices, edges = self._setup()
        model = _LinearProbaModel([1.0, -0.5, 0.25])
        batched = ale_curves_for_features(model, X, indices, edges)
        for j, curve in zip(indices, batched):
            single = ale_curve(model, X, j, edges[j])
            assert np.array_equal(curve.values, single.values)
            assert np.array_equal(curve.counts, single.counts)
            assert np.array_equal(curve.edges, single.edges)

    def test_tiny_batch_bound_bitwise_identical(self):
        # max_batch_rows=1 degrades to one call per perturbed copy — the
        # historical shape — and must still produce the same bits.
        X, indices, edges = self._setup(seed=1)
        model = _LinearProbaModel([0.5, 1.5, -1.0])
        default = ale_curves_for_features(model, X, indices, edges)
        unbatched = ale_curves_for_features(model, X, indices, edges, max_batch_rows=1)
        for a, b in zip(default, unbatched):
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.counts, b.counts)

    def test_batching_reduces_model_calls(self):
        X, indices, edges = self._setup(seed=2)
        batched = _CountingModel([1.0, 0.0, 0.0])
        ale_curves_for_features(batched, X, indices, edges)
        assert batched.calls == 1  # 6 copies of 200 rows fit in one batch
        unbatched = _CountingModel([1.0, 0.0, 0.0])
        ale_curves_for_features(unbatched, X, indices, edges, max_batch_rows=1)
        assert unbatched.calls == 2 * len(indices)

    def test_feature_names_and_defaults(self):
        X, indices, edges = self._setup()
        named = ale_curves_for_features(
            _IgnoresFeatureModel(), X, indices, edges, feature_names=["a", "b", "c"]
        )
        assert [c.feature_name for c in named] == ["a", "b", "c"]
        unnamed = ale_curves_for_features(_IgnoresFeatureModel(), X, indices, edges)
        assert [c.feature_name for c in unnamed] == [f"feature_{j}" for j in indices]

    def test_validation(self):
        X, indices, edges = self._setup()
        model = _IgnoresFeatureModel()
        with pytest.raises(ValidationError, match="edge arrays"):
            ale_curves_for_features(model, X, indices, edges[:-1])
        with pytest.raises(ValidationError, match="names"):
            ale_curves_for_features(model, X, indices, edges, feature_names=["a"])
        with pytest.raises(ValidationError, match="max_batch_rows"):
            ale_curves_for_features(model, X, indices, edges, max_batch_rows=0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    weight=st.floats(-3, 3, allow_nan=False),
    grid_size=st.integers(3, 20),
)
def test_ale_centering_property(seed, weight, grid_size):
    """Count-weighted mean of any ALE curve is ~0 (centering invariant)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(150, 2))
    model = _LinearProbaModel([weight, 0.3])
    edges = make_grid(X[:, 0], grid_size=grid_size)
    curve = ale_curve(model, X, 0, edges)
    weighted = np.sum(curve.counts[:, None] * curve.values, axis=0) / curve.counts.sum()
    assert np.allclose(weighted, 0.0, atol=1e-9)
