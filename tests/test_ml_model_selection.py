"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.ml.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    partition_evenly,
    stratified_split_indices,
    train_test_split,
)
from repro.ml.naive_bayes import GaussianNB


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100.0).reshape(-1, 1)
        y = np.arange(100)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0)
        assert X_test.shape[0] == 20 and X_train.shape[0] == 80

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(50.0).reshape(-1, 1)
        y = np.arange(50)
        X_train, X_test, _, _ = train_test_split(X, y, test_size=0.3, random_state=1)
        combined = np.sort(np.concatenate([X_train.ravel(), X_test.ravel()]))
        assert np.array_equal(combined, np.arange(50.0))

    def test_stratified_preserves_ratio(self):
        y = np.array([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.25, stratify=True, random_state=2)
        assert np.mean(y_test) == pytest.approx(0.2, abs=0.05)
        assert np.mean(y_train) == pytest.approx(0.2, abs=0.05)

    def test_stratified_keeps_rare_class_in_train(self):
        y = np.array([0] * 20 + [1] * 2)
        X = np.zeros((22, 1))
        _, _, y_train, _ = train_test_split(X, y, test_size=0.5, stratify=True, random_state=3)
        assert (y_train == 1).sum() >= 1

    def test_reproducible(self):
        X = np.arange(30.0).reshape(-1, 1)
        y = np.arange(30)
        a = train_test_split(X, y, random_state=9)[0]
        b = train_test_split(X, y, random_state=9)[0]
        assert np.array_equal(a, b)

    def test_invalid_test_size(self):
        with pytest.raises(ValidationError):
            train_test_split(np.zeros((5, 1)), np.zeros(5), test_size=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            train_test_split(np.zeros((5, 1)), np.zeros(4))


class TestPartitionEvenly:
    def test_covers_everything_once(self):
        rng = np.random.default_rng(0)
        parts = partition_evenly(47, 5, rng=rng)
        combined = np.sort(np.concatenate(parts))
        assert np.array_equal(combined, np.arange(47))

    def test_sizes_nearly_equal(self):
        rng = np.random.default_rng(1)
        sizes = [p.size for p in partition_evenly(103, 20, rng=rng)]
        assert max(sizes) - min(sizes) <= 1

    def test_too_many_groups(self):
        with pytest.raises(ValidationError):
            partition_evenly(3, 5, rng=np.random.default_rng(0))


class TestKFold:
    def test_folds_partition_data(self):
        X = np.zeros((30, 1))
        seen = []
        for train_idx, test_idx in KFold(3, random_state=0).split(X):
            assert np.intersect1d(train_idx, test_idx).size == 0
            seen.append(test_idx)
        assert np.array_equal(np.sort(np.concatenate(seen)), np.arange(30))

    def test_min_splits(self):
        with pytest.raises(ValidationError):
            KFold(1)

    def test_too_few_samples(self):
        with pytest.raises(ValidationError):
            list(KFold(5).split(np.zeros((3, 1))))


class TestStratifiedKFold:
    def test_class_ratio_per_fold(self):
        y = np.array([0] * 60 + [1] * 30)
        X = np.zeros((90, 1))
        for _, test_idx in StratifiedKFold(3, random_state=0).split(X, y):
            assert np.mean(y[test_idx]) == pytest.approx(1 / 3, abs=0.1)

    def test_rare_class_rejected(self):
        y = np.array([0] * 10 + [1])
        with pytest.raises(ValidationError, match="fewer than"):
            list(StratifiedKFold(3).split(np.zeros((11, 1)), y))


class TestCrossValScore:
    def test_scores_reasonable_on_blobs(self, blobs_2class):
        X, y = blobs_2class
        scores = cross_val_score(GaussianNB(), X, y)
        assert scores.shape == (3,)
        assert scores.mean() > 0.9

    def test_custom_scorer(self, blobs_2class):
        X, y = blobs_2class
        scores = cross_val_score(GaussianNB(), X, y, scorer=lambda t, p: 0.123)
        assert np.allclose(scores, 0.123)


class TestStratifiedSplitIndices:
    def test_disjoint_and_complete(self):
        y = np.array([0, 0, 0, 1, 1, 1, 1, 1])
        train, test = stratified_split_indices(y, test_fraction=0.5, rng=np.random.default_rng(0))
        assert np.intersect1d(train, test).size == 0
        assert np.array_equal(np.sort(np.concatenate([train, test])), np.arange(8))
