"""Golden-master regression harness for the sharded experiment grid.

The acceptance property of the grid sharding: ``run_table1`` / ``run_ucl``
produce **bitwise-identical** scores no matter how the grid executes —
serial in-process, on a process pool, with tasks submitted in a shuffled
order, or answered entirely from a warm artifact cache.  The checked-in
fixtures under ``tests/golden/`` pin the exact floating-point scores of a
small-but-real configuration, so any change that moves a random stream
(reseeding, re-sharding, reordering draws) fails loudly instead of
silently shifting published numbers.

Fixtures are JSON: ``repr`` round-trips every IEEE-754 double exactly, so
equality below is ``==`` on floats, not ``allclose``.  Regenerate after an
*intentional* stream change with::

    PYTHONPATH=src python tests/test_golden_master.py --regenerate

The serial and cache-warm regimes run in tier-1; the process-pool and
shuffled-submission regimes are ``@pytest.mark.slow`` (select with
``pytest -m slow``) because each one re-runs the full grid.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments import Table1Config, UCLConfig, run_table1, run_ucl
from repro.runtime import ArtifactCache, ProcessExecutor, SerialExecutor, TaskRuntime

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
TABLE1_FIXTURE = GOLDEN_DIR / "table1_golden.json"
UCL_FIXTURE = GOLDEN_DIR / "ucl_golden.json"

# Small but real: every wave of the grid (netsim datasets, initial fits,
# cells) runs for real, across 2 repeats and a strategy mix covering the
# oracle path (cross_ale), the pool path (within_ale_pool), and both
# baselines.  ~7 s serial.
GOLDEN_TABLE1 = Table1Config(
    n_train=60,
    n_test=80,
    n_pool=60,
    n_feedback=10,
    n_test_sets=4,
    n_repeats=2,
    cross_runs=2,
    automl_iterations=4,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=8,
)
TABLE1_ALGOS = ["no_feedback", "uniform", "cross_ale", "within_ale_pool"]

GOLDEN_UCL = UCLConfig(
    n_samples=400,
    n_feedback=16,
    n_test_sets=4,
    n_resplits=2,
    cross_runs=2,
    automl_iterations=4,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=8,
)
UCL_ALGOS = ["no_feedback", "within_ale_pool", "confidence"]

GRID_TASKS = ("repro.experiments.tasks:scream_dataset",
              "repro.experiments.tasks:firewall_dataset",
              "repro.experiments.tasks:grid_cell",
              "automl.fit")


class ShuffledRuntime(TaskRuntime):
    """A runtime that reverses submission order before executing.

    Cell streams hang off ``(repeat_seed, _CELL_KEY, strategy_key(name))``
    — pure functions of cell identity — so schedule cannot matter.  This
    subclass proves it without needing a racy parallel interleaving.
    """

    def run(self, tasks, **kwargs):
        tasks = list(tasks)
        return list(reversed(super().run(list(reversed(tasks)), **kwargs)))


def _scores_dict(table) -> dict[str, list[float]]:
    return {name: [float(s) for s in table.scores(name).scores] for name in table.names()}


def _run_table1(runtime=None):
    table, record = run_table1(GOLDEN_TABLE1, algorithms=list(TABLE1_ALGOS), runtime=runtime)
    return _scores_dict(table), record


def _run_ucl(runtime=None):
    table, record = run_ucl(GOLDEN_UCL, algorithms=list(UCL_ALGOS), runtime=runtime)
    return _scores_dict(table), record


def _load(path: Path) -> dict[str, list[float]]:
    return json.loads(path.read_text(encoding="utf-8"))["scores"]


class TestGoldenMaster:
    def test_table1_serial_matches_fixture(self):
        scores, record = _run_table1()
        assert scores == _load(TABLE1_FIXTURE)
        grid = record.metadata["grid"]
        assert grid["failed_cells"] == [] and grid["dropped_algorithms"] == []
        assert grid["n_cells"] == GOLDEN_TABLE1.n_repeats * len(TABLE1_ALGOS)

    def test_ucl_serial_matches_fixture(self):
        scores, record = _run_ucl()
        assert scores == _load(UCL_FIXTURE)
        assert record.metadata["grid"]["failed_cells"] == []

    def test_table1_cache_warm_is_bitwise_identical_and_computes_nothing(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = TaskRuntime(SerialExecutor(), cache=cache, cache_mode="on")
        cold_scores, _ = _run_table1(cold)
        assert cold_scores == _load(TABLE1_FIXTURE)
        assert cold.stats["cache_stores"] == cold.stats["executed"] > 0

        warm = TaskRuntime(SerialExecutor(), cache=cache, cache_mode="on")
        warm_scores, _ = _run_table1(warm)
        assert warm_scores == cold_scores
        # The whole grid — netsim datasets, AutoML fits, cells — must be
        # answered from the cache: zero executions of any task family.
        assert warm.stats["executed"] == 0
        assert all(warm.executions_of(name) == 0 for name in GRID_TASKS)
        assert warm.stats["cache_hits"] == cold.stats["cache_stores"]

    @pytest.mark.slow
    def test_table1_process_pool_matches_fixture(self):
        runtime = TaskRuntime(ProcessExecutor(max_workers=2))
        scores, _ = _run_table1(runtime)
        assert scores == _load(TABLE1_FIXTURE)
        assert runtime.stats["executed"] > 0

    @pytest.mark.slow
    def test_table1_shuffled_submission_matches_fixture(self):
        scores, _ = _run_table1(ShuffledRuntime(SerialExecutor()))
        assert scores == _load(TABLE1_FIXTURE)

    @pytest.mark.slow
    def test_ucl_cache_warm_matches_fixture(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        _run_ucl(TaskRuntime(SerialExecutor(), cache=cache, cache_mode="on"))
        warm = TaskRuntime(SerialExecutor(), cache=cache, cache_mode="on")
        warm_scores, _ = _run_ucl(warm)
        assert warm_scores == _load(UCL_FIXTURE)
        assert warm.stats["executed"] == 0


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for path, runner, config, algos in (
        (TABLE1_FIXTURE, _run_table1, GOLDEN_TABLE1, TABLE1_ALGOS),
        (UCL_FIXTURE, _run_ucl, GOLDEN_UCL, UCL_ALGOS),
    ):
        scores, _ = runner()
        payload = {
            "config": {k: getattr(config, k) for k in type(config).__dataclass_fields__},
            "algorithms": list(algos),
            "scores": scores,
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {path} ({sum(len(v) for v in scores.values())} scores)")


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit("usage: python tests/test_golden_master.py --regenerate")
    _regenerate()
