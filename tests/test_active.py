"""Tests for the active-learning baselines and upsampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.active import (
    consensus_kl,
    entropy_scores,
    least_confidence_scores,
    margin_scores,
    random_oversample,
    sample_uniform,
    select_by_committee,
    select_least_confident,
    smote,
    vote_entropy,
)
from repro.core.subspace import FeatureDomain
from repro.exceptions import ValidationError
from repro.ml import GaussianNB, LogisticRegression


class _FixedProbaModel:
    def __init__(self, proba):
        self.proba = np.asarray(proba, dtype=np.float64)

    def predict_proba(self, X):
        return self.proba

    def predict(self, X):
        return np.argmax(self.proba, axis=1)


class TestUniform:
    def test_in_domains(self):
        domains = [FeatureDomain("a", 0, 1), FeatureDomain("b", 10, 20), FeatureDomain("n", 1, 5, integer=True)]
        points = sample_uniform(domains, 200, random_state=0)
        assert points.shape == (200, 3)
        assert points[:, 0].min() >= 0 and points[:, 0].max() <= 1
        assert points[:, 1].min() >= 10 and points[:, 1].max() <= 20
        assert np.all(points[:, 2] == np.round(points[:, 2]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            sample_uniform([], 5)
        with pytest.raises(ValidationError):
            sample_uniform([FeatureDomain("a", 0, 1)], 0)


class TestConfidence:
    def test_least_confidence_ranks_uncertain_first(self):
        proba = np.array([[0.99, 0.01], [0.55, 0.45], [0.80, 0.20]])
        model = _FixedProbaModel(proba)
        picks = select_least_confident(model, np.zeros((3, 2)), 2)
        assert picks.tolist() == [1, 2]

    def test_margin_scores(self):
        proba = np.array([[0.5, 0.5, 0.0], [0.9, 0.05, 0.05]])
        scores = margin_scores(_FixedProbaModel(proba), np.zeros((2, 1)))
        assert scores[0] > scores[1]

    def test_entropy_scores(self):
        proba = np.array([[1 / 3, 1 / 3, 1 / 3], [1.0, 0.0, 0.0]])
        scores = entropy_scores(_FixedProbaModel(proba), np.zeros((2, 1)))
        assert scores[0] == pytest.approx(np.log(3))
        assert scores[1] == pytest.approx(0.0, abs=1e-6)

    def test_margin_needs_two_classes(self):
        with pytest.raises(ValidationError):
            margin_scores(_FixedProbaModel(np.ones((2, 1))), np.zeros((2, 1)))

    def test_pool_size_validation(self):
        model = _FixedProbaModel(np.full((3, 2), 0.5))
        with pytest.raises(ValidationError):
            select_least_confident(model, np.zeros((3, 2)), 5)
        with pytest.raises(ValidationError):
            select_least_confident(model, np.zeros((3, 2)), 0)

    def test_on_real_model_boundary_points_selected(self, blobs_2class):
        X, y = blobs_2class
        model = LogisticRegression().fit(X, y)
        pool = np.array([[-5.0, 0.0], [0.0, 0.5], [5.0, 1.0]])  # middle is near boundary
        picks = select_least_confident(model, pool, 1)
        assert picks[0] == 1


class TestQBC:
    def test_vote_entropy_zero_when_unanimous(self):
        members = [_FixedProbaModel(np.array([[0.9, 0.1], [0.8, 0.2]]))] * 3
        scores = vote_entropy(members, np.zeros((2, 2)))
        assert np.allclose(scores, 0.0)

    def test_vote_entropy_max_when_split(self):
        a = _FixedProbaModel(np.array([[0.9, 0.1]]))
        b = _FixedProbaModel(np.array([[0.1, 0.9]]))
        scores = vote_entropy([a, b], np.zeros((1, 2)))
        assert scores[0] == pytest.approx(np.log(2))

    def test_consensus_kl_detects_confidence_disagreement(self):
        # Same argmax, different confidence: vote entropy is blind to it,
        # consensus KL is not.
        a = _FixedProbaModel(np.array([[0.99, 0.01]]))
        b = _FixedProbaModel(np.array([[0.51, 0.49]]))
        assert vote_entropy([a, b], np.zeros((1, 2)))[0] == pytest.approx(0.0)
        assert consensus_kl([a, b], np.zeros((1, 2)))[0] > 0.1

    def test_select_by_committee_top_disagreement(self):
        a = _FixedProbaModel(np.array([[0.9, 0.1], [0.9, 0.1]]))
        b = _FixedProbaModel(np.array([[0.9, 0.1], [0.1, 0.9]]))
        picks = select_by_committee([a, b], np.zeros((2, 2)), 1)
        assert picks.tolist() == [1]

    def test_committee_size_validated(self):
        with pytest.raises(ValidationError):
            vote_entropy([_FixedProbaModel(np.ones((1, 2)))], np.zeros((1, 2)))

    def test_unknown_disagreement(self):
        a = _FixedProbaModel(np.full((1, 2), 0.5))
        with pytest.raises(ValidationError):
            select_by_committee([a, a], np.zeros((1, 2)), 1, disagreement="vibes")

    def test_works_with_real_ensemble(self, fitted_automl, scream_data):
        members = fitted_automl.ensemble_members_
        picks = select_by_committee(members, scream_data.X[:50], 5)
        assert picks.shape == (5,)
        assert np.unique(picks).size == 5


class TestUpsampling:
    def _imbalanced(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        y = np.array([0] * 50 + [1] * 10)
        return X, y

    def test_random_oversample_balances(self):
        X, y = self._imbalanced()
        X_up, y_up = random_oversample(X, y, random_state=0)
        _, counts = np.unique(y_up, return_counts=True)
        assert counts[0] == counts[1] == 50

    def test_random_oversample_only_duplicates(self):
        X, y = self._imbalanced()
        X_up, _ = random_oversample(X, y, random_state=0)
        original = {tuple(row) for row in X}
        assert all(tuple(row) in original for row in X_up)

    def test_smote_balances(self):
        X, y = self._imbalanced()
        X_up, y_up = smote(X, y, random_state=0)
        _, counts = np.unique(y_up, return_counts=True)
        assert counts[0] == counts[1] == 50

    def test_smote_synthesizes_new_points(self):
        X, y = self._imbalanced()
        X_up, y_up = smote(X, y, random_state=0)
        original = {tuple(row) for row in X}
        synthetic = [row for row in X_up if tuple(row) not in original]
        assert len(synthetic) > 0

    def test_smote_interpolates_within_minority_hull(self):
        X = np.vstack([np.zeros((20, 2)), np.ones((4, 2)) * 10])
        y = np.array([0] * 20 + [1] * 4)
        X_up, y_up = smote(X, y, k_neighbors=2, random_state=1)
        minority = X_up[y_up == 1]
        # All synthetic minority points stay exactly at (10, 10) since the
        # class is a single point cloud with zero spread.
        assert np.allclose(minority, 10.0)

    def test_smote_singleton_class_duplicates(self):
        X = np.vstack([np.zeros((5, 2)), [[3.0, 3.0]]])
        y = np.array([0] * 5 + [1])
        X_up, y_up = smote(X, y, random_state=2)
        assert (y_up == 1).sum() == 5

    def test_balanced_input_unchanged_size(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(20, 2))
        y = np.array([0, 1] * 10)
        X_up, _ = random_oversample(X, y, random_state=0)
        assert X_up.shape[0] == 20

    def test_validation(self):
        with pytest.raises(ValidationError):
            random_oversample(np.zeros((3, 1)), np.zeros(4))
        with pytest.raises(ValidationError):
            smote(np.zeros((3, 1)), np.zeros(3), k_neighbors=0)


@settings(max_examples=30, deadline=None)
@given(
    n_major=st.integers(5, 30),
    n_minor=st.integers(1, 10),
    seed=st.integers(0, 2**31 - 1),
)
def test_oversample_balance_property(n_major, n_minor, seed):
    """After oversampling, every class count equals the majority count."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_major + n_minor, 2))
    y = np.array([0] * n_major + [1] * n_minor)
    _, y_up = random_oversample(X, y, random_state=seed)
    _, counts = np.unique(y_up, return_counts=True)
    assert counts.min() == counts.max() == max(n_major, n_minor)
