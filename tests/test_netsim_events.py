"""Tests for the discrete-event engine."""

import pytest

from repro.exceptions import EmulationError
from repro.netsim.events import Simulator


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, lambda: log.append("c"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(2.0, lambda: log.append("b"))
        sim.run(10.0)
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: log.append(1))
        sim.schedule(1.0, lambda: log.append(2))
        sim.run(2.0)
        assert log == [1, 2]

    def test_now_advances_to_horizon(self):
        sim = Simulator()
        sim.run(5.0)
        assert sim.now == 5.0

    def test_events_beyond_horizon_not_run(self):
        sim = Simulator()
        log = []
        sim.schedule(7.0, lambda: log.append("late"))
        sim.run(5.0)
        assert log == []
        assert sim.pending == 1
        sim.run(8.0)
        assert log == ["late"]

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        log = []

        def recurring():
            log.append(sim.now)
            if sim.now < 3.0:
                sim.schedule(1.0, recurring)

        sim.schedule(1.0, recurring)
        sim.run(10.0)
        assert log == [1.0, 2.0, 3.0]

    def test_schedule_at_absolute(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda: sim.schedule_at(5.0, lambda: log.append(sim.now)))
        sim.run(6.0)
        assert log == [5.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(EmulationError):
            sim.schedule(-0.1, lambda: None)

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.run(5.0)
        with pytest.raises(EmulationError):
            sim.run(1.0)

    def test_max_events_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(0.0, storm)

        sim.schedule(0.0, storm)
        with pytest.raises(EmulationError, match="exceeded"):
            sim.run(1.0, max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(0.5, lambda: None)
        sim.run(1.0)
        assert sim.events_processed == 5
