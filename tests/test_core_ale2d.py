"""Tests for second-order (interaction) ALE."""

import numpy as np
import pytest

from repro.core import make_grid
from repro.core.ale2d import ale_interaction, interaction_disagreement
from repro.exceptions import ValidationError
from repro.ml.linear import softmax


class _AdditiveModel:
    """P(class 1) linear in x0 and x1: exactly zero interaction.

    (A sigmoid over the sum would NOT qualify — the sigmoid's curvature
    creates genuine probability-space interaction.)
    """

    def predict_proba(self, X):
        X = np.asarray(X)
        p = np.clip(0.5 + 0.1 * X[:, 0] + 0.05 * X[:, 1], 0.0, 1.0)
        return np.column_stack([1 - p, p])


class _XorModel:
    """f = sigmoid(k * x0 * x1): pure interaction."""

    def __init__(self, k=2.0):
        self.k = k

    def predict_proba(self, X):
        X = np.asarray(X)
        logits = self.k * X[:, 0] * X[:, 1]
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


@pytest.fixture
def data():
    return np.random.default_rng(0).uniform(-2, 2, size=(2000, 3))


def _edges(data, feature):
    return make_grid(data[:, feature], grid_size=8)


class TestAleInteraction:
    def test_additive_model_has_no_interaction(self, data):
        surface = ale_interaction(_AdditiveModel(), data, 0, 1, _edges(data, 0), _edges(data, 1))
        assert surface.interaction_strength() < 0.02

    def test_multiplicative_model_has_interaction(self, data):
        surface = ale_interaction(_XorModel(), data, 0, 1, _edges(data, 0), _edges(data, 1))
        assert surface.interaction_strength() > 0.05

    def test_interaction_sign_structure(self, data):
        # For f = sigmoid(x0*x1), the interaction surface is positive in
        # the (+,+)/(-,-) quadrants and negative in the mixed ones.
        surface = ale_interaction(_XorModel(), data, 0, 1, _edges(data, 0), _edges(data, 1))
        grid_a, grid_b = surface.grid_a, surface.grid_b
        pp = surface.values[np.ix_(grid_a > 1.0, grid_b > 1.0)].mean()
        pm = surface.values[np.ix_(grid_a > 1.0, grid_b < -1.0)].mean()
        assert pp > 0 > pm

    def test_irrelevant_pair_is_flat(self, data):
        surface = ale_interaction(_XorModel(), data, 0, 2, _edges(data, 0), _edges(data, 2))
        assert surface.interaction_strength() < 0.02

    def test_shapes(self, data):
        ea, eb = _edges(data, 0), _edges(data, 1)
        surface = ale_interaction(_AdditiveModel(), data, 0, 1, ea, eb)
        assert surface.values.shape == (ea.size - 1, eb.size - 1)
        assert surface.counts.sum() == data.shape[0]

    def test_validation(self, data):
        ea = _edges(data, 0)
        with pytest.raises(ValidationError):
            ale_interaction(_AdditiveModel(), data, 0, 0, ea, ea)
        with pytest.raises(ValidationError):
            ale_interaction(_AdditiveModel(), data, 0, 99, ea, ea)
        with pytest.raises(ValidationError):
            ale_interaction(_AdditiveModel(), data, 0, 1, np.array([1.0]), ea)


class TestInteractionDisagreement:
    def test_identical_models_zero_disagreement(self, data):
        committee = [_XorModel(), _XorModel()]
        std, surfaces = interaction_disagreement(
            committee, data, 0, 1, _edges(data, 0), _edges(data, 1)
        )
        assert np.allclose(std, 0.0, atol=1e-12)
        assert len(surfaces) == 2

    def test_different_models_disagree(self, data):
        committee = [_XorModel(k=1.0), _XorModel(k=4.0)]
        std, _ = interaction_disagreement(
            committee, data, 0, 1, _edges(data, 0), _edges(data, 1)
        )
        assert std.max() > 0.01

    def test_committee_size_validated(self, data):
        with pytest.raises(ValidationError):
            interaction_disagreement([_XorModel()], data, 0, 1, _edges(data, 0), _edges(data, 1))
