"""Tests for the two simulation engines and their qualitative agreement.

The fluid engine is the dataset generator; the packet engine is the
reference.  The agreement tests pin down the *orderings* the Scream-vs-rest
labels depend on, not absolute numbers.
"""

import numpy as np
import pytest

from repro.exceptions import EmulationError
from repro.netsim import (
    FluidTrace,
    NetworkScenario,
    run_fluid_scenario,
    run_packet_scenario,
)

CLEAN = NetworkScenario(bandwidth_mbps=20, rtt_ms=40, loss_rate=0.0, n_flows=2)
LOSSY = NetworkScenario(bandwidth_mbps=10, rtt_ms=80, loss_rate=0.03, n_flows=1)


class TestPacketEngine:
    def test_reno_fills_the_buffer(self):
        metrics = run_packet_scenario(CLEAN, "reno", duration=4.0, random_state=0)
        # Loss-based: p95 one-way delay approaches base/2 + full queue (2 BDP).
        assert metrics.p95_delay_ms > 60.0
        assert metrics.throughput_mbps > 0.85 * CLEAN.bandwidth_mbps

    def test_vegas_keeps_queue_short(self):
        metrics = run_packet_scenario(CLEAN, "vegas", duration=4.0, random_state=0)
        assert metrics.p95_delay_ms < 40.0

    def test_scream_between_vegas_and_reno(self):
        scream = run_packet_scenario(CLEAN, "scream", duration=4.0, random_state=0)
        vegas = run_packet_scenario(CLEAN, "vegas", duration=4.0, random_state=0)
        reno = run_packet_scenario(CLEAN, "reno", duration=4.0, random_state=0)
        assert vegas.p95_delay_ms <= scream.p95_delay_ms <= reno.p95_delay_ms

    def test_scream_survives_loss_better_than_reno(self):
        scream = run_packet_scenario(LOSSY, "scream", duration=5.0, random_state=0)
        reno = run_packet_scenario(LOSSY, "reno", duration=5.0, random_state=0)
        assert scream.throughput_mbps > 2.0 * reno.throughput_mbps

    def test_measured_loss_close_to_configured(self):
        metrics = run_packet_scenario(LOSSY, "vegas", duration=5.0, random_state=1)
        assert metrics.loss_fraction == pytest.approx(LOSSY.loss_rate, abs=0.02)

    def test_duration_must_exceed_warmup(self):
        with pytest.raises(EmulationError):
            run_packet_scenario(CLEAN, "reno", duration=0.5, warmup=1.0)

    def test_reproducible(self):
        a = run_packet_scenario(CLEAN, "cubic", duration=3.0, random_state=5)
        b = run_packet_scenario(CLEAN, "cubic", duration=3.0, random_state=5)
        assert a.p95_delay_ms == b.p95_delay_ms
        assert a.throughput_mbps == b.throughput_mbps


class TestFluidEngine:
    def test_utilization_bounded(self):
        metrics = run_fluid_scenario(CLEAN, "cubic", random_state=0)
        assert 0.0 < metrics.utilization <= 1.0

    def test_trace_records_queue_dynamics(self):
        trace = FluidTrace()
        run_fluid_scenario(CLEAN, "reno", random_state=0, trace=trace)
        times, queue, rate = trace.as_arrays()
        assert times.size == queue.size == rate.size > 100
        assert queue.max() > 0  # reno builds a queue
        assert queue.min() >= 0.0
        assert queue.max() <= CLEAN.queue_capacity_packets + 1e-9

    def test_delay_floor_is_half_rtt(self):
        metrics = run_fluid_scenario(CLEAN, "vegas", random_state=0)
        assert metrics.avg_delay_ms >= CLEAN.rtt_ms / 2.0 - 1e-9

    def test_explicit_duration(self):
        metrics = run_fluid_scenario(CLEAN, "reno", duration=3.0, random_state=0)
        assert metrics.duration == 3.0

    def test_reproducible(self):
        a = run_fluid_scenario(CLEAN, "scream", random_state=9)
        b = run_fluid_scenario(CLEAN, "scream", random_state=9)
        assert a.p95_delay_ms == b.p95_delay_ms

    def test_loss_fraction_clamped_at_one(self):
        # Regression: a shallow queue under scream drops nearly every
        # packet, and per-step rounding pushed lost/sent a few ulps above
        # 1.0 before the clamp was added.
        brutal = NetworkScenario(
            bandwidth_mbps=9.0, rtt_ms=6.0, loss_rate=0.0, n_flows=1, queue_bdp=0.5
        )
        metrics = run_fluid_scenario(brutal, "scream", random_state=0)
        assert metrics.loss_fraction == 1.0


class TestEngineAgreement:
    """The orderings the labels rely on must hold in BOTH engines."""

    @pytest.mark.parametrize("engine", ["packet", "fluid"])
    def test_delay_ordering_clean_network(self, engine):
        run = run_packet_scenario if engine == "packet" else run_fluid_scenario
        kwargs = {"duration": 4.0} if engine == "packet" else {}
        results = {
            protocol: run(CLEAN, protocol, random_state=0, **kwargs)
            for protocol in ("vegas", "scream", "reno")
        }
        assert results["vegas"].p95_delay_ms <= results["scream"].p95_delay_ms
        assert results["scream"].p95_delay_ms <= results["reno"].p95_delay_ms

    @pytest.mark.parametrize("engine", ["packet", "fluid"])
    def test_loss_collapses_loss_based_protocols(self, engine):
        run = run_packet_scenario if engine == "packet" else run_fluid_scenario
        kwargs = {"duration": 5.0} if engine == "packet" else {}
        scream = run(LOSSY, "scream", random_state=0, **kwargs)
        reno = run(LOSSY, "reno", random_state=0, **kwargs)
        assert scream.throughput_mbps > reno.throughput_mbps

    def test_throughput_within_factor_between_engines(self):
        for protocol in ("reno", "cubic", "vegas", "scream"):
            packet = run_packet_scenario(CLEAN, protocol, duration=4.0, random_state=0)
            fluid = run_fluid_scenario(CLEAN, protocol, random_state=0)
            ratio = packet.throughput_mbps / max(fluid.throughput_mbps, 1e-9)
            assert 0.5 < ratio < 2.0, f"{protocol}: packet={packet.throughput_mbps}, fluid={fluid.throughput_mbps}"


class TestLatencyScore:
    def test_starving_protocol_disqualified(self):
        metrics = run_packet_scenario(LOSSY, "reno", duration=5.0, random_state=0)
        # Reno under 3% loss delivers ~1 Mbps of a 10 Mbps link: below a
        # 15% useful-share bar, so it cannot "win on latency".
        assert metrics.latency_score(min_share=0.15) == float("inf")
        # The default bar is more permissive but still a finite threshold.
        assert metrics.latency_score(min_share=0.02) < float("inf")

    def test_healthy_protocol_scores_p95(self):
        metrics = run_packet_scenario(CLEAN, "vegas", duration=4.0, random_state=0)
        assert metrics.latency_score() == metrics.p95_delay_ms
