"""Tests for the PDP interpreter and its interaction with the feedback."""

import numpy as np
import pytest

from repro.core import AleFeedback, FeatureDomain, make_grid
from repro.core.pdp import pdp_curve, pdp_curves_for_models
from repro.exceptions import ValidationError
from repro.ml.linear import softmax


class _LinearProbaModel:
    def __init__(self, weights):
        self.weights = np.asarray(weights, dtype=np.float64)

    def predict_proba(self, X):
        logits = np.asarray(X) @ self.weights
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


class _UsesOnlyFeature1:
    def predict_proba(self, X):
        X = np.asarray(X)
        p = 1 / (1 + np.exp(-X[:, 1]))
        return np.column_stack([1 - p, p])


@pytest.fixture
def data():
    return np.random.default_rng(0).uniform(-2, 2, size=(500, 3))


class TestPdpCurve:
    def test_monotone_for_monotone_model(self, data):
        model = _LinearProbaModel([2.0, 0.0, 0.0])
        edges = make_grid(data[:, 0], grid_size=10)
        curve = pdp_curve(model, data, 0, edges)
        assert np.all(np.diff(curve.values[:, 1]) >= -1e-9)

    def test_flat_for_ignored_feature(self, data):
        model = _UsesOnlyFeature1()
        edges = make_grid(data[:, 0], grid_size=10)
        curve = pdp_curve(model, data, 0, edges)
        assert curve.value_range() < 1e-9

    def test_centering(self, data):
        model = _LinearProbaModel([1.0, -0.5, 0.2])
        edges = make_grid(data[:, 1], grid_size=8)
        curve = pdp_curve(model, data, 1, edges)
        weighted = np.sum(curve.counts[:, None] * curve.values, axis=0) / curve.counts.sum()
        assert np.allclose(weighted, 0.0, atol=1e-9)

    def test_agrees_with_ale_on_independent_features(self, data):
        # With independent features and an additive model, PDP and ALE
        # estimate the same effect (up to estimation noise).
        from repro.core.ale import ale_curve

        model = _LinearProbaModel([1.2, 0.0, 0.0])
        edges = make_grid(data[:, 0], grid_size=10)
        ale = ale_curve(model, data, 0, edges)
        pdp = pdp_curve(model, data, 0, edges)
        assert np.allclose(ale.values[:, 1], pdp.values[:, 1], atol=0.06)

    def test_pdp_misled_by_correlation_unlike_ale(self):
        # The known PDP failure mode: with x0 ~ x1 strongly correlated and
        # the model using only x1, PDP still evaluates off-manifold points.
        # Here both PDP and ALE of x0 should be flat since the model
        # ignores x0 entirely; the interesting case is the model using the
        # *sum*, where PDP on x0 shows the full marginal effect while ALE
        # shows the local (per-unit) one. Verify they differ.
        rng = np.random.default_rng(1)
        x0 = rng.uniform(-2, 2, size=800)
        x1 = x0 + rng.normal(0, 0.05, size=800)
        X = np.column_stack([x0, x1])
        model = _LinearProbaModel([0.0, 2.0])  # uses x1 only

        from repro.core.ale import ale_curve

        edges = make_grid(X[:, 0], grid_size=10)
        ale = ale_curve(model, X, 0, edges)
        pdp = pdp_curve(model, X, 0, edges)
        # ALE: locally x0 has no effect -> flat. PDP: forcing x0 does not
        # change x1 either -> also flat. Both flat here.
        assert ale.value_range() < 0.05
        assert pdp.value_range() < 0.05

    def test_max_background_cap(self, data):
        model = _UsesOnlyFeature1()
        edges = make_grid(data[:, 0], grid_size=5)
        curve = pdp_curve(model, data, 0, edges, max_background=50)
        assert curve.counts.sum() == data.shape[0]  # counts still from full X

    def test_validation(self, data):
        model = _UsesOnlyFeature1()
        with pytest.raises(ValidationError):
            pdp_curve(model, data, 99, np.array([0.0, 1.0]))
        with pytest.raises(ValidationError):
            pdp_curve(model, data, 0, np.array([0.0]))
        with pytest.raises(ValidationError):
            pdp_curve(model, data, 0, np.array([0.0, 1.0]), max_background=0)
        with pytest.raises(ValidationError):
            pdp_curves_for_models([], data, 0, np.array([0.0, 1.0]))


class TestFeedbackWithPdp:
    def test_interpreter_switch(self, data):
        domains = [FeatureDomain(f"f{i}", -2, 2) for i in range(3)]
        committee = [_LinearProbaModel([1.0, 0, 0]), _LinearProbaModel([3.0, 0, 0])]
        ale_report = AleFeedback(grid_size=10, interpreter="ale").analyze(committee, data, domains)
        pdp_report = AleFeedback(grid_size=10, interpreter="pdp").analyze(committee, data, domains)
        # Both flag feature 0 (the models disagree on its slope).
        assert ale_report.profiles[0].max_std > 0.01
        assert pdp_report.profiles[0].max_std > 0.01

    def test_invalid_interpreter(self):
        with pytest.raises(ValidationError):
            AleFeedback(interpreter="shap")
