"""Tier-1 gate: the shipped tree is reprolint-clean.

Runs the full rule set programmatically over ``src/repro``,
``benchmarks/`` *and* ``examples/`` with the real ``[tool.reprolint]``
configuration from ``pyproject.toml`` and asserts zero findings — the
repo stays lint-clean without any external CI infrastructure.
Benchmarks and examples adopted the RL001 rng-discipline contract (seeds
or :func:`repro.rng.check_random_state`, never bare ``default_rng``),
since a number produced outside the contract cannot back a claim.

The project-wide pass (RL007 dead-export detection) scans source, tests,
benchmarks, and examples together: an ``__all__`` export with no
consumer anywhere in that set must be deleted or explicitly allowlisted
under ``[tool.reprolint.deadcode]``.
"""

from pathlib import Path

from repro.devtools import (
    LintEngine,
    load_config,
    registered_project_rules,
    registered_rules,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
PYPROJECT = REPO_ROOT / "pyproject.toml"

#: Every tree the per-file rules gate.
LINTED_TREES = ("src/repro", "benchmarks", "examples")
#: The RL007 usage universe: exports must be consumed somewhere in here.
PROJECT_SCAN_TREES = ("src/repro", "tests", "benchmarks", "examples")


class TestLintClean:
    def test_src_tree_has_zero_findings(self):
        config = load_config(PYPROJECT)
        engine = LintEngine(config)
        findings = engine.lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_benchmarks_tree_has_zero_findings(self):
        config = load_config(PYPROJECT)
        engine = LintEngine(config)
        findings = engine.lint_paths([REPO_ROOT / "benchmarks"], root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_examples_tree_has_zero_findings(self):
        config = load_config(PYPROJECT)
        engine = LintEngine(config)
        findings = engine.lint_paths([REPO_ROOT / "examples"], root=REPO_ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_project_scan_has_zero_findings(self):
        """RL007: no dead exports anywhere in the src+tests+benchmarks+examples set."""
        config = load_config(PYPROJECT)
        engine = LintEngine(config)
        findings = engine.lint_project(
            [REPO_ROOT / tree for tree in PROJECT_SCAN_TREES], root=REPO_ROOT
        )
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_gate_runs_all_rules(self):
        """The clean-run gate must not pass because rules were disabled."""
        config = load_config(PYPROJECT)
        enabled = [cls.id for cls in registered_rules() if config.rule_enabled(cls.id)]
        assert enabled == ["RL001", "RL002", "RL003", "RL004", "RL005", "RL006"]
        enabled_project = [
            cls.id for cls in registered_project_rules() if config.rule_enabled(cls.id)
        ]
        assert enabled_project == ["RL007"]

    def test_pyproject_table_present(self):
        text = PYPROJECT.read_text(encoding="utf-8")
        assert "[tool.reprolint]" in text
        assert "[tool.reprolint.deadcode]" in text
