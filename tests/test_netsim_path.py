"""Tests for multi-hop network paths."""

import numpy as np
import pytest

from repro.exceptions import EmulationError
from repro.netsim import BottleneckLink, NetworkPath, Packet, Sender, Simulator
from repro.netsim.cc import Reno


def _link(sim, rate_pps=100.0, delay=0.01, capacity=50):
    return BottleneckLink(
        sim, rate_pps=rate_pps, one_way_delay=delay, queue_capacity=capacity,
        rng=np.random.default_rng(0),
    )


class TestNetworkPath:
    def test_end_to_end_delay_sums_hops(self):
        sim = Simulator()
        path = NetworkPath([_link(sim, delay=0.01), _link(sim, delay=0.02)])
        arrivals = []
        path.send(Packet(flow_id=0, sequence=0, send_time=0.0), lambda p: arrivals.append(sim.now))
        sim.run(1.0)
        # serialization 2 x 1/100 + propagation 0.01 + 0.02
        assert arrivals == [pytest.approx(0.05)]

    def test_bottleneck_is_slowest_link(self):
        sim = Simulator()
        fast, slow = _link(sim, rate_pps=1000.0), _link(sim, rate_pps=10.0)
        assert NetworkPath([fast, slow]).bottleneck is slow

    def test_drop_at_second_hop_reported(self):
        sim = Simulator()
        first = _link(sim, rate_pps=1000.0, capacity=100)
        second = _link(sim, rate_pps=10.0, capacity=1)
        path = NetworkPath([first, second])
        drops = []
        path.drop_listeners.append(lambda p: drops.append(p.sequence))
        delivered = []
        for seq in range(10):
            path.send(Packet(flow_id=0, sequence=seq), lambda p: delivered.append(p.sequence))
        sim.run(5.0)
        assert drops  # the slow second hop overflowed
        assert len(delivered) + len(drops) == 10

    def test_validation(self):
        with pytest.raises(EmulationError):
            NetworkPath([])
        sim_a, sim_b = Simulator(), Simulator()
        with pytest.raises(EmulationError, match="one Simulator"):
            NetworkPath([_link(sim_a), _link(sim_b)])

    def test_total_propagation(self):
        sim = Simulator()
        path = NetworkPath([_link(sim, delay=0.01), _link(sim, delay=0.03)])
        assert path.total_propagation_delay == pytest.approx(0.04)


class TestSenderOverPath:
    def test_reno_fills_tightest_bottleneck(self):
        sim = Simulator()
        wide = _link(sim, rate_pps=2000.0, delay=0.005, capacity=200)
        narrow = _link(sim, rate_pps=400.0, delay=0.005, capacity=60)
        path = NetworkPath([wide, narrow])
        sender = Sender(sim, path, Reno(), flow_id=0, reverse_delay=0.01, start_time=0.0)
        sim.run(4.0)
        sender.stop()
        delivered_rate = sender.stats.delivered / 4.0
        # Goodput approaches the narrow link's rate, not the wide one's.
        assert 0.6 * 400.0 < delivered_rate <= 1.05 * 400.0
        # The narrow hop did the queueing.
        assert narrow.stats.dropped_overflow >= 0
        assert wide.queue_length <= narrow.queue_capacity
