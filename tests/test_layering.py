"""Tier-1 gate on the import-layer DAG (DESIGN.md §3).

Asserts the layering invariant directly through the ``repro.devtools``
machinery — independent of the ``repro lint`` CLI path — so a layering
regression fails the plain test suite even when nobody runs the linter.
"""

from pathlib import Path

from repro.devtools import DEFAULT_LAYERS, LintConfig, LintEngine
from repro.devtools.rules import LayeringRule

REPO_ROOT = Path(__file__).resolve().parent.parent
PACKAGE = REPO_ROOT / "src" / "repro"


def layering_findings(config=None):
    engine = LintEngine(config or LintConfig(), rules=[LayeringRule])
    return engine.lint_paths([PACKAGE], root=REPO_ROOT)


class TestImportDag:
    def test_source_tree_respects_the_dag(self):
        findings = layering_findings()
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_package_has_a_layer_entry(self):
        """Each first-level package under repro/ is pinned in the layer map.

        A new package added without a layer decision would otherwise default
        to unrestricted and silently escape RL002.
        """
        packages = {
            child.name
            for child in PACKAGE.iterdir()
            if child.is_dir() and (child / "__init__.py").exists()
        }
        modules = {child.stem for child in PACKAGE.glob("*.py") if child.stem != "__init__"}
        missing = (packages | modules) - set(DEFAULT_LAYERS) - {"__main__"}
        assert missing == set(), f"packages without a layer entry: {sorted(missing)}"

    def test_declared_dag_is_acyclic(self):
        """The layer map itself must stay a DAG, not just the code under it."""
        edges = {
            layer: set(allowed)
            for layer, allowed in DEFAULT_LAYERS.items()
            if allowed != "*"
        }
        visiting, done = set(), set()

        def visit(layer):
            if layer in done or layer not in edges:
                return
            assert layer not in visiting, f"cycle through layer {layer!r}"
            visiting.add(layer)
            for target in edges[layer]:
                visit(target)
            visiting.remove(layer)
            done.add(layer)

        for layer in edges:
            visit(layer)

    def test_interpretation_core_stays_substrate_agnostic(self):
        """The paper-critical edges: core must not know automl or netsim.

        Checked against the machinery (not just the default config), so
        someone relaxing the config to silence RL002 trips this test.
        """
        for layer in ("core", "ml"):
            allowed = DEFAULT_LAYERS[layer]
            assert allowed != "*"
            assert "automl" not in allowed
            assert "experiments" not in allowed
            assert "netsim" not in allowed
