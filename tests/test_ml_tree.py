"""Tests for the CART trees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.metrics import accuracy
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestClassifierBasics:
    def test_fits_separable_data_perfectly(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.98

    def test_solves_xor(self, nonlinear_xor):
        X, y = nonlinear_xor
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_multiclass(self, blobs_3class):
        X, y = blobs_3class
        tree = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95
        proba = tree.predict_proba(X)
        assert proba.shape == (X.shape[0], 3)

    def test_predict_proba_rows_sum_to_one(self, blobs_3class):
        X, y = blobs_3class
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, y)
        assert np.allclose(tree.predict_proba(X).sum(axis=1), 1.0)

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["low", "low", "high", "high"])
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert set(tree.predict(X)) <= {"low", "high"}
        assert tree.score(X, y) == 1.0

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_feature_count_checked(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        with pytest.raises(ValidationError):
            tree.predict(np.zeros((2, 5)))


class TestClassifierConstraints:
    def test_max_depth_respected(self, nonlinear_xor):
        X, y = nonlinear_xor
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        assert tree.depth_ <= 2

    def test_depth_zero_stump_via_min_samples(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(min_samples_split=10**6, random_state=0).fit(X, y)
        assert tree.n_nodes_ == 1

    def test_min_samples_leaf(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(min_samples_leaf=30, random_state=0).fit(X, y)
        leaves = tree.tree_["children_left"] == -1
        assert tree.tree_["n_samples"][leaves].min() >= 30

    def test_entropy_criterion_works(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(criterion="entropy", random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_invalid_criterion(self):
        tree = DecisionTreeClassifier(criterion="chaos")
        with pytest.raises(ValidationError):
            tree.fit([[0.0], [1.0]], [0, 1])

    def test_invalid_splitter(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(splitter="weird")

    def test_invalid_min_samples(self):
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_leaf=0)

    def test_random_splitter_learns(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(splitter="random", max_depth=8, random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_max_features_fraction(self, blobs_2class):
        X, y = blobs_2class
        tree = DecisionTreeClassifier(max_features=0.5, random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.5

    def test_deterministic_given_seed(self, nonlinear_xor):
        X, y = nonlinear_xor
        a = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))

    def test_constant_features_yield_stump(self):
        X = np.ones((20, 3))
        y = np.array([0, 1] * 10)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.n_nodes_ == 1
        # Stump predicts the empirical distribution.
        assert np.allclose(tree.predict_proba(X[:1]), [[0.5, 0.5]])


class TestRegressor:
    def test_fits_piecewise_constant(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(float) * 10.0
        tree = DecisionTreeRegressor(max_depth=2, random_state=0).fit(X, y)
        prediction = tree.predict(X)
        assert np.abs(prediction - y).max() < 1e-9

    def test_reduces_to_mean_on_constant_x(self):
        X = np.ones((10, 1))
        y = np.arange(10.0)
        tree = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert tree.predict([[1.0]])[0] == pytest.approx(4.5)

    def test_mse_improves_with_depth(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(300, 1))
        y = np.sin(3 * X.ravel())
        errors = []
        for depth in (1, 3, 6):
            tree = DecisionTreeRegressor(max_depth=depth, random_state=0).fit(X, y)
            errors.append(float(np.mean((tree.predict(X) - y) ** 2)))
        assert errors[0] > errors[1] > errors[2]

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeRegressor().predict([[0.0]])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(10, 60),
    seed=st.integers(0, 10**6),
    depth=st.integers(1, 6),
)
def test_tree_training_accuracy_monotone_in_depth_property(n, seed, depth):
    """Deeper trees never fit the training data worse (same seed/data)."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    if np.unique(y).size < 2:
        return
    shallow = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(X, y)
    deep = DecisionTreeClassifier(max_depth=depth + 2, random_state=0).fit(X, y)
    assert accuracy(y, deep.predict(X)) >= accuracy(y, shallow.predict(X)) - 1e-12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_tree_leaf_probabilities_valid_property(seed):
    """Every leaf's class distribution is a valid probability vector."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(40, 2))
    y = rng.integers(0, 3, size=40)
    if np.unique(y).size < 2:
        return
    tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
    values = tree.tree_["value"]
    assert np.all(values >= 0)
    assert np.allclose(values.sum(axis=1), 1.0)
