"""Tests for repro.loop — the online retraining controller.

The acceptance scenario from the loop milestone, end to end: drifting
traffic fills the labeling queue, the controller triggers, the candidate
retrains as a cache-addressed runtime task, shadows live traffic without
touching served bytes, and the promotion gate either flips the registry
(served predictions bitwise-match offline ``predict`` of the new model)
or rejects the candidate leaving the incumbent serving.  Plus the
determinism contract: identical queue contents and seed path produce a
bitwise-identical model under serial *and* process executors, and a
re-run is a pure cache hit with zero refits.
"""

import numpy as np
import pytest

from repro.active import merge_labeled
from repro.automl import AutoMLClassifier, AutoMLSpec
from repro.core import AleFeedback, ale_drift, within_ale_committee
from repro.exceptions import ValidationError
from repro.featurespace import FeatureDomain
from repro.loop import (
    LoopConfig,
    LoopService,
    RetrainController,
    ShadowEvaluator,
)
from repro.loop.demo import demo_oracle, run_demo
from repro.runtime import ArtifactCache, ProcessExecutor, SerialExecutor, TaskRuntime
from repro.serve import ModelRegistry, ServeConfig, ServeService

DOMAINS = (FeatureDomain("f0", 0.0, 1.0), FeatureDomain("f1", 0.0, 1.0))
SPEC = AutoMLSpec(n_iterations=6, ensemble_size=4, min_distinct_members=2)


def _boundary_data(n, seed, *, away=0.0):
    """Uniform points over the unit square, optionally away from the boundary."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(4 * n, 2))
    if away > 0:
        X = X[np.abs(X[:, 0] + X[:, 1] - 1.0) > away]
    X = X[:n]
    return X, demo_oracle(X)


@pytest.fixture(scope="module")
def base_data():
    """Biased training set: the incumbent never sees the boundary."""
    return _boundary_data(120, 11, away=0.35)


@pytest.fixture(scope="module")
def eval_data():
    return _boundary_data(200, 13)


@pytest.fixture(scope="module")
def incumbent(base_data):
    X, y = base_data
    return AutoMLClassifier(
        n_iterations=6, ensemble_size=4, min_distinct_members=2, random_state=5
    ).fit(X, y)


def _make_service(tmp_path, incumbent, base_data, *, config=None):
    X, y = base_data
    registry = ModelRegistry(tmp_path / "registry")
    registry.register("loopy", incumbent, X, DOMAINS, promote=True)
    serve = ServeService.from_registry(
        "loopy",
        directory=registry.directory,
        config=config
        if config is not None
        else ServeConfig(max_batch=16, max_delay=0.0, disagreement_threshold=0.15),
    )
    return registry, serve


def _make_loop(tmp_path, serve, base_data, eval_data, loop_config):
    X, y = base_data
    X_eval, y_eval = eval_data
    runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(tmp_path / "cache"))
    controller = RetrainController(runtime, SPEC, X, y, X_eval, y_eval, config=loop_config)
    return LoopService(serve, controller, oracle=demo_oracle, config=loop_config), runtime


def _drive_boundary_traffic(serve, seed, *, rounds=6, per_round=24):
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        rows = rng.uniform(0.0, 1.0, size=(per_round, 2))
        rows[:, 1] = np.clip(1.0 - rows[:, 0] + rng.normal(0.0, 0.1, per_round), 0.0, 1.0)
        serve.predict(rows)


LOOP_CONFIG = LoopConfig(
    min_queue_depth=8,
    min_served_points=16,
    uncertain_rate=0.9,
    shadow_fraction=1.0,
    min_shadow_rows=16,
    score_margin=-0.1,
    max_ale_drift=2.0,
    retrain_seed=0,
)


class TestMergeLabeled:
    def test_appends_in_order_base_untouched(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1])
        X_new = np.array([[0.5, 0.5], [0.25, 0.75]])
        y_new = np.array([1, 0])
        Xm, ym, added = merge_labeled(X, y, X_new, y_new)
        assert added == 2
        np.testing.assert_array_equal(Xm[:2], X)
        np.testing.assert_array_equal(Xm[2:], X_new)
        np.testing.assert_array_equal(ym, [0, 1, 1, 0])

    def test_dedup_existing_label_wins(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([0, 1])
        # First new row duplicates a base row (with a flipped label), the
        # third duplicates the second new row.
        X_new = np.array([[1.0, 1.0], [0.5, 0.5], [0.5, 0.5]])
        y_new = np.array([0, 1, 0])
        Xm, ym, added = merge_labeled(X, y, X_new, y_new)
        assert added == 1
        assert Xm.shape == (3, 2)
        np.testing.assert_array_equal(ym, [0, 1, 1])

    def test_dedup_off_keeps_everything(self):
        X = np.array([[0.0, 0.0]])
        y = np.array([0])
        Xm, ym, added = merge_labeled(X, y, X, y, dedup=False)
        assert added == 1 and Xm.shape == (2, 2)

    def test_empty_new_set_is_identity(self):
        X = np.array([[0.0, 0.0]])
        y = np.array([0])
        Xm, ym, added = merge_labeled(X, y, np.empty((0, 2)), np.empty((0,)))
        assert added == 0
        assert Xm is X and ym is y

    def test_validation(self):
        with pytest.raises(ValidationError):
            merge_labeled(np.zeros((2, 2)), np.zeros(2), np.zeros((1, 3)), np.zeros(1))
        with pytest.raises(ValidationError):
            merge_labeled(np.zeros((2, 2)), np.zeros(3), np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValidationError):
            merge_labeled(np.zeros((2, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(2))


class TestAleDrift:
    def test_same_committee_zero_drift(self, incumbent, base_data):
        X, _ = base_data
        committee = within_ale_committee(incumbent)
        report = AleFeedback().analyze(committee, X, DOMAINS)
        drift = ale_drift(committee, X, report)
        assert drift.feature_names == ("f0", "f1")
        assert drift.max_drift <= 1e-9
        assert set(drift.by_feature()) == {"f0", "f1"}
        assert "ALE drift" in drift.summary()

    def test_different_committee_nonzero_drift(self, incumbent, base_data, eval_data):
        X, _ = base_data
        report = AleFeedback().analyze(within_ale_committee(incumbent), X, DOMAINS)
        X_eval, y_eval = eval_data
        other = AutoMLClassifier(
            n_iterations=6, ensemble_size=4, min_distinct_members=2, random_state=99
        ).fit(X_eval, y_eval)
        drift = ale_drift(within_ale_committee(other), X, report)
        assert drift.max_drift > 0.0

    def test_validation(self, incumbent, base_data):
        X, _ = base_data
        report = AleFeedback().analyze(within_ale_committee(incumbent), X, DOMAINS)
        with pytest.raises(ValidationError):
            ale_drift([], X, report)
        with pytest.raises(ValidationError):
            ale_drift(within_ale_committee(incumbent), X[:0], report)
        with pytest.raises(ValidationError):
            ale_drift(within_ale_committee(incumbent), X[:, :1], report)


class TestTrigger:
    def controller(self, tmp_path_like=None):
        X, y = np.zeros((4, 2)), np.zeros(4)
        runtime = TaskRuntime(SerialExecutor())
        return RetrainController(
            runtime, SPEC, X, y, X, y, config=LoopConfig(min_queue_depth=10, min_served_points=50, uncertain_rate=0.2)
        )

    def test_queue_depth_trigger(self):
        controller = self.controller()
        assert controller.should_trigger(queue_depth=10, served_points=0, uncertain_points=0)
        assert controller.should_trigger(queue_depth=9, served_points=0, uncertain_points=0) is None

    def test_uncertain_rate_trigger(self):
        controller = self.controller()
        assert controller.should_trigger(queue_depth=1, served_points=50, uncertain_points=10)
        assert controller.should_trigger(queue_depth=1, served_points=50, uncertain_points=9) is None
        # Not enough served traffic yet: rate path stays quiet.
        assert controller.should_trigger(queue_depth=1, served_points=49, uncertain_points=48) is None

    def test_empty_queue_never_triggers(self):
        controller = self.controller()
        assert controller.should_trigger(queue_depth=0, served_points=999, uncertain_points=999) is None


class TestRetrainDeterminism:
    def test_serial_process_bitwise_identical_and_cache_hit(self, tmp_path, base_data, eval_data):
        X, y = base_data
        X_eval, y_eval = eval_data
        X_new, y_new = _boundary_data(24, 17)
        cache_dir = tmp_path / "cache"
        probe = np.asarray(_boundary_data(64, 19)[0])

        def retrain_with(executor, cache_mode="on"):
            runtime = TaskRuntime(executor, cache=ArtifactCache(cache_dir), cache_mode=cache_mode)
            controller = RetrainController(
                runtime, SPEC, X, y, X_eval, y_eval, config=LOOP_CONFIG
            )
            return controller.retrain(X_new, y_new), runtime

        serial, _ = retrain_with(SerialExecutor(), cache_mode="off")
        assert serial.refits == 1
        process, _ = retrain_with(ProcessExecutor(max_workers=2), cache_mode="off")
        assert process.refits == 1
        np.testing.assert_array_equal(serial.model.predict(probe), process.model.predict(probe))
        np.testing.assert_array_equal(
            serial.model.predict_proba(probe), process.model.predict_proba(probe)
        )
        assert serial.score == process.score

        # Warm the cache, then re-run: a pure hit, zero refits, same bytes.
        warm, warm_runtime = retrain_with(SerialExecutor())
        assert warm_runtime.stats["cache_stores"] == 1
        replay, replay_runtime = retrain_with(SerialExecutor())
        assert replay.refits == 0
        assert replay_runtime.stats["cache_hits"] == 1
        assert replay_runtime.executions_of("loop.retrain") == 0
        np.testing.assert_array_equal(replay.model.predict(probe), serial.model.predict(probe))
        np.testing.assert_array_equal(
            replay.model.predict_proba(probe), serial.model.predict_proba(probe)
        )


class TestLoopEndToEnd:
    def test_drift_trigger_shadow_promote(self, tmp_path, incumbent, base_data, eval_data):
        registry, serve = _make_service(tmp_path, incumbent, base_data)
        loop, runtime = _make_loop(tmp_path, serve, base_data, eval_data, LOOP_CONFIG)
        with serve:
            assert serve.version == 1
            events = []
            for round_index in range(12):
                _drive_boundary_traffic(serve, 100 + round_index, rounds=2)
                events.append(loop.tick())
                if events[-1]["action"] in ("promoted", "rejected"):
                    break
            actions = [event["action"] for event in events]
            assert "retrained" in actions
            assert actions[-1] == "promoted", events[-1]
            decision = loop.last_decision
            assert decision.promoted and decision.version == 2

            # The manifest flipped and the hot swap followed it.
            assert registry.promoted_version("loopy") == 2
            assert serve.version == 2

            # Served predictions bitwise-match offline predict of the
            # newly promoted model loaded straight from the registry.
            promoted = registry.load("loopy")
            probe = _boundary_data(32, 23)[0]
            response = serve.predict(probe)
            np.testing.assert_array_equal(
                np.asarray(response["labels"]), promoted.automl.predict(probe)
            )
            np.testing.assert_array_equal(
                np.asarray(response["proba"]), promoted.automl.predict_proba(probe)
            )
            # ... and match the in-memory candidate the loop fitted.
            metrics = serve.metrics()
            assert metrics["counters"]["loop_promotions"] == 1
            assert metrics["counters"]["loop_rollbacks"] == 0
            status = loop.status()
            assert status["state"] == "idle" and status["serving_version"] == 2

    def test_failing_gate_keeps_incumbent(self, tmp_path, incumbent, base_data, eval_data):
        # score_margin=2.0 is unsatisfiable (accuracy <= 1), so the gate
        # must reject no matter how good the candidate is.
        strict = LoopConfig(
            min_queue_depth=8,
            min_served_points=16,
            uncertain_rate=0.9,
            shadow_fraction=1.0,
            min_shadow_rows=16,
            score_margin=2.0,
            max_ale_drift=2.0,
        )
        registry, serve = _make_service(tmp_path, incumbent, base_data)
        loop, _ = _make_loop(tmp_path, serve, base_data, eval_data, strict)
        with serve:
            last = None
            for round_index in range(12):
                _drive_boundary_traffic(serve, 200 + round_index, rounds=2)
                last = loop.tick()
                if last["action"] in ("promoted", "rejected"):
                    break
            assert last is not None and last["action"] == "rejected", last

            # Incumbent still serving; candidate registered but unpromoted,
            # with the failure recorded in metrics and manifest metadata.
            assert registry.promoted_version("loopy") == 1
            assert serve.version == 1
            assert not loop.last_decision.promoted
            assert any("score" in reason for reason in loop.last_decision.reasons)
            metrics = serve.metrics()
            assert metrics["counters"]["loop_gate_fail_score"] >= 1
            assert metrics["counters"]["loop_promotions"] == 0
            versions = registry.versions("loopy")
            assert set(versions) == {1, 2}
            assert versions[2]["metadata"]["loop"]["promoted"] is False

    def test_rollback_on_post_promotion_regression(self, tmp_path, incumbent, base_data, eval_data):
        registry, serve = _make_service(tmp_path, incumbent, base_data)
        loop, _ = _make_loop(tmp_path, serve, base_data, eval_data, LOOP_CONFIG)
        with serve:
            for round_index in range(12):
                _drive_boundary_traffic(serve, 300 + round_index, rounds=2)
                if loop.tick()["action"] == "promoted":
                    break
            assert serve.version == 2

            # Adversarial ground truth: every label inverted, so observed
            # accuracy craters and the loop must roll back to v1.
            X_check, y_check = _boundary_data(64, 29)
            outcome = loop.observe_labeled(X_check, 1 - y_check)
            assert outcome["rolled_back"] is True
            assert registry.promoted_version("loopy") == 1
            assert serve.version == 1
            assert serve.metrics()["counters"]["loop_rollbacks"] == 1

            # Healthy ground truth after rollback does not flap again.
            outcome = loop.observe_labeled(X_check, y_check)
            assert outcome["rolled_back"] is False


class TestShadowEvaluator:
    def test_ready_and_report(self, incumbent, base_data):
        X, _ = base_data
        config = LoopConfig(min_shadow_rows=4, shadow_fraction=1.0)
        evaluator = ShadowEvaluator(incumbent, config)
        assert not evaluator.ready()
        assert evaluator.mirror.take()  # fraction=1.0 mirrors every batch
        evaluator.mirror.observe(X[:8], incumbent.predict(X[:8]))
        assert evaluator.ready()
        report_src = AleFeedback().analyze(within_ale_committee(incumbent), X, DOMAINS)
        report = evaluator.evaluate(report_src, X)
        assert report.mirrored_rows == 8
        assert report.agreement == 1.0
        assert report.errors == 0
        assert report.drift.max_drift <= 1e-9
        assert report.to_json()["max_ale_drift"] == report.drift.max_drift


class TestDemo:
    def test_run_demo_promotes_and_is_deterministic(self, tmp_path):
        summary = run_demo(tmp_path / "a", seed=3)
        actions = [event["action"] for event in summary["ticks"]]
        assert "retrained" in actions
        assert actions[-1] in ("promoted", "rejected")
        assert summary["status"]["counters"]["loop_retrains"] >= 1
        # Same seed, fresh directory: identical decisions.
        replay = run_demo(tmp_path / "b", seed=3)
        assert [event["action"] for event in replay["ticks"]] == actions
        assert replay["status"]["last_decision"] == summary["status"]["last_decision"]
