"""Tests for repro.ml.metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.ml.metrics import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    log_loss,
    macro_f1,
    precision_recall_f1,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            accuracy([0, 1], [0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy([], [])


class TestBalancedAccuracy:
    def test_equals_accuracy_when_balanced(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.75)

    def test_imbalance_robustness(self):
        # 90 negatives, 10 positives; predicting all-negative gets 90%
        # accuracy but only 50% balanced accuracy.
        y_true = [0] * 90 + [1] * 10
        y_pred = [0] * 100
        assert accuracy(y_true, y_pred) == pytest.approx(0.9)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_mean_of_recalls(self):
        y_true = [0, 0, 0, 1, 1, 2]
        y_pred = [0, 0, 1, 1, 0, 2]
        # recalls: 2/3, 1/2, 1
        assert balanced_accuracy(y_true, y_pred) == pytest.approx((2 / 3 + 0.5 + 1.0) / 3)

    def test_classes_only_in_pred_ignored(self):
        assert balanced_accuracy([0, 0], [0, 5]) == pytest.approx(0.5)

    def test_string_labels(self):
        assert balanced_accuracy(["a", "b"], ["a", "b"]) == 1.0


class TestConfusionMatrix:
    def test_basic(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_explicit_label_order(self):
        matrix = confusion_matrix([0, 1], [1, 0], labels=[1, 0])
        assert matrix.tolist() == [[0, 1], [1, 0]]

    def test_unknown_label_rejected(self):
        with pytest.raises(ValidationError):
            confusion_matrix([0, 2], [0, 0], labels=[0, 1])

    def test_rows_sum_to_class_counts(self):
        y_true = np.array([0, 0, 1, 2, 2, 2])
        y_pred = np.array([1, 0, 1, 0, 2, 2])
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.sum(axis=1).tolist() == [2, 1, 3]

    @staticmethod
    def _reference(y_true, y_pred, labels):
        """The pre-vectorization per-sample loop, kept as the oracle."""
        index = {label: i for i, label in enumerate(labels)}
        matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
        for t, p in zip(y_true, y_pred):
            matrix[index[t], index[p]] += 1
        return matrix

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_reference_loop(self, seed):
        rng = np.random.default_rng(seed)
        y_true = rng.integers(0, 5, size=300)
        y_pred = rng.integers(0, 5, size=300)
        expected = self._reference(y_true, y_pred, [0, 1, 2, 3, 4])
        assert np.array_equal(confusion_matrix(y_true, y_pred), expected)

    def test_unsorted_explicit_labels(self):
        y_true = np.array([2, 0, 1, 2, 1])
        y_pred = np.array([0, 0, 2, 2, 1])
        labels = [2, 0, 1]  # deliberately not sorted
        expected = self._reference(y_true, y_pred, labels)
        assert np.array_equal(confusion_matrix(y_true, y_pred, labels=labels), expected)

    def test_string_labels(self):
        matrix = confusion_matrix(
            ["tcp", "udp", "tcp"], ["udp", "udp", "tcp"], labels=["udp", "tcp"]
        )
        assert matrix.tolist() == [[1, 0], [1, 1]]

    def test_unknown_label_message_names_first_bad_pair(self):
        with pytest.raises(ValidationError, match="label 2 or 0 not in the provided labels"):
            confusion_matrix([0, 2, 3], [0, 0, 0], labels=[0, 1])
        with pytest.raises(ValidationError, match="label 0 or 9 not in the provided labels"):
            confusion_matrix([0, 0], [0, 9], labels=[0, 1])


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, 1)
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(0.5)
        assert f1 == pytest.approx(0.5)

    def test_absent_prediction_gives_zero(self):
        precision, recall, f1 = precision_recall_f1([1, 1], [0, 0], 1)
        assert (precision, recall, f1) == (0.0, 0.0, 0.0)

    def test_macro_f1_average(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 0, 1, 1]
        assert macro_f1(y_true, y_pred) == 1.0


class TestLogLoss:
    def test_perfect_is_near_zero(self):
        proba = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert log_loss([0, 1], proba, labels=[0, 1]) < 1e-8

    def test_uniform_is_log_k(self):
        proba = np.full((4, 2), 0.5)
        assert log_loss([0, 1, 0, 1], proba, labels=[0, 1]) == pytest.approx(np.log(2))

    def test_shape_checks(self):
        with pytest.raises(ValidationError):
            log_loss([0, 1], np.ones((2, 3)) / 3, labels=[0, 1])
        with pytest.raises(ValidationError):
            log_loss([0, 1, 0], np.ones((2, 2)) / 2, labels=[0, 1])

    def test_unknown_true_label(self):
        with pytest.raises(ValidationError):
            log_loss([0, 7], np.ones((2, 2)) / 2, labels=[0, 1])


@settings(max_examples=50, deadline=None)
@given(
    labels=st.lists(st.integers(0, 3), min_size=2, max_size=60),
    seed=st.integers(0, 2**31 - 1),
)
def test_balanced_accuracy_bounds_property(labels, seed):
    """Balanced accuracy always lies in [0, 1], and equals 1 on self."""
    y_true = np.array(labels)
    rng = np.random.default_rng(seed)
    y_pred = rng.permutation(y_true)
    score = balanced_accuracy(y_true, y_pred)
    assert 0.0 <= score <= 1.0
    assert balanced_accuracy(y_true, y_true) == 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=50))
def test_confusion_matrix_total_property(labels):
    """All entries sum to the number of samples."""
    y_true = np.array(labels)
    y_pred = np.roll(y_true, 1)
    assert confusion_matrix(y_true, y_pred).sum() == y_true.size
