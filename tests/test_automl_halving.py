"""Tests for successive-halving search."""

import numpy as np
import pytest

from repro.automl import AutoMLClassifier, SuccessiveHalvingSearch
from repro.exceptions import SearchBudgetError, ValidationError


class TestSuccessiveHalving:
    def test_finds_good_candidate(self, blobs_2class):
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(n_candidates=9, random_state=0).run(X, y)
        assert result.best.score > 0.85

    def test_results_sorted(self, blobs_2class):
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(n_candidates=9, random_state=1).run(X, y)
        scores = [item.score for item in result.evaluated]
        assert scores == sorted(scores, reverse=True)

    def test_valid_proba_shapes(self, blobs_2class):
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(n_candidates=6, random_state=2).run(X, y)
        for item in result.evaluated:
            assert item.valid_proba.shape == (result.valid_indices.size, 2)

    def test_evaluates_at_most_n_candidates(self, blobs_2class):
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(n_candidates=6, random_state=3).run(X, y)
        assert len(result.evaluated) + len(result.failures) <= 6

    def test_reproducible(self, blobs_2class):
        X, y = blobs_2class
        a = SuccessiveHalvingSearch(n_candidates=6, random_state=4).run(X, y)
        b = SuccessiveHalvingSearch(n_candidates=6, random_state=4).run(X, y)
        assert [i.score for i in a.evaluated] == [i.score for i in b.evaluated]

    def test_parameter_validation(self):
        with pytest.raises(SearchBudgetError):
            SuccessiveHalvingSearch(n_candidates=1)
        with pytest.raises(ValidationError):
            SuccessiveHalvingSearch(eta=1)
        with pytest.raises(ValidationError):
            SuccessiveHalvingSearch(min_resource_fraction=0.0)
        with pytest.raises(SearchBudgetError):
            SuccessiveHalvingSearch(time_budget=-1.0)
        # time_budget=0 is a valid configuration ("no search iterations");
        # see tests/test_automl_budget.py for the run-time contract.
        SuccessiveHalvingSearch(time_budget=0.0)

    def test_multiclass(self, blobs_3class):
        X, y = blobs_3class
        result = SuccessiveHalvingSearch(n_candidates=6, random_state=5).run(X, y)
        assert result.best.score > 0.8
        assert result.classes.tolist() == [0, 1, 2]


class TestAutoMLWithHalving:
    def test_strategy_switch(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(
            n_iterations=9, search_strategy="halving", ensemble_size=3, random_state=0
        ).fit(X, y)
        assert automl.score(X, y) > 0.9
        assert len(automl.ensemble_members_) >= 1

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            AutoMLClassifier(search_strategy="simulated_annealing")

    def test_feedback_composes_with_halving(self, scream_data):
        from repro.core import AleFeedback, within_ale_committee

        automl = AutoMLClassifier(
            n_iterations=9, search_strategy="halving", ensemble_size=4,
            min_distinct_members=3, random_state=1,
        ).fit(scream_data.X, scream_data.y)
        report = AleFeedback(grid_size=10).analyze(
            within_ale_committee(automl), scream_data.X, scream_data.domains
        )
        assert report.committee_size >= 2
