"""Tests for the AQM queue disciplines."""

import numpy as np
import pytest

from repro.exceptions import EmulationError
from repro.netsim import RED, CoDel, DropTail, NetworkScenario, make_discipline, run_packet_scenario
from repro.netsim.packet import Packet


class TestDropTail:
    def test_admits_below_capacity(self):
        discipline = DropTail()
        assert discipline.admit(queue_length=4, capacity=5, now=0.0)
        assert not discipline.admit(queue_length=5, capacity=5, now=0.0)

    def test_always_delivers(self):
        assert DropTail().deliver(Packet(flow_id=0, sequence=0), now=1.0, rate_pps=100.0)


class TestRED:
    def test_no_drops_when_queue_small(self):
        red = RED(rng=np.random.default_rng(0))
        outcomes = [red.admit(queue_length=1, capacity=100, now=0.0) for _ in range(200)]
        assert all(outcomes)

    def test_probabilistic_drops_in_band(self):
        red = RED(min_threshold=0.2, max_threshold=0.8, max_probability=0.5, weight=1.0,
                  rng=np.random.default_rng(1))
        outcomes = [red.admit(queue_length=50, capacity=100, now=0.0) for _ in range(500)]
        drop_rate = 1.0 - np.mean(outcomes)
        assert 0.05 < drop_rate < 0.9

    def test_full_queue_always_dropped(self):
        red = RED(weight=1.0, rng=np.random.default_rng(2))
        assert not red.admit(queue_length=100, capacity=100, now=0.0)

    def test_above_max_threshold_dropped(self):
        red = RED(min_threshold=0.1, max_threshold=0.5, weight=1.0, rng=np.random.default_rng(3))
        assert not red.admit(queue_length=80, capacity=100, now=0.0)

    def test_ewma_smooths_transients(self):
        red = RED(min_threshold=0.2, max_threshold=0.5, weight=0.01, rng=np.random.default_rng(4))
        # One instant spike does not push the slow EWMA over the threshold.
        assert red.admit(queue_length=90, capacity=100, now=0.0)

    def test_parameter_validation(self):
        with pytest.raises(EmulationError):
            RED(min_threshold=0.8, max_threshold=0.2)
        with pytest.raises(EmulationError):
            RED(max_probability=0.0)
        with pytest.raises(EmulationError):
            RED(weight=0.0)


class TestCoDel:
    def test_short_sojourn_always_delivered(self):
        codel = CoDel(target=0.01, interval=0.1)
        packet = Packet(flow_id=0, sequence=0)
        packet.enqueue_time = 0.0
        assert codel.deliver(packet, now=0.005, rate_pps=100.0)

    def test_sustained_delay_triggers_drops(self):
        codel = CoDel(target=0.005, interval=0.05)
        drops = 0
        now = 0.0
        for seq in range(200):
            packet = Packet(flow_id=0, sequence=seq)
            packet.enqueue_time = now - 0.05  # 50ms sojourn, way over target
            if not codel.deliver(packet, now=now, rate_pps=1000.0):
                drops += 1
            now += 0.002
        assert drops > 0

    def test_recovers_when_delay_falls(self):
        codel = CoDel(target=0.005, interval=0.02)
        now = 0.0
        for seq in range(100):  # drive into dropping state
            packet = Packet(flow_id=0, sequence=seq)
            packet.enqueue_time = now - 0.05
            codel.deliver(packet, now=now, rate_pps=1000.0)
            now += 0.002
        good = Packet(flow_id=0, sequence=999)
        good.enqueue_time = now - 0.001  # 1ms sojourn: below target
        assert codel.deliver(good, now=now, rate_pps=1000.0)
        assert not codel._dropping

    def test_parameter_validation(self):
        with pytest.raises(EmulationError):
            CoDel(target=0.0)
        with pytest.raises(EmulationError):
            CoDel(interval=-1.0)


class TestFactoryAndIntegration:
    def test_make_discipline(self):
        assert isinstance(make_discipline("droptail"), DropTail)
        assert isinstance(make_discipline("red"), RED)
        assert isinstance(make_discipline("codel", target=0.01), CoDel)
        with pytest.raises(EmulationError):
            make_discipline("fq_pie")

    def test_codel_tames_reno_latency(self):
        scenario = NetworkScenario(bandwidth_mbps=20, rtt_ms=40, loss_rate=0.0, queue_bdp=4.0)
        droptail = run_packet_scenario(scenario, "reno", duration=4.0, random_state=0)
        codel = run_packet_scenario(
            scenario, "reno", duration=4.0, discipline=CoDel(), random_state=0
        )
        assert codel.p95_delay_ms < 0.6 * droptail.p95_delay_ms
        assert codel.throughput_mbps > 0.7 * droptail.throughput_mbps

    def test_red_keeps_queue_below_droptail(self):
        # Two flows so the queue actually builds past RED's min threshold.
        scenario = NetworkScenario(
            bandwidth_mbps=20, rtt_ms=40, loss_rate=0.0, n_flows=2, queue_bdp=4.0
        )
        droptail = run_packet_scenario(scenario, "reno", duration=5.0, random_state=0)
        red = run_packet_scenario(
            scenario, "reno", duration=5.0,
            discipline=RED(rng=np.random.default_rng(0)), random_state=0,
        )
        assert red.p95_delay_ms < droptail.p95_delay_ms
