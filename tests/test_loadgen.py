"""Tests for repro.loadgen — workload shapes, the driver, and LoadReport.

The harness's own promises, attacked three ways:

1. **Property tests** (hypothesis): the zero-drop accounting identity
   and the latency percentiles of :class:`LoadReport` against brute
   numpy oracles, and the serving :class:`Histogram` ring buffer against
   a keep-everything reference.
2. **Deterministic units**: seeded arrival schedules replay exactly,
   shape validation rejects nonsense, retry storms account each retry as
   a new offered attempt, and outcome mapping covers every typed error.
3. **Live runs**: a seeded workload against a real served model over
   real sockets completes with balanced accounting; heavier shapes
   (flash crowd into a tiny queue, churn with aborts, dribbling slow
   clients) are ``slow``-marked.
"""

import threading

import numpy as np
import pytest

from repro.exceptions import (
    BackpressureError,
    LoadTestError,
    RequestTimeoutError,
    ValidationError,
)
from repro.loadgen import (
    OUTCOMES,
    Attempt,
    HttpTarget,
    InProcessTarget,
    LoadReport,
    WorkloadShape,
    arrival_times,
    check_accounting,
    check_p99,
    check_shed_rate,
    closed_loop,
    connection_churn,
    flash_crowd,
    open_loop,
    retry_storm,
    run_workload,
    slow_client,
)
from repro.rng import check_random_state
from repro.serve import MetricsRegistry, ServeConfig, ServeService, serve_async_http, serve_http

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

SETTINGS = settings(max_examples=25, deadline=None)

attempt_tuples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.sampled_from(OUTCOMES),
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    ),
    max_size=80,
)


class TestLoadReportProperties:
    @SETTINGS
    @given(raw=attempt_tuples)
    def test_accounting_identity_holds_by_construction(self, raw):
        attempts = [Attempt(at, outcome, latency) for at, outcome, latency in raw]
        report = LoadReport.from_attempts(attempts, duration=1.0)
        assert report.balanced()
        assert report.offered == len(attempts)
        for outcome in OUTCOMES:
            expected = sum(1 for a in attempts if a.outcome == outcome)
            assert getattr(report, outcome) == expected
        check_accounting(report, allow_failed=True)

    @SETTINGS
    @given(raw=attempt_tuples)
    def test_per_second_series_sums_to_counts(self, raw):
        attempts = [Attempt(at, outcome, latency) for at, outcome, latency in raw]
        report = LoadReport.from_attempts(attempts, duration=1.0)
        for outcome in OUTCOMES:
            assert sum(bucket[outcome] for bucket in report.per_second) == getattr(
                report, outcome
            )
        for bucket in report.per_second:  # seconds are contiguous from 0
            assert bucket["second"] == report.per_second.index(bucket)

    @SETTINGS
    @given(raw=attempt_tuples)
    def test_percentiles_match_numpy_oracle(self, raw):
        attempts = [Attempt(at, outcome, latency) for at, outcome, latency in raw]
        report = LoadReport.from_attempts(attempts, duration=1.0)
        done = np.array([a.latency for a in attempts if a.outcome == "completed"])
        assert report.latency["count"] == done.size
        if done.size:
            for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
                assert report.latency[label] == float(np.quantile(done, q))
            assert report.latency["max"] == float(done.max())

    @SETTINGS
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=60
        ),
        window=st.integers(min_value=1, max_value=16),
    )
    def test_histogram_ring_buffer_matches_brute_force(self, values, window):
        """The serving Histogram: exact count/sum, quantiles over the last `window`."""
        histogram = MetricsRegistry().histogram("h", window=window)
        for value in values:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == len(values)
        assert summary["sum"] == pytest.approx(sum(values))
        retained = np.array(values[-window:])  # ring keeps exactly the newest window
        assert summary["max"] == float(retained.max())
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            assert summary[label] == float(np.quantile(retained, q))


class TestAttemptAndCheckers:
    def test_outcome_vocabulary(self):
        assert OUTCOMES == ("completed", "shed", "timed_out", "failed")

    def test_attempt_validation(self):
        with pytest.raises(ValidationError, match="outcome"):
            Attempt(0.0, "exploded")
        with pytest.raises(ValidationError):
            Attempt(-1.0, "completed")
        with pytest.raises(ValidationError):
            Attempt(0.0, "completed", latency=-0.1)

    def test_check_accounting_flags_failures(self):
        report = LoadReport.from_attempts(
            [Attempt(0.0, "completed"), Attempt(0.1, "failed")], duration=1.0
        )
        with pytest.raises(LoadTestError, match="failed outright"):
            check_accounting(report)
        check_accounting(report, allow_failed=True)  # explicit opt-in

    def test_check_shed_rate_bounds(self):
        report = LoadReport.from_attempts(
            [Attempt(0.0, "completed"), Attempt(0.1, "shed")], duration=1.0
        )
        assert report.shed_rate == 0.5
        check_shed_rate(report, min_rate=0.4, max_rate=0.6)
        with pytest.raises(LoadTestError, match="exceeds bound"):
            check_shed_rate(report, max_rate=0.4)
        with pytest.raises(LoadTestError, match="below expected floor"):
            check_shed_rate(report, min_rate=0.6)

    def test_check_p99(self):
        report = LoadReport.from_attempts(
            [Attempt(0.0, "completed", 0.2)], duration=1.0
        )
        check_p99(report, 0.5)
        with pytest.raises(LoadTestError, match="exceeds ceiling"):
            check_p99(report, 0.1)
        empty = LoadReport.from_attempts([Attempt(0.0, "shed")], duration=1.0)
        with pytest.raises(LoadTestError, match="undefined"):
            check_p99(empty, 1.0)

    def test_report_json_shape(self):
        report = LoadReport.from_attempts(
            [Attempt(0.0, "completed", 0.1)], duration=2.0, workload={"seed": 3}
        )
        payload = report.to_json()
        assert payload["workload"] == {"seed": 3}
        assert payload["shed_rate"] == 0.0
        assert payload["throughput_rps"] == 0.5


class TestWorkloadShapes:
    def test_validation(self):
        with pytest.raises(ValidationError, match="kind"):
            WorkloadShape(name="x", kind="sideways")
        with pytest.raises(ValidationError):
            WorkloadShape(name="x", n_requests=0)
        with pytest.raises(ValidationError, match="rates"):
            WorkloadShape(name="x", rate=0.0)
        with pytest.raises(ValidationError, match="abort_fraction"):
            WorkloadShape(name="x", abort_fraction=1.5)
        with pytest.raises(ValidationError, match="request_timeout"):
            WorkloadShape(name="x", request_timeout=0.0)

    def test_factories_set_their_knobs(self):
        assert open_loop(10, 50.0).kind == "open"
        closed = closed_loop(5, clients=3, think_time=0.01)
        assert (closed.kind, closed.clients, closed.think_time) == ("closed", 3, 0.01)
        storm = retry_storm(10, 50.0)
        assert storm.retry_on_shed and storm.max_retries == 5 and storm.backoff > 0
        crowd = flash_crowd(10, 50.0, 500.0)
        assert crowd.peak_rate == 500.0 and crowd.burst_fraction == 0.4
        slow = slow_client(10, 50.0)
        assert slow.dribble_chunk == 16 and slow.dribble_delay > 0
        churn = connection_churn(10, 50.0, abort_fraction=0.2)
        assert churn.new_connection_per_request and churn.abort_fraction == 0.2
        assert churn.to_json()["name"] == "connection_churn"

    def test_arrival_times_are_seeded_and_sorted(self):
        shape = open_loop(50, 200.0)
        first = arrival_times(shape, check_random_state(7))
        again = arrival_times(shape, check_random_state(7))
        np.testing.assert_array_equal(first, again)
        assert first.shape == (50,)
        assert (np.diff(first) >= 0).all()
        other = arrival_times(shape, check_random_state(8))
        assert not np.array_equal(first, other)

    def test_flash_crowd_schedule_has_a_dense_burst(self):
        shape = flash_crowd(100, 50.0, 5000.0, burst_start=0.4, burst_fraction=0.4)
        times = arrival_times(shape, check_random_state(0))
        assert times.shape == (100,)
        gaps = np.diff(times)
        burst_gaps = gaps[40:79]  # the 40-request burst segment
        outside_gaps = np.concatenate([gaps[:39], gaps[80:]])
        assert burst_gaps.mean() < outside_gaps.mean() / 10

    def test_closed_loop_has_no_schedule(self):
        assert arrival_times(closed_loop(5, clients=2), check_random_state(0)).size == 0


class _ScriptedTarget:
    """Thread-safe scripted outcomes; records every plan it was handed."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.plans = []
        self._lock = threading.Lock()

    def request(self, rows, *, timeout, plan):
        with self._lock:
            self.plans.append(plan)
            if self.outcomes:
                return self.outcomes.pop(0)
            return "completed"


class TestRunWorkload:
    def test_open_loop_accounts_every_request(self):
        X = np.zeros((4, 2))
        target = _ScriptedTarget([])
        report = run_workload(target, X, open_loop(12, 5000.0, clients=3), seed=1)
        assert report.offered == 12 and report.completed == 12
        assert report.balanced()
        check_accounting(report)
        assert report.workload["seed"] == 1 and report.workload["name"] == "open_loop"

    def test_closed_loop_counts_clients_times_requests(self):
        X = np.zeros((2, 2))
        report = run_workload(_ScriptedTarget([]), X, closed_loop(3, clients=2), seed=0)
        assert report.offered == 6 and report.completed == 6

    def test_retry_storm_offers_each_retry_as_new_attempt(self):
        X = np.zeros((2, 2))
        target = _ScriptedTarget(["shed"] * 100)
        shape = retry_storm(4, 5000.0, max_retries=1, backoff=0.0, clients=2)
        report = run_workload(target, X, shape, seed=0)
        # Every request sheds, retries once, sheds again: 4 * 2 attempts.
        assert report.offered == 8 and report.shed == 8
        assert report.balanced()
        check_shed_rate(report, min_rate=0.99)

    def test_abort_plans_are_seeded_and_passed_through(self):
        X = np.zeros((2, 2))
        target = _ScriptedTarget([])
        shape = connection_churn(20, 5000.0, abort_fraction=0.5)
        run_workload(target, X, shape, seed=3)
        aborted = sum(1 for plan in target.plans if plan["abort"])
        assert 0 < aborted < 20
        assert all(plan["new_connection"] for plan in target.plans)
        # Replay: the same seed aborts the same attempts.
        replay = _ScriptedTarget([])
        run_workload(replay, X, shape, seed=3)
        assert sum(1 for plan in replay.plans if plan["abort"]) == aborted

    def test_rejects_bad_row_pools(self):
        with pytest.raises(ValidationError, match="2-D"):
            run_workload(_ScriptedTarget([]), np.zeros(5), open_loop(2, 100.0))
        with pytest.raises(ValidationError, match="rows_per_request"):
            run_workload(
                _ScriptedTarget([]), np.zeros((1, 2)), open_loop(2, 100.0, rows_per_request=4)
            )


class TestInProcessTarget:
    class _FakeService:
        def __init__(self, error=None):
            self.error = error

        def predict(self, rows, *, timeout=None):
            if self.error is not None:
                raise self.error
            return {"labels": [0]}

    def test_outcome_mapping(self):
        plan = {}
        assert (
            InProcessTarget(self._FakeService()).request([[0.0]], timeout=1.0, plan=plan)
            == "completed"
        )
        cases = [
            (BackpressureError("full"), "shed"),
            (RequestTimeoutError("late"), "timed_out"),
            (ValidationError("bad"), "failed"),
            (OSError("socket"), "failed"),
        ]
        for error, outcome in cases:
            target = InProcessTarget(self._FakeService(error))
            assert target.request([[0.0]], timeout=1.0, plan=plan) == outcome

    def test_against_live_service(self, served_scream_registry, scream_data):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=16, max_delay=0.0),
        )
        with service:
            target = InProcessTarget(service)
            report = run_workload(target, scream_data.X, open_loop(20, 2000.0), seed=5)
        assert report.completed == 20
        check_accounting(report)
        check_p99(report, 5.0)


class TestSocketLoad:
    def test_open_loop_over_async_sockets_is_lossless(self, served_scream_registry, scream_data):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=16, max_delay=0.005),
        )
        server = serve_async_http(service)
        try:
            target = HttpTarget(server.url)
            report = run_workload(target, scream_data.X, open_loop(30, 600.0, clients=4), seed=9)
        finally:
            server.close()
        assert report.completed == 30
        check_accounting(report)
        assert service.metrics_registry.counter("requests").value == 30

    @pytest.mark.slow
    def test_flash_crowd_sheds_into_a_tiny_queue(self, served_scream_registry, scream_data):
        """Overload must shed or time out, never drop — the north-star invariant."""
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=2, max_delay=0.02, queue_bound=2, request_timeout=2.0),
        )
        server = serve_async_http(service)
        try:
            shape = flash_crowd(150, 100.0, 5000.0, clients=8, request_timeout=5.0)
            report = run_workload(HttpTarget(server.url), scream_data.X, shape, seed=11)
        finally:
            server.close()
        check_accounting(report)
        assert report.completed > 0
        assert report.shed > 0, "the burst should overwhelm a 2-deep queue"

    @pytest.mark.slow
    def test_connection_churn_with_aborts_is_accounted(self, served_scream_registry, scream_data):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=16, max_delay=0.005),
        )
        server = serve_async_http(service)
        try:
            shape = connection_churn(60, 600.0, abort_fraction=0.25, clients=4)
            report = run_workload(HttpTarget(server.url), scream_data.X, shape, seed=13)
        finally:
            server.close()
        # Aborted sends count as failed — visible, not dropped.
        check_accounting(report, allow_failed=True)
        assert report.failed > 0 and report.completed > 0
        assert report.offered == 60

    @pytest.mark.slow
    def test_slow_clients_dribble_through_both_transports(
        self, served_scream_registry, scream_data
    ):
        for start_server in (serve_http, serve_async_http):
            service = ServeService.from_registry(
                "scream",
                directory=served_scream_registry.directory,
                config=ServeConfig(max_batch=16, max_delay=0.005),
            )
            server = start_server(service)
            try:
                shape = slow_client(16, 400.0, dribble_chunk=24, dribble_delay=0.002, clients=4)
                report = run_workload(HttpTarget(server.url), scream_data.X, shape, seed=17)
            finally:
                server.close()
            assert report.completed == 16, start_server.__name__
            check_accounting(report)
