"""Tests for the bottleneck link and scenario value objects."""

import numpy as np
import pytest

from repro.exceptions import EmulationError
from repro.netsim.events import Simulator
from repro.netsim.link import BottleneckLink
from repro.netsim.packet import DEFAULT_PACKET_BYTES, NetworkScenario, Packet


def _link(sim, **overrides):
    defaults = dict(rate_pps=100.0, one_way_delay=0.01, queue_capacity=5, loss_rate=0.0,
                    rng=np.random.default_rng(0))
    defaults.update(overrides)
    return BottleneckLink(sim, **defaults)


class TestBottleneckLink:
    def test_delivery_after_serialization_and_propagation(self):
        sim = Simulator()
        link = _link(sim)
        arrivals = []
        link.send(Packet(flow_id=0, sequence=0, send_time=0.0), lambda p: arrivals.append(sim.now))
        sim.run(1.0)
        # 1/100 s serialization + 0.01 s propagation.
        assert arrivals == [pytest.approx(0.02)]

    def test_fifo_order(self):
        sim = Simulator()
        link = _link(sim)
        order = []
        for seq in range(3):
            link.send(Packet(flow_id=0, sequence=seq), lambda p: order.append(p.sequence))
        sim.run(1.0)
        assert order == [0, 1, 2]

    def test_back_to_back_serialization_spacing(self):
        sim = Simulator()
        link = _link(sim, one_way_delay=0.0)
        times = []
        for seq in range(3):
            link.send(Packet(flow_id=0, sequence=seq), lambda p: times.append(sim.now))
        sim.run(1.0)
        assert np.allclose(np.diff(times), 0.01)  # 1/rate spacing

    def test_drop_tail_overflow(self):
        sim = Simulator()
        link = _link(sim, queue_capacity=2)
        accepted = [link.send(Packet(flow_id=0, sequence=s), lambda p: None) for s in range(5)]
        # First packet starts transmitting immediately and leaves the queue,
        # so 3 are admitted before the 2-slot queue overflows.
        assert sum(accepted) == 3
        assert link.stats.dropped_overflow == 2

    def test_random_loss_rate(self):
        sim = Simulator()
        link = _link(sim, loss_rate=0.5, queue_capacity=10**6)
        outcomes = [link.send(Packet(flow_id=0, sequence=s), lambda p: None) for s in range(2000)]
        sim.run(100.0)
        assert np.mean(outcomes) == pytest.approx(0.5, abs=0.05)
        assert link.stats.dropped_random == 2000 - sum(outcomes)

    def test_drop_listener_called(self):
        sim = Simulator()
        link = _link(sim, queue_capacity=1)
        drops = []
        link.drop_listeners.append(lambda p: drops.append(p.sequence))
        for seq in range(4):
            link.send(Packet(flow_id=0, sequence=seq), lambda p: None)
        assert len(drops) == link.stats.dropped

    def test_utilization_accounting(self):
        sim = Simulator()
        link = _link(sim, one_way_delay=0.0, queue_capacity=100)
        for seq in range(10):
            link.send(Packet(flow_id=0, sequence=seq), lambda p: None)
        sim.run(1.0)
        assert link.stats.utilization(1.0) == pytest.approx(0.1)

    def test_queueing_delay_estimate(self):
        sim = Simulator()
        link = _link(sim)
        for seq in range(4):
            link.send(Packet(flow_id=0, sequence=seq), lambda p: None)
        assert link.queueing_delay_estimate() == pytest.approx(link.queue_length / 100.0)

    def test_parameter_validation(self):
        sim = Simulator()
        with pytest.raises(EmulationError):
            _link(sim, rate_pps=0.0)
        with pytest.raises(EmulationError):
            _link(sim, one_way_delay=-1.0)
        with pytest.raises(EmulationError):
            _link(sim, queue_capacity=0)
        with pytest.raises(EmulationError):
            _link(sim, loss_rate=1.0)


class TestNetworkScenario:
    def test_derived_quantities(self):
        scenario = NetworkScenario(bandwidth_mbps=12.0, rtt_ms=100.0, loss_rate=0.01)
        assert scenario.bandwidth_pps == pytest.approx(12e6 / (8 * DEFAULT_PACKET_BYTES))
        assert scenario.base_rtt_s == pytest.approx(0.1)
        assert scenario.bdp_packets == pytest.approx(scenario.bandwidth_pps * 0.1)
        assert scenario.queue_capacity_packets >= 2

    def test_feature_vector_order(self):
        scenario = NetworkScenario(bandwidth_mbps=5, rtt_ms=20, loss_rate=0.01, n_flows=3)
        assert scenario.as_features() == (5.0, 20.0, 0.01, 3.0)

    def test_validation(self):
        with pytest.raises(EmulationError):
            NetworkScenario(bandwidth_mbps=0, rtt_ms=10, loss_rate=0)
        with pytest.raises(EmulationError):
            NetworkScenario(bandwidth_mbps=1, rtt_ms=0, loss_rate=0)
        with pytest.raises(EmulationError):
            NetworkScenario(bandwidth_mbps=1, rtt_ms=10, loss_rate=1.0)
        with pytest.raises(EmulationError):
            NetworkScenario(bandwidth_mbps=1, rtt_ms=10, loss_rate=0, n_flows=0)
        with pytest.raises(EmulationError):
            NetworkScenario(bandwidth_mbps=1, rtt_ms=10, loss_rate=0, queue_bdp=0)
