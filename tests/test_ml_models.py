"""Tests for the non-tree model families (forests, boosting, linear, NB, kNN).

A shared contract suite runs every classifier through the same battery;
model-specific behaviours get their own classes below.
"""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml import (
    ExtraTreesClassifier,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    LogisticRegression,
    MultinomialNB,
    RandomForestClassifier,
    clone,
)
from repro.ml.linear import softmax

ALL_CLASSIFIERS = [
    pytest.param(lambda: RandomForestClassifier(15, max_depth=6, random_state=0), id="random_forest"),
    pytest.param(lambda: ExtraTreesClassifier(15, max_depth=8, random_state=0), id="extra_trees"),
    pytest.param(lambda: GradientBoostingClassifier(15, max_depth=2, random_state=0), id="boosting"),
    pytest.param(lambda: LogisticRegression(), id="logistic"),
    pytest.param(lambda: GaussianNB(), id="gaussian_nb"),
    pytest.param(lambda: KNeighborsClassifier(5), id="knn"),
]


@pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
class TestClassifierContract:
    def test_learns_blobs(self, factory, blobs_2class):
        X, y = blobs_2class
        model = factory().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_multiclass_probabilities(self, factory, blobs_3class):
        X, y = blobs_3class
        model = factory().fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0], 3)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_classes_sorted_and_predictions_members(self, factory, blobs_3class):
        X, y = blobs_3class
        model = factory().fit(X, y + 10)
        assert model.classes_.tolist() == [10, 11, 12]
        assert set(model.predict(X)) <= {10, 11, 12}

    def test_unfitted_raises(self, factory):
        with pytest.raises(NotFittedError):
            factory().predict([[0.0, 0.0]])

    def test_feature_mismatch_raises(self, factory, blobs_2class):
        X, y = blobs_2class
        model = factory().fit(X, y)
        with pytest.raises(ValidationError):
            model.predict(np.zeros((3, 7)))

    def test_cloneable(self, factory, blobs_2class):
        X, y = blobs_2class
        model = factory()
        copy = clone(model)
        copy.fit(X, y)
        assert copy.score(X, y) > 0.9

    def test_deterministic(self, factory, blobs_2class):
        X, y = blobs_2class
        a = factory().fit(X, y).predict_proba(X)
        b = factory().fit(X, y).predict_proba(X)
        assert np.allclose(a, b)


class TestForestSpecifics:
    def test_more_trees_do_not_hurt_much(self, nonlinear_xor):
        X, y = nonlinear_xor
        small = RandomForestClassifier(3, max_depth=6, random_state=0).fit(X, y)
        big = RandomForestClassifier(40, max_depth=6, random_state=0).fit(X, y)
        assert big.score(X, y) >= small.score(X, y) - 0.05

    def test_member_count(self, blobs_2class):
        X, y = blobs_2class
        forest = RandomForestClassifier(7, random_state=0).fit(X, y)
        assert len(forest.estimators_) == 7

    def test_extra_trees_no_bootstrap_by_default(self, blobs_2class):
        X, y = blobs_2class
        trees = ExtraTreesClassifier(5, random_state=0)
        assert trees._bootstrap_default is False
        trees.fit(X, y)
        assert len(trees.estimators_) == 5

    def test_invalid_n_estimators(self):
        with pytest.raises(ValidationError):
            RandomForestClassifier(0)

    def test_solves_xor_unlike_linear(self, nonlinear_xor):
        X, y = nonlinear_xor
        forest = RandomForestClassifier(25, max_depth=8, random_state=0).fit(X, y)
        linear = LogisticRegression().fit(X, y)
        assert forest.score(X, y) > 0.95
        assert linear.score(X, y) < 0.7  # XOR defeats the linear model


class TestBoostingSpecifics:
    def test_training_loss_decreases_with_rounds(self, nonlinear_xor):
        X, y = nonlinear_xor
        short = GradientBoostingClassifier(3, max_depth=2, random_state=0).fit(X, y)
        long = GradientBoostingClassifier(40, max_depth=2, random_state=0).fit(X, y)
        assert long.score(X, y) > short.score(X, y)

    def test_subsample_validated(self):
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(subsample=0.0)
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(subsample=1.5)

    def test_learning_rate_validated(self):
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(learning_rate=0.0)

    def test_stochastic_variant_learns(self, blobs_2class):
        X, y = blobs_2class
        model = GradientBoostingClassifier(20, subsample=0.7, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_stage_shape(self, blobs_3class):
        X, y = blobs_3class
        model = GradientBoostingClassifier(4, random_state=0).fit(X, y)
        assert len(model.stages_) == 4
        assert all(len(stage) == 3 for stage in model.stages_)


class TestLogisticSpecifics:
    def test_softmax_rows_sum_to_one(self):
        logits = np.array([[1.0, 2.0, 3.0], [-5.0, 0.0, 5.0]])
        out = softmax(logits)
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_softmax_handles_large_logits(self):
        out = softmax(np.array([[1e4, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)

    def test_decision_boundary_roughly_correct(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 2))
        y = (2 * X[:, 0] - X[:, 1] > 0).astype(int)
        model = LogisticRegression(C=10.0).fit(X, y)
        # Learned weight direction should align with (2, -1).
        w = model.coef_[1] - model.coef_[0]
        cosine = w @ np.array([2.0, -1.0]) / (np.linalg.norm(w) * np.sqrt(5))
        assert cosine > 0.97

    def test_regularization_shrinks_weights(self, blobs_2class):
        X, y = blobs_2class
        loose = LogisticRegression(C=100.0).fit(X, y)
        tight = LogisticRegression(C=0.01).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_invalid_c(self):
        with pytest.raises(ValidationError):
            LogisticRegression(C=0.0)


class TestNaiveBayesSpecifics:
    def test_gaussian_recovers_means(self, blobs_2class):
        X, y = blobs_2class
        model = GaussianNB().fit(X, y)
        assert model.theta_.shape == (2, 2)
        assert model.theta_[0, 0] < 0 < model.theta_[1, 0]

    def test_gaussian_prior_reflects_imbalance(self):
        X = np.vstack([np.zeros((30, 1)), np.ones((10, 1))]) + np.random.default_rng(0).normal(0, 0.1, (40, 1))
        y = np.array([0] * 30 + [1] * 10)
        model = GaussianNB().fit(X, y)
        assert model.class_prior_[0] == pytest.approx(0.75)

    def test_multinomial_requires_nonnegative(self):
        with pytest.raises(ValidationError):
            MultinomialNB().fit(np.array([[-1.0, 2.0], [1.0, 2.0]]), [0, 1])

    def test_multinomial_counts(self):
        # Class 0 heavy on feature 0, class 1 heavy on feature 1.
        X = np.array([[9.0, 1.0], [8.0, 2.0], [1.0, 9.0], [2.0, 8.0]])
        y = np.array([0, 0, 1, 1])
        model = MultinomialNB().fit(X, y)
        assert model.predict([[10.0, 0.0]])[0] == 0
        assert model.predict([[0.0, 10.0]])[0] == 1

    def test_multinomial_alpha_validated(self):
        with pytest.raises(ValidationError):
            MultinomialNB(alpha=0.0)


class TestKnnSpecifics:
    def test_k1_memorizes(self, blobs_2class):
        X, y = blobs_2class
        assert KNeighborsClassifier(1).fit(X, y).score(X, y) == 1.0

    def test_k_larger_than_dataset_clamped(self):
        X = np.array([[0.0], [1.0], [10.0], [11.0]])
        y = np.array([0, 0, 1, 1])
        model = KNeighborsClassifier(100).fit(X, y)
        proba = model.predict_proba([[5.0]])
        assert np.allclose(proba, [[0.5, 0.5]])

    def test_distance_weighting_prefers_closer(self):
        X = np.array([[0.0], [0.2], [10.0]])
        y = np.array([0, 0, 1])
        uniform = KNeighborsClassifier(3, weights="uniform").fit(X, y)
        weighted = KNeighborsClassifier(3, weights="distance").fit(X, y)
        query = [[0.1]]
        assert weighted.predict_proba(query)[0, 0] > uniform.predict_proba(query)[0, 0]

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            KNeighborsClassifier(0)
        with pytest.raises(ValidationError):
            KNeighborsClassifier(weights="gravity")

    def test_blockwise_matches_small_batches(self, blobs_2class):
        X, y = blobs_2class
        model = KNeighborsClassifier(5).fit(X, y)
        full = model.predict_proba(X)
        rows = np.vstack([model.predict_proba(X[i : i + 1]) for i in range(20)])
        assert np.allclose(full[:20], rows)
