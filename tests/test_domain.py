"""Tests for the domain-customization layer."""

import networkx as nx
import numpy as np
import pytest

from repro.domain import (
    DECREASING,
    INCREASING,
    DomainCustomizedAutoML,
    DomainSpec,
    StructuredGaussianClassifier,
    TopologyPriorBuilder,
)
from repro.exceptions import ValidationError
from repro.ml import balanced_accuracy


class TestDomainSpec:
    def test_valid_spec(self):
        spec = DomainSpec(
            feature_names=["a", "b", "c"],
            independence_groups=[{"a", "b"}],
            monotone={"c": INCREASING},
        )
        assert spec.kept_features() == ["a", "b", "c"]

    def test_duplicate_feature_names_rejected(self):
        with pytest.raises(ValidationError):
            DomainSpec(feature_names=["a", "a"])

    def test_unknown_group_member_rejected(self):
        with pytest.raises(ValidationError):
            DomainSpec(feature_names=["a"], independence_groups=[{"z"}])

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValidationError):
            DomainSpec(
                feature_names=["a", "b", "c"],
                independence_groups=[{"a", "b"}, {"b", "c"}],
            )

    def test_invalid_monotone_direction(self):
        with pytest.raises(ValidationError):
            DomainSpec(feature_names=["a"], monotone={"a": 2})

    def test_irrelevant_and_monotone_conflict(self):
        with pytest.raises(ValidationError):
            DomainSpec(feature_names=["a"], monotone={"a": 1}, irrelevant=["a"])

    def test_kept_indices(self):
        spec = DomainSpec(feature_names=["a", "b", "c"], irrelevant=["b"])
        assert spec.kept_indices() == [0, 2]

    def test_group_of_singleton_default(self):
        spec = DomainSpec(feature_names=["a", "b"])
        assert spec.group_of("a") == frozenset({"a"})

    def test_covariance_mask(self):
        spec = DomainSpec(
            feature_names=["a", "b", "c", "junk"],
            independence_groups=[{"a", "b"}],
            irrelevant=["junk"],
        )
        mask = np.array(spec.covariance_mask())
        assert mask.shape == (3, 3)
        assert mask[0, 1] and mask[1, 0]  # a-b covary
        assert not mask[0, 2] and not mask[2, 0]  # a-c independent
        assert mask.diagonal().all()

    def test_describe_lists_constraints(self):
        spec = DomainSpec(feature_names=["a", "b"], monotone={"b": DECREASING}, irrelevant=["a"])
        text = spec.describe()
        assert "decreasing" in text and "irrelevant" in text


class TestStructuredGaussian:
    def _correlated_data(self, n=400, seed=0):
        rng = np.random.default_rng(seed)
        z = rng.normal(size=n)
        X = np.column_stack([z + 0.1 * rng.normal(size=n), z + 0.1 * rng.normal(size=n), rng.normal(size=n)])
        y = (z + 0.5 * X[:, 2] > 0).astype(int)
        return X, y

    def test_full_covariance_is_qda(self):
        X, y = self._correlated_data()
        model = StructuredGaussianClassifier().fit(X, y)
        assert balanced_accuracy(y, model.predict(X)) > 0.9

    def test_masked_covariance_zeroed(self):
        X, y = self._correlated_data()
        mask = np.eye(3, dtype=bool)  # fully independent = naive Bayes
        model = StructuredGaussianClassifier(covariance_mask=mask).fit(X, y)
        # Precisions of a diagonal covariance are diagonal.
        for c in range(2):
            off_diagonal = model.precisions_[c] - np.diag(np.diag(model.precisions_[c]))
            assert np.allclose(off_diagonal, 0.0, atol=1e-8)

    def test_mask_validation(self):
        X, y = self._correlated_data(n=50)
        asymmetric = np.eye(3, dtype=bool)
        asymmetric[0, 1] = True
        with pytest.raises(ValidationError, match="symmetric"):
            StructuredGaussianClassifier(covariance_mask=asymmetric).fit(X, y)
        no_diag = np.zeros((3, 3), dtype=bool)
        with pytest.raises(ValidationError, match="diagonal"):
            StructuredGaussianClassifier(covariance_mask=no_diag).fit(X, y)
        wrong_shape = np.eye(2, dtype=bool)
        with pytest.raises(ValidationError, match="shape"):
            StructuredGaussianClassifier(covariance_mask=wrong_shape).fit(X, y)

    def test_probabilities_valid(self):
        X, y = self._correlated_data()
        proba = StructuredGaussianClassifier().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_tiny_class_rejected(self):
        X = np.random.default_rng(0).normal(size=(5, 2))
        y = np.array([0, 0, 0, 0, 1])
        with pytest.raises(ValidationError, match="fewer than 2"):
            StructuredGaussianClassifier().fit(X, y)

    def test_regularization_validated(self):
        with pytest.raises(ValidationError):
            StructuredGaussianClassifier(regularization=-1.0)


class TestTopologyPriors:
    def _builder(self):
        graph = nx.Graph([("s1", "s2"), ("s2", "h1")])
        graph.add_node("island")
        return TopologyPriorBuilder(
            graph, {"f_a": "s1", "f_b": "s2", "f_c": "island", "f_d": "h1"}
        )

    def test_connected_components_grouping(self):
        groups = self._builder().dependence_groups()
        as_sets = sorted(sorted(g) for g in groups)
        assert as_sets == [["f_a", "f_b", "f_d"], ["f_c"]]

    def test_radius_limits_grouping(self):
        graph = nx.path_graph(5)  # 0-1-2-3-4
        builder = TopologyPriorBuilder(graph, {"near": 0, "mid": 1, "far": 4})
        groups = builder.dependence_groups(radius=1)
        as_sets = sorted(sorted(g) for g in groups)
        assert ["mid", "near"] in as_sets
        assert ["far"] in as_sets

    def test_same_node_always_grouped(self):
        graph = nx.Graph()
        graph.add_node("x")
        builder = TopologyPriorBuilder(graph, {"a": "x", "b": "x"})
        assert builder.dependence_groups(radius=0) == [{"a", "b"}]

    def test_build_spec_integrates_extras(self):
        spec = self._builder().build_spec(
            ["f_a", "f_b", "f_c", "f_d"],
            monotone={"f_c": INCREASING},
            irrelevant=[],
        )
        assert spec.group_of("f_a") == frozenset({"f_a", "f_b", "f_d"})
        assert spec.monotone == {"f_c": INCREASING}

    def test_unknown_node_rejected(self):
        graph = nx.Graph([("a", "b")])
        with pytest.raises(ValidationError):
            TopologyPriorBuilder(graph, {"f": "ghost"})

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            TopologyPriorBuilder(nx.Graph(), {})

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            self._builder().dependence_groups(radius=-1)


class TestDomainCustomizedAutoML:
    def _data(self, seed=0):
        rng = np.random.default_rng(seed)
        n = 300
        X = rng.normal(size=(n, 3))
        y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
        return X, y

    def test_basic_fit_predict(self):
        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b", "noise"])
        model = DomainCustomizedAutoML(spec, n_iterations=8, random_state=0).fit(X, y)
        assert balanced_accuracy(y, model.predict(X)) > 0.85

    def test_irrelevant_feature_dropped_but_api_full_width(self):
        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b", "noise"], irrelevant=["noise"])
        model = DomainCustomizedAutoML(spec, n_iterations=8, random_state=0).fit(X, y)
        # Predict still takes all 3 columns.
        proba = model.predict_proba(X)
        assert proba.shape == (X.shape[0], 2)
        # But changing the irrelevant column must not change predictions.
        X_mutated = X.copy()
        X_mutated[:, 2] = 999.0
        assert np.allclose(model.predict_proba(X_mutated), proba)

    def test_monotonicity_eviction_records_reasons(self):
        X, y = self._data()
        # Deliberately absurd prior: label must DECREASE with feature 0,
        # the opposite of the data. Most/all members get evicted.
        spec = DomainSpec(feature_names=["a", "b", "c"], monotone={"a": DECREASING})
        model = DomainCustomizedAutoML(
            spec, n_iterations=8, monotonicity_tolerance=0.1, random_state=0
        ).fit(X, y)
        assert model.evicted_members_  # something was flagged
        assert len(model.ensemble_members_) >= 1  # never empty

    def test_correct_prior_keeps_members(self):
        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b", "c"], monotone={"a": INCREASING})
        model = DomainCustomizedAutoML(
            spec, n_iterations=8, monotonicity_tolerance=0.3, random_state=0
        ).fit(X, y)
        evicted_reasons = [reason for _, reason in model.evicted_members_]
        assert len(model.ensemble_members_) >= 1
        assert balanced_accuracy(y, model.predict(X)) > 0.85

    def test_structured_gaussian_in_search_space(self):
        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b", "c"], independence_groups=[{"a", "b"}])
        model = DomainCustomizedAutoML(spec, n_iterations=8, random_state=1)
        names = {family.name for family in model._families()}
        assert "structured_gaussian" in names

    def test_feature_count_mismatch(self):
        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b"])
        with pytest.raises(ValidationError):
            DomainCustomizedAutoML(spec, n_iterations=4).fit(X, y)

    def test_composes_with_feedback(self):
        from repro.core import AleFeedback, FeatureDomain, within_ale_committee

        X, y = self._data()
        spec = DomainSpec(feature_names=["a", "b", "c"])
        model = DomainCustomizedAutoML(spec, n_iterations=8, random_state=2).fit(X, y)
        domains = [FeatureDomain(name, -4, 4) for name in spec.feature_names]
        report = AleFeedback(grid_size=10).analyze(within_ale_committee(model), X, domains)
        assert report.committee_size == len(model.ensemble_members_)

    def test_invalid_tolerance(self):
        spec = DomainSpec(feature_names=["a"])
        with pytest.raises(ValidationError):
            DomainCustomizedAutoML(spec, monotonicity_tolerance=2.0)
