"""Tests for the estimator protocol in repro.ml.base."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    check_array,
    check_is_fitted,
    check_X_y,
    clone,
)


class _Toy(BaseEstimator):
    def __init__(self, *, alpha: float = 1.0, mode: str = "fast"):
        self.alpha = alpha
        self.mode = mode


class TestCheckArray:
    def test_accepts_lists(self):
        out = check_array([[1, 2], [3, 4]])
        assert out.dtype == np.float64 and out.shape == (2, 2)

    def test_rejects_1d_by_default(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_allow_1d_promotes_to_column(self):
        assert check_array([1.0, 2.0], allow_1d=True).shape == (2, 1)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_array(np.zeros((2, 2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="no samples"):
            check_array(np.zeros((0, 3)))
        with pytest.raises(ValidationError, match="no features"):
            check_array(np.zeros((3, 0)))

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[1.0, np.nan]])
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[np.inf, 1.0]])


class TestCheckXy:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1) and y.shape == (2,)

    def test_length_mismatch(self):
        with pytest.raises(ValidationError, match="disagree"):
            check_X_y([[1.0], [2.0]], [0, 1, 2])

    def test_2d_y_rejected(self):
        with pytest.raises(ValidationError):
            check_X_y([[1.0], [2.0]], [[0], [1]])


class TestParams:
    def test_get_params(self):
        assert _Toy(alpha=2.5).get_params() == {"alpha": 2.5, "mode": "fast"}

    def test_set_params_roundtrip(self):
        toy = _Toy().set_params(alpha=9.0, mode="slow")
        assert toy.alpha == 9.0 and toy.mode == "slow"

    def test_set_unknown_param_rejected(self):
        with pytest.raises(ValidationError, match="invalid parameter"):
            _Toy().set_params(beta=1)

    def test_clone_copies_params_not_state(self):
        toy = _Toy(alpha=3.0)
        toy.fitted_junk_ = 123
        copy = clone(toy)
        assert copy.alpha == 3.0
        assert not hasattr(copy, "fitted_junk_")

    def test_repr_contains_params(self):
        assert "alpha=1.0" in repr(_Toy())

    def test_parameterless_estimator(self):
        class Bare(BaseEstimator):
            pass

        assert Bare().get_params() == {}
        assert isinstance(clone(Bare()), Bare)


class TestCheckIsFitted:
    def test_raises_before_fit(self):
        with pytest.raises(NotFittedError):
            check_is_fitted(_Toy(), "coef_")

    def test_passes_after_attribute_set(self):
        toy = _Toy()
        toy.coef_ = np.ones(3)
        check_is_fitted(toy, "coef_")  # no raise


class TestClassifierMixin:
    class _Const(BaseEstimator, ClassifierMixin):
        """Predicts class proportions of the training labels."""

        def fit(self, X, y):
            encoded = self._encode_labels(np.asarray(y))
            self._proba = np.bincount(encoded) / encoded.size
            return self

        def predict_proba(self, X):
            return np.tile(self._proba, (np.asarray(X).shape[0], 1))

    def test_label_encoding_and_decoding(self):
        model = self._Const().fit([[0.0]] * 4, ["cat", "dog", "dog", "dog"])
        assert list(model.classes_) == ["cat", "dog"]
        assert model.n_classes_ == 2
        assert model.predict([[0.0], [1.0]]).tolist() == ["dog", "dog"]

    def test_single_class_rejected(self):
        with pytest.raises(ValidationError, match="2 distinct classes"):
            self._Const().fit([[0.0]] * 3, ["same"] * 3)

    def test_score_is_accuracy(self):
        model = self._Const().fit([[0.0]] * 4, [0, 1, 1, 1])
        assert model.score([[0.0]] * 4, [1, 1, 1, 1]) == 1.0
        assert model.score([[0.0]] * 4, [0, 0, 1, 1]) == 0.5
