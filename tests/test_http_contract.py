"""Transport-equivalence and error-contract tests, threaded vs async.

Both HTTP servers delegate semantics to the shared
:class:`~repro.serve.router.RequestDispatcher`, so they must be
observably the same service:

- the documented error contract (400 malformed/oversized, 404 unknown
  route or model, 503 shed, 504 timeout) holds **on real sockets** for
  both transports, with identical JSON error bodies;
- a seeded workload replayed against both servers yields **bitwise
  identical** response payloads, and the two services' counters
  reconcile;
- shutdown *drains*: requests already accepted into the engine queue
  get real replies before the engine goes down (regression for the
  pre-PR-9 threaded server, which abandoned queued futures), and a
  request stranded behind the shutdown sentinel is failed fast with a
  typed error instead of holding its waiter until timeout.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.exceptions import ServeError
from repro.loadgen import HttpTarget
from repro.rng import check_random_state
from repro.runtime.clock import Stopwatch
from repro.serve import (
    InferenceEngine,
    ServeConfig,
    ServeService,
    serve_async_http,
    serve_http,
)
from repro.serve.engine import _PendingRequest
from repro.serve.http import MAX_BODY_BYTES


def _start_server(transport: str, service: ServeService):
    return serve_http(service) if transport == "threaded" else serve_async_http(service)


def _raw_exchange(url: str, data: bytes, *, timeout: float = 5.0) -> tuple[int, bytes]:
    """Send raw bytes, read one response off a buffered reader."""
    host, _, port = url.split("//", 1)[-1].partition(":")
    with socket.create_connection((host, int(port)), timeout=timeout) as sock:
        sock.settimeout(timeout)
        sock.sendall(data)
        with sock.makefile("rb") as reader:
            status_line = reader.readline()
            status = int(status_line.split(b" ", 2)[1])
            headers = {}
            while True:
                line = reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            body = reader.read(int(headers.get("content-length", "0")))
    return status, body


def _post_bytes(path: str, body: bytes) -> bytes:
    return (
        f"POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {len(body)}\r\n\r\n"
    ).encode("latin-1") + body


@pytest.fixture(params=["threaded", "async"])
def transport(request):
    return request.param


@pytest.fixture()
def server(transport, served_scream_registry):
    service = ServeService.from_registry(
        "scream",
        directory=served_scream_registry.directory,
        config=ServeConfig(max_batch=16, max_delay=0.005),
    )
    server = _start_server(transport, service)
    yield server
    server.close()


class TestErrorContract:
    """One request per documented failure, identical on both transports."""

    def test_malformed_json_is_400(self, server):
        status, body = _raw_exchange(server.url, _post_bytes("/predict", b"not json"))
        assert status == 400
        payload = json.loads(body)
        assert payload["type"] == "ValidationError"
        assert payload["error"].startswith("request body is not valid JSON:")

    def test_non_object_json_is_400(self, server):
        status, body = _raw_exchange(server.url, _post_bytes("/predict", b"[1, 2]"))
        assert status == 400
        assert json.loads(body)["error"] == "request body must be a JSON object"

    def test_missing_rows_is_400(self, server):
        status, body = _raw_exchange(server.url, _post_bytes("/predict", b"{}"))
        assert status == 400
        assert '"rows"' in json.loads(body)["error"]

    def test_wrong_feature_count_is_400(self, server):
        status, body = _raw_exchange(
            server.url, _post_bytes("/predict", json.dumps({"rows": [[1.0]]}).encode())
        )
        assert status == 400
        assert "features" in json.loads(body)["error"]

    def test_unknown_route_is_404(self, server):
        status, body = _raw_exchange(server.url, _post_bytes("/nope", b"{}"))
        assert status == 404
        assert json.loads(body)["type"] == "NotFound"

    def test_unknown_model_is_404(self, server):
        status, body = _raw_exchange(
            server.url, _post_bytes("/predict/ghost", json.dumps({"rows": [[0.0]]}).encode())
        )
        assert status == 404
        assert "no model route 'ghost'" in json.loads(body)["error"]

    def test_oversized_body_is_400(self, server):
        declared = MAX_BODY_BYTES + 1
        request = (
            f"POST /predict HTTP/1.1\r\nHost: t\r\nContent-Length: {declared}\r\n\r\n"
        ).encode("latin-1")
        status, body = _raw_exchange(server.url, request)
        assert status == 400
        payload = json.loads(body)
        assert payload["error"] == f"request body too large ({declared} bytes > {MAX_BODY_BYTES})"

    def test_mid_request_disconnect_leaves_server_healthy(self, server, scream_data):
        request = _post_bytes("/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode())
        host, _, port = server.url.split("//", 1)[-1].partition(":")
        for _ in range(3):
            sock = socket.create_connection((host, int(port)), timeout=5.0)
            sock.sendall(request[: len(request) // 2])
            sock.close()  # client gave up mid-send
        status, body = _raw_exchange(server.url, request)
        assert status == 200 and "labels" in json.loads(body)


class TestOverloadContract:
    def test_shed_503_and_timeout_504(self, transport, served_scream_registry, scream_data):
        """A wedged model: queued requests 504, overflow requests 503."""
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=1, max_delay=0.0, queue_bound=1, request_timeout=0.4),
        )
        gate = threading.Event()
        entered = threading.Event()
        original = service.bundle.automl.predict_batch

        def wedged(X):
            entered.set()
            gate.wait(15.0)
            return original(X)

        service.bundle.automl.predict_batch = wedged
        server = _start_server(transport, service)
        request = _post_bytes("/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode())
        results: dict[str, tuple[int, bytes]] = {}

        def fire(tag):
            results[tag] = _raw_exchange(server.url, request, timeout=10.0)

        try:
            thread_a = threading.Thread(target=fire, args=("a",))
            thread_a.start()
            assert entered.wait(5.0)  # the batcher now holds A
            thread_b = threading.Thread(target=fire, args=("b",))
            thread_b.start()
            for _ in range(500):  # wait until B occupies the queue slot
                if service.engine._queue.qsize() >= 1:
                    break
                threading.Event().wait(0.005)
            assert service.engine._queue.qsize() >= 1
            status_c, body_c = _raw_exchange(server.url, request, timeout=10.0)
            assert status_c == 503
            assert json.loads(body_c)["type"] == "BackpressureError"
            thread_a.join(10.0)
            thread_b.join(10.0)
            for tag in ("a", "b"):
                status, body = results[tag]
                assert status == 504, f"request {tag}: expected 504, got {status}"
                payload = json.loads(body)
                assert payload["type"] == "RequestTimeoutError"
                assert "no reply within 0.400s" in payload["error"]
            counters = service.metrics_registry.snapshot()["counters"]
            assert counters["shed"] == 1
            assert counters["timeouts"] == 2
        finally:
            gate.set()
            service.bundle.automl.predict_batch = original
            server.close()


class TestTransportEquivalence:
    def test_seeded_workload_served_bitwise_identically(
        self, served_scream_registry, scream_data
    ):
        """Same requests, two transports → byte-identical (status, body) pairs."""
        config = ServeConfig(max_batch=16, max_delay=0.005)
        rng = check_random_state(42)
        starts = rng.integers(0, scream_data.X.shape[0] - 2, size=30)
        requests = [scream_data.X[start : start + 2].tolist() for start in starts]

        def serve_all(start_server):
            service = ServeService.from_registry(
                "scream", directory=served_scream_registry.directory, config=config
            )
            server = start_server(service)
            target = HttpTarget(server.url)
            try:
                replies = [
                    target.exchange(rows, timeout=5.0, plan={}) for rows in requests
                ]
            finally:
                server.close()
            return replies, service.metrics_registry.snapshot()["counters"]

        threaded_replies, threaded_counters = serve_all(serve_http)
        async_replies, async_counters = serve_all(serve_async_http)

        assert threaded_replies == async_replies  # statuses AND bodies, bitwise
        assert all(status == 200 for status, _ in threaded_replies)
        # The two services saw identical traffic and account for it identically.
        for key in ("requests", "points", "shed", "timeouts", "errors"):
            assert threaded_counters[key] == async_counters[key], key
        assert threaded_counters["requests"] == len(requests)
        assert threaded_counters["points"] == 2 * len(requests)


class TestShutdownDrains:
    def test_threaded_close_answers_inflight_requests(
        self, served_scream_registry, scream_data
    ):
        """Regression: close() used to kill the engine under queued requests."""
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=1, max_delay=0.0, request_timeout=10.0),
        )
        gate = threading.Event()
        entered = threading.Event()
        original = service.bundle.automl.predict_batch

        def gated(X):
            entered.set()
            gate.wait(15.0)
            return original(X)

        service.bundle.automl.predict_batch = gated
        server = serve_http(service)
        request = _post_bytes("/predict", json.dumps({"rows": scream_data.X[:1].tolist()}).encode())
        result: dict[str, tuple[int, bytes]] = {}

        def fire():
            result["r"] = _raw_exchange(server.url, request, timeout=15.0)

        client = threading.Thread(target=fire)
        try:
            client.start()
            assert entered.wait(5.0)  # request is inside the engine
            closer = threading.Thread(target=server.close, kwargs={"drain_timeout": 10.0})
            closer.start()
            threading.Event().wait(0.2)  # close() is now draining
            gate.set()
            client.join(10.0)
            closer.join(10.0)
            assert not client.is_alive() and not closer.is_alive()
            status, body = result["r"]
            assert status == 200  # a real reply, not an abandoned future
            assert "labels" in json.loads(body)
        finally:
            gate.set()
            service.bundle.automl.predict_batch = original

    def test_engine_close_fails_stranded_requests_fast(
        self, served_scream_registry, scream_data
    ):
        """A request enqueued behind the shutdown sentinel gets a typed error.

        The race this drains: a submit that passed the closed-check
        before ``close()`` set it can enqueue *after* the sentinel; the
        batcher has already exited, so nothing will ever batch it.  The
        pre-PR-9 engine abandoned such requests (their waiters hung
        until timeout); now ``close()`` drains the queue and fails them
        with :class:`ServeError`, completion callbacks included.
        """
        bundle = served_scream_registry.load("scream")
        engine = InferenceEngine(bundle, ServeConfig(max_batch=1, max_delay=0.0))
        gate = threading.Event()
        entered = threading.Event()
        original = bundle.automl.predict_batch

        def gated(X):
            entered.set()
            gate.wait(15.0)
            return original(X)

        engine.bundle.automl.predict_batch = gated
        delivered = []
        try:
            first = engine.submit(scream_data.X[:1])
            assert entered.wait(5.0)  # the batcher is wedged inside the gate
            closer = threading.Thread(target=engine.close)
            closer.start()
            for _ in range(500):  # close() has posted the shutdown sentinel
                if engine._closed.is_set() and engine._queue.qsize() >= 1:
                    break
                threading.Event().wait(0.005)
            assert engine._queue.qsize() >= 1
            # The racing submit: enqueued after the sentinel, never batchable.
            stranded = _PendingRequest(
                np.atleast_2d(scream_data.X[:1]), Stopwatch(), on_complete=delivered.append
            )
            with engine._inflight_cond:
                engine._inflight += 1
            engine._queue.put_nowait(stranded)
            errors_before = engine.metrics.counter("errors").value
            gate.set()  # batcher finishes its batch, sees the sentinel, exits
            closer.join(10.0)
            assert not closer.is_alive()
            assert first.event.is_set() and first.error is None  # queued work completed
            assert stranded.event.is_set(), "stranded request was abandoned"
            assert isinstance(stranded.error, ServeError)
            assert "closed before" in str(stranded.error)
            assert delivered == [stranded]  # the completion callback fired too
            assert engine.metrics.counter("errors").value == errors_before + 1
            assert engine.quiesce(2.0), "inflight accounting leaked"
        finally:
            gate.set()
            engine.bundle.automl.predict_batch = original
            engine.close()
