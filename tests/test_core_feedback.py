"""Tests for the feedback algorithm (the paper's §3)."""

import numpy as np
import pytest

from repro.core.feedback import (
    AleFeedback,
    cross_ale_committee,
    median_threshold,
    within_ale_committee,
)
from repro.core.subspace import FeatureDomain, Interval, IntervalUnion
from repro.exceptions import ValidationError
from repro.ml.linear import softmax


class _StepModel:
    """sigmoid(k * (x0 - threshold)): disagreement controlled via threshold."""

    def __init__(self, threshold, k=8.0):
        self.threshold = threshold
        self.k = k

    def predict_proba(self, X):
        X = np.asarray(X)
        logits = self.k * (X[:, 0] - self.threshold)
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


@pytest.fixture
def domains():
    return [FeatureDomain("x0", 0.0, 10.0), FeatureDomain("x1", 0.0, 10.0)]


@pytest.fixture
def data():
    return np.random.default_rng(0).uniform(0, 10, size=(600, 2))


class TestAnalyze:
    def test_disagreement_localized_where_models_differ(self, domains, data):
        # Committee members put their decision step at 4 vs 6: the ALE
        # curves differ exactly between the two thresholds.
        committee = [_StepModel(4.0), _StepModel(6.0)]
        report = AleFeedback(grid_size=20).analyze(committee, data, domains)
        profile = report.profiles[0]
        peak_location = profile.grid[np.argmax(profile.std_curve)]
        assert 3.0 <= peak_location <= 7.0
        # Feature 1 is ignored by both models: its disagreement is ~zero.
        assert report.profiles[1].max_std < 1e-9

    def test_agreeing_committee_yields_no_region_at_fixed_threshold(self, domains, data):
        committee = [_StepModel(5.0), _StepModel(5.0)]
        report = AleFeedback(threshold=0.01, grid_size=16).analyze(committee, data, domains)
        assert not report.region
        assert report.flagged_features == []

    def test_median_heuristic_used_when_no_threshold(self, domains, data):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        report = AleFeedback(grid_size=16).analyze(committee, data, domains)
        assert report.threshold == pytest.approx(median_threshold(report.profiles))

    def test_explicit_threshold_respected(self, domains, data):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        report = AleFeedback(threshold=0.123, grid_size=16).analyze(committee, data, domains)
        assert report.threshold == 0.123

    def test_committee_of_one_rejected(self, domains, data):
        with pytest.raises(ValidationError, match=">= 2"):
            AleFeedback().analyze([_StepModel(5.0)], data, domains)

    def test_domain_count_mismatch(self, data):
        with pytest.raises(ValidationError):
            AleFeedback().analyze([_StepModel(4), _StepModel(6)], data, [FeatureDomain("x", 0, 1)])

    def test_class_aggregation_modes(self, domains, data):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        max_report = AleFeedback(grid_size=12, class_aggregation="max").analyze(committee, data, domains)
        mean_report = AleFeedback(grid_size=12, class_aggregation="mean").analyze(committee, data, domains)
        assert np.all(max_report.profiles[0].std_curve >= mean_report.profiles[0].std_curve - 1e-12)

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            AleFeedback(threshold=-1.0)
        with pytest.raises(ValidationError):
            AleFeedback(class_aggregation="median")


class TestHighVarianceIntervals:
    def test_contiguous_bins_merge(self, domains, data):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        report = AleFeedback(grid_size=20).analyze(committee, data, domains)
        profile = report.profiles[0]
        intervals = profile.high_variance_intervals(profile.max_std * 0.5)
        assert len(intervals) >= 1
        for interval in intervals:
            assert interval.low >= profile.edges[0] - 1e-9
            assert interval.high <= profile.edges[-1] + 1e-9

    def test_threshold_above_max_yields_empty(self, domains, data):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        report = AleFeedback(grid_size=12).analyze(committee, data, domains)
        profile = report.profiles[0]
        assert not profile.high_variance_intervals(profile.max_std + 1.0)

    def test_paper_style_disjoint_union(self):
        """Reconstruct the paper's `x <= 45 ∪ x >= 99` example shape."""
        from repro.core.feedback import FeatureDisagreement

        edges = np.linspace(0, 120, 13)  # bins of width 10
        std = np.zeros(12)
        std[:5] = 0.5   # bins covering [0, 50]
        std[10:] = 0.5  # bins covering [100, 120]
        profile = FeatureDisagreement(
            domain=FeatureDomain("link_rate", 0, 120),
            feature_index=0,
            edges=edges,
            mean_curve=np.zeros((12, 2)),
            std_by_class=np.tile(std[:, None], (1, 2)),
            std_curve=std,
            counts=np.ones(12, dtype=int),
        )
        intervals = profile.high_variance_intervals(0.1)
        assert intervals == IntervalUnion([Interval(0, 50), Interval(100, 120)])


class TestReportActions:
    def _report(self, domains, data, threshold=None):
        committee = [_StepModel(4.0), _StepModel(6.0)]
        return AleFeedback(threshold=threshold, grid_size=16).analyze(committee, data, domains)

    def test_suggest_points_inside_region(self, domains, data):
        report = self._report(domains, data)
        points = report.suggest(40, random_state=0)
        assert points.shape == (40, 2)
        assert report.region.contains(points).all()

    def test_suggest_without_region_raises(self, domains, data):
        committee = [_StepModel(5.0), _StepModel(5.0)]
        report = AleFeedback(threshold=1.0, grid_size=8).analyze(committee, data, domains)
        with pytest.raises(ValidationError, match="threshold"):
            report.suggest(5)

    def test_filter_pool_indices_inside(self, domains, data):
        report = self._report(domains, data)
        pool = np.random.default_rng(1).uniform(0, 10, size=(300, 2))
        picks = report.filter_pool(pool)
        assert report.region.contains(pool[picks]).all()
        outside = np.setdiff1d(np.arange(300), picks)
        if outside.size:
            assert not report.region.contains(pool[outside]).any()

    def test_filter_pool_max_points(self, domains, data):
        report = self._report(domains, data)
        pool = np.random.default_rng(2).uniform(0, 10, size=(300, 2))
        picks = report.filter_pool(pool, max_points=7, random_state=0)
        assert picks.size <= 7

    def test_restrict_to_drops_features(self, domains, data):
        report = self._report(domains, data)
        restricted = report.restrict_to(["x1"])
        # x1 had ~zero disagreement, so nothing remains flagged.
        assert all(p.domain.name == "x1" for p in restricted.profiles)

    def test_restrict_to_unknown_feature(self, domains, data):
        report = self._report(domains, data)
        with pytest.raises(ValidationError):
            report.restrict_to(["nope"])

    def test_intervals_for(self, domains, data):
        report = self._report(domains, data)
        intervals = report.intervals_for("x0")
        assert isinstance(intervals, IntervalUnion)
        with pytest.raises(ValidationError):
            report.intervals_for("bogus")

    def test_summary_mentions_flagged_feature(self, domains, data):
        report = self._report(domains, data)
        assert "x0" in report.summary()


class TestCommitteeBuilders:
    def test_within_committee_uses_members(self, fitted_automl):
        committee = within_ale_committee(fitted_automl)
        assert len(committee) == len(fitted_automl.ensemble_members_)

    def test_within_requires_ensemble(self):
        class NoEnsemble:
            pass

        with pytest.raises(ValidationError, match="ensemble"):
            within_ale_committee(NoEnsemble())

    def test_cross_committee_uses_run_ensembles(self, fitted_automl):
        committee = cross_ale_committee([fitted_automl, fitted_automl])
        assert len(committee) == 2
        assert committee[0] is fitted_automl.ensemble_

    def test_cross_needs_two_runs(self, fitted_automl):
        with pytest.raises(ValidationError):
            cross_ale_committee([fitted_automl])

    def test_cross_accepts_plain_models(self):
        committee = cross_ale_committee([_StepModel(4.0), _StepModel(6.0)])
        assert len(committee) == 2


class TestEndToEndWithAutoML:
    def test_feedback_from_real_ensemble(self, fitted_automl, scream_data):
        report = AleFeedback(grid_size=12).analyze(
            within_ale_committee(fitted_automl), scream_data.X, scream_data.domains
        )
        assert len(report.profiles) == scream_data.n_features
        assert report.committee_size >= 2
        if report.region:
            points = report.suggest(10, random_state=0)
            assert points.shape == (10, scream_data.n_features)
            # Integer domains stay integral in suggestions.
            flows = points[:, 3]
            assert np.all(flows == np.round(flows))
