"""Regression tests for the search time-budget contract.

Pins the semantics both search strategies now share (see
``repro.automl.search.budget_exhausted``):

- ``time_budget=None`` — the clock is never consulted; only the iteration
  budget limits the run;
- ``time_budget=0`` — zero search iterations: ``run`` raises
  :class:`SearchBudgetError` without evaluating anything;
- ``time_budget>0`` — at least one candidate is always evaluated, and the
  budget is metered across successive-halving rungs rather than per rung.
"""

import pytest

from repro.automl.halving import SuccessiveHalvingSearch
from repro.automl.search import RandomSearch, budget_exhausted
from repro.exceptions import SearchBudgetError


class TestBudgetExhausted:
    def test_none_never_exhausts(self):
        assert budget_exhausted(0.0, None, 0) is False
        assert budget_exhausted(0.0, None, 10**6) is False

    def test_zero_exhausts_before_first_evaluation(self):
        assert budget_exhausted(0.0, 0, 0) is True

    def test_positive_budget_admits_first_evaluation(self):
        # Even a microscopic budget lets one candidate through...
        assert budget_exhausted(0.0, 1e-12, 0) is False
        # ...but is exhausted right after it (start in the distant past).
        assert budget_exhausted(-1000.0, 1e-12, 1) is True


class TestRandomSearchBudget:
    def test_zero_budget_means_no_iterations(self, blobs_2class):
        X, y = blobs_2class
        search = RandomSearch(n_iterations=10, time_budget=0, random_state=0)
        with pytest.raises(SearchBudgetError, match="time_budget=0"):
            search.run(X, y)

    def test_none_budget_runs_all_iterations(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=5, time_budget=None, random_state=0).run(X, y)
        assert len(result.evaluated) + len(result.failures) == 5

    def test_tiny_budget_still_evaluates_one(self, blobs_2class):
        X, y = blobs_2class
        result = RandomSearch(n_iterations=50, time_budget=1e-9, random_state=0).run(X, y)
        assert len(result.evaluated) == 1

    def test_negative_budget_rejected_at_construction(self):
        with pytest.raises(SearchBudgetError):
            RandomSearch(time_budget=-0.5)


class TestHalvingBudget:
    def test_zero_budget_means_no_iterations(self, blobs_2class):
        X, y = blobs_2class
        search = SuccessiveHalvingSearch(n_candidates=6, time_budget=0, random_state=0)
        with pytest.raises(SearchBudgetError, match="time_budget=0"):
            search.run(X, y)

    def test_none_budget_completes_all_rungs(self, blobs_2class):
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(n_candidates=6, time_budget=None, random_state=0).run(X, y)
        assert len(result.evaluated) >= 1

    def test_tiny_budget_does_not_leak_per_rung_evaluations(self, blobs_2class):
        """The old guard reset per rung, granting every rung a free fit.

        With the budget metered across rungs, a budget exhausted after the
        first evaluation must end the whole search — not one eval per rung.
        """
        X, y = blobs_2class
        result = SuccessiveHalvingSearch(
            n_candidates=8, eta=2, min_resource_fraction=0.1, time_budget=1e-9, random_state=0
        ).run(X, y)
        assert len(result.evaluated) == 1

    def test_negative_budget_rejected_at_construction(self):
        with pytest.raises(SearchBudgetError):
            SuccessiveHalvingSearch(time_budget=-1.0)
