"""Tests for dataset generation and the split protocol."""

import numpy as np
import pytest

from repro.datasets import (
    FIREWALL_ACTIONS,
    FIREWALL_FEATURES,
    LabeledDataset,
    ScreamOracle,
    firewall_domains,
    generate_firewall_dataset,
    generate_scream_dataset,
    make_test_sets,
    split_train_test_pool,
)
from repro.exceptions import ValidationError


class TestLabeledDataset:
    def _dataset(self):
        return LabeledDataset(
            X=np.arange(12.0).reshape(6, 2),
            y=np.array([0, 1, 0, 1, 0, 1]),
            feature_names=["a", "b"],
            domains=[],
        )

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            LabeledDataset(X=np.zeros((3, 2)), y=np.zeros(4), feature_names=["a", "b"], domains=[])
        with pytest.raises(ValidationError):
            LabeledDataset(X=np.zeros((3, 2)), y=np.zeros(3), feature_names=["a"], domains=[])

    def test_subset(self):
        subset = self._dataset().subset([0, 2])
        assert subset.n_samples == 2
        assert subset.X[1, 0] == 4.0

    def test_extended_appends(self):
        dataset = self._dataset()
        extended = dataset.extended(np.array([[100.0, 101.0]]), np.array([1]))
        assert extended.n_samples == 7
        assert extended.y[-1] == 1
        assert dataset.n_samples == 6  # original untouched

    def test_class_balance(self):
        assert self._dataset().class_balance() == {0: 3, 1: 3}


class TestScreamDataset:
    def test_shapes_and_labels(self, scream_data):
        assert scream_data.n_features == 4
        assert scream_data.feature_names == ["bandwidth_mbps", "rtt_ms", "loss_rate", "n_flows"]
        assert set(np.unique(scream_data.y)) <= {0, 1}

    def test_both_classes_present(self, scream_data):
        balance = scream_data.class_balance()
        assert len(balance) == 2

    def test_label_imbalance_matches_paper_story(self, scream_data):
        # The paper's dataset 1 is imbalanced (upsampling helps): scream
        # wins a meaningful minority of the time.
        positive = scream_data.class_balance()[1] / scream_data.n_samples
        assert 0.10 <= positive <= 0.55

    def test_reproducible(self):
        a = generate_scream_dataset(30, random_state=9)
        b = generate_scream_dataset(30, random_state=9)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.y, b.y)

    def test_biased_sampling_shifts_features(self):
        biased = generate_scream_dataset(80, biased=True, random_state=10)
        uniform = generate_scream_dataset(80, biased=False, random_state=10)
        assert biased.X[:, 2].mean() < uniform.X[:, 2].mean()

    def test_invalid_sizes(self):
        with pytest.raises(ValidationError):
            generate_scream_dataset(0)


class TestScreamOracle:
    def test_label_matches_best_protocol(self):
        oracle = ScreamOracle(random_state=0)
        features = [50.0, 50.0, 0.015, 2.0]  # lossy: scream should win
        scores = oracle.score_all_protocols(features)
        finite = {p: s for p, s in scores.items() if s < float("inf")}
        label = oracle.label_one(features)
        expected = 1 if finite and min(finite, key=finite.get) == "scream" else 0
        # label_one re-seeds internally, so compare logic not exact seeds:
        assert label in (0, 1)
        assert set(scores) == {"bbr", "cubic", "reno", "scream", "vegas"}
        assert expected in (0, 1)

    def test_vectorized_label(self):
        oracle = ScreamOracle(random_state=1)
        X = np.array([[20.0, 40.0, 0.0, 2.0], [10.0, 80.0, 0.018, 1.0]])
        labels = oracle.label(X)
        assert labels.shape == (2,)
        assert oracle.queries == 2

    def test_invalid_engine(self):
        with pytest.raises(ValidationError):
            ScreamOracle(engine="quantum")

    def test_packet_engine_usable(self):
        oracle = ScreamOracle(engine="packet", random_state=2)
        label = oracle.label_one([20.0, 40.0, 0.0, 1.0])
        assert label in (0, 1)


class TestFirewallDataset:
    def test_schema(self, firewall_data):
        assert firewall_data.feature_names == FIREWALL_FEATURES
        assert firewall_data.n_features == 11
        assert set(np.unique(firewall_data.y)) <= set(FIREWALL_ACTIONS)

    def test_four_classes_with_rare_reset(self, firewall_data):
        balance = firewall_data.class_balance()
        assert len(balance) == 4
        assert balance["allow"] == max(balance.values())
        assert balance["reset-both"] == min(balance.values())

    def test_ports_in_domain(self, firewall_data):
        for column in range(4):
            values = firewall_data.X[:, column]
            assert values.min() >= 0 and values.max() <= 65535
            assert np.all(values == np.round(values))

    def test_counters_consistent(self, firewall_data):
        names = firewall_data.feature_names
        bytes_total = firewall_data.X[:, names.index("bytes")]
        bytes_sent = firewall_data.X[:, names.index("bytes_sent")]
        bytes_received = firewall_data.X[:, names.index("bytes_received")]
        assert np.allclose(bytes_total, bytes_sent + bytes_received)

    def test_low_src_ports_concentrated_in_attack_traffic(self, firewall_data):
        names = firewall_data.feature_names
        src = firewall_data.X[:, names.index("src_port")]
        low = src < 1024
        # Benign traffic uses ephemeral ports, so low source ports should
        # be mostly non-allow (scan/flood) records.
        allow_fraction_low = np.mean(firewall_data.y[low] == "allow")
        assert allow_fraction_low < 0.2

    def test_dst_443_445_has_mixed_actions(self, firewall_data):
        names = firewall_data.feature_names
        dst = firewall_data.X[:, names.index("dst_port")]
        flood_zone = (dst >= 443) & (dst <= 445) & (firewall_data.X[:, names.index("nat_dst_port")] == 0)
        actions = set(firewall_data.y[flood_zone])
        assert len(actions) >= 3  # the ambiguity §4.2's story needs

    def test_domains_cover_data(self, firewall_data):
        for domain, column in zip(firewall_domains(), firewall_data.X.T):
            assert column.min() >= domain.low - 1e-9
            assert column.max() <= domain.high + 1e-9

    def test_label_noise_bounds(self):
        with pytest.raises(ValidationError):
            generate_firewall_dataset(100, label_noise=0.7)
        with pytest.raises(ValidationError):
            generate_firewall_dataset(5)

    def test_zero_noise_supported(self):
        dataset = generate_firewall_dataset(200, label_noise=0.0, random_state=0)
        assert dataset.n_samples == 200


class TestSplits:
    def test_fractions(self, firewall_data):
        bundle = split_train_test_pool(firewall_data, random_state=0)
        n = firewall_data.n_samples
        assert bundle.train.n_samples == pytest.approx(0.4 * n, abs=2)
        assert sum(t.n_samples for t in bundle.test_sets) == pytest.approx(0.2 * n, abs=2)
        assert bundle.pool.n_samples == pytest.approx(0.4 * n, abs=2)

    def test_twenty_test_sets_default(self, firewall_data):
        bundle = split_train_test_pool(firewall_data, random_state=0)
        assert bundle.n_test_sets == 20

    def test_no_row_shared_between_parts(self, firewall_data):
        bundle = split_train_test_pool(firewall_data, random_state=1)
        # Use the feature rows as identity (generator rows are unique with
        # overwhelming probability given continuous counters).
        train_rows = {tuple(row) for row in bundle.train.X}
        pool_rows = {tuple(row) for row in bundle.pool.X}
        test_rows = {tuple(row) for t in bundle.test_sets for row in t.X}
        assert not (train_rows & pool_rows)
        assert not (train_rows & test_rows)
        assert not (pool_rows & test_rows)

    def test_make_test_sets_partition(self, scream_data):
        sets = make_test_sets(scream_data, 8, random_state=0)
        assert len(sets) == 8
        assert sum(s.n_samples for s in sets) == scream_data.n_samples

    def test_invalid_fractions(self, firewall_data):
        with pytest.raises(ValidationError):
            split_train_test_pool(firewall_data, train_fraction=0.8, test_fraction=0.3)

    def test_describe(self, firewall_data):
        bundle = split_train_test_pool(firewall_data, random_state=0)
        assert "train=" in bundle.describe()
