"""Focused tests for the individual Table-1 augmentation strategies."""

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.core.feedback import AleFeedback
from repro.datasets import ScreamOracle
from repro.exceptions import ValidationError
from repro.experiments.runner import AugmentationContext, STRATEGIES


@pytest.fixture
def ctx(scream_data, fitted_automl):
    train = scream_data.subset(np.arange(100))
    pool = scream_data.subset(np.arange(100, 160))
    oracle = ScreamOracle(random_state=0)
    return AugmentationContext(
        train=train,
        pool=pool,
        oracle=oracle.label,
        initial_automl=fitted_automl,
        automl_factory=lambda rng: AutoMLClassifier(
            n_iterations=5, ensemble_size=3, min_distinct_members=2, random_state=rng
        ),
        n_feedback=12,
        feedback=AleFeedback(grid_size=10),
        cross_runs=2,
        rng=np.random.default_rng(42),
    )


class TestOracleStrategies:
    def test_within_ale_adds_requested_points(self, ctx):
        result = STRATEGIES["within_ale"](ctx)
        assert result.points_added == 12
        assert result.train.n_samples == ctx.train.n_samples + 12
        assert "T=" in result.detail

    def test_within_ale_new_points_in_domain(self, ctx):
        result = STRATEGIES["within_ale"](ctx)
        added = result.train.X[ctx.train.n_samples :]
        for column, domain in zip(added.T, ctx.train.domains):
            assert column.min() >= domain.low - 1e-9
            assert column.max() <= domain.high + 1e-9

    def test_cross_ale_runs_extra_automl(self, ctx):
        result = STRATEGIES["cross_ale"](ctx)
        assert result.points_added == 12
        assert "2 runs" in result.detail

    def test_uniform_labels_via_oracle(self, ctx):
        result = STRATEGIES["uniform"](ctx)
        added_labels = result.train.y[ctx.train.n_samples :]
        assert set(np.unique(added_labels)) <= {0, 1}

    def test_threshold_scale_fallback_keeps_strategy_alive(self, ctx):
        # An absurdly scaled threshold flags nothing; the strategy must
        # fall back to the median heuristic rather than raising.
        ctx.feedback = AleFeedback(grid_size=10, threshold_scale=1e9)
        result = STRATEGIES["within_ale"](ctx)
        assert result.points_added == 12


class TestPoolStrategies:
    def test_confidence_takes_labels_from_pool(self, ctx):
        result = STRATEGIES["confidence"](ctx)
        assert result.points_added == 12
        added = result.train.X[ctx.train.n_samples :]
        pool_rows = {tuple(row) for row in ctx.pool.X}
        assert all(tuple(row) in pool_rows for row in added)

    def test_qbc_takes_labels_from_pool(self, ctx):
        result = STRATEGIES["qbc"](ctx)
        added = result.train.X[ctx.train.n_samples :]
        pool_rows = {tuple(row) for row in ctx.pool.X}
        assert all(tuple(row) in pool_rows for row in added)

    def test_within_ale_pool_capped_by_region_hits(self, ctx):
        result = STRATEGIES["within_ale_pool"](ctx)
        assert 0 <= result.points_added <= 12
        assert "pool points" in result.detail

    def test_pool_strategies_work_without_oracle(self, ctx):
        ctx.oracle = None
        for name in ("confidence", "qbc", "within_ale_pool", "cross_ale_pool", "upsampling", "no_feedback"):
            result = STRATEGIES[name](ctx)
            assert result.train.n_samples >= ctx.train.n_samples

    def test_oracle_strategies_fail_cleanly_without_oracle(self, ctx):
        ctx.oracle = None
        for name in ("within_ale", "cross_ale", "uniform"):
            with pytest.raises(ValidationError, match="oracle"):
                STRATEGIES[name](ctx)


class TestUpsampling:
    def test_balances_classes(self, ctx):
        result = STRATEGIES["upsampling"](ctx)
        labels, counts = np.unique(result.train.y, return_counts=True)
        assert counts.min() == counts.max()

    def test_no_feedback_untouched(self, ctx):
        result = STRATEGIES["no_feedback"](ctx)
        assert result.train is ctx.train
        assert result.points_added == 0
