"""Tests for the experiment harness (tiny budgets: correctness, not scale)."""

import json

import numpy as np
import pytest

from repro.core.feedback import AleFeedback
from repro.datasets import generate_firewall_dataset
from repro.exceptions import ValidationError
from repro.experiments import (
    STRATEGIES,
    ExperimentRecord,
    FigureConfig,
    Table1Config,
    UCLConfig,
    format_paper_table,
    run_figure1,
    run_figure2,
    run_strategy,
    run_table1,
    run_ucl,
    save_record,
    scores_to_csv,
    sweep_thresholds,
    sweep_to_csv,
)
from repro.experiments.runner import AugmentationContext
from repro.stats import AlgorithmScores, SignificanceTable

TINY_TABLE1 = Table1Config(
    n_train=100,
    n_test=150,
    n_pool=120,
    n_feedback=20,
    n_test_sets=6,
    n_repeats=1,
    cross_runs=2,
    automl_iterations=5,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=10,
    seed=99,
)

TINY_UCL = UCLConfig(
    n_samples=900,
    n_feedback=40,
    n_test_sets=6,
    n_resplits=1,
    cross_runs=2,
    automl_iterations=5,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=10,
    seed=98,
)


class TestStrategyRegistry:
    def test_all_table1_rows_registered(self):
        expected = {
            "no_feedback",
            "within_ale",
            "cross_ale",
            "uniform",
            "confidence",
            "qbc",
            "upsampling",
            "within_ale_pool",
            "cross_ale_pool",
        }
        assert expected <= set(STRATEGIES)


@pytest.fixture(scope="module")
def table1_outcome():
    return run_table1(TINY_TABLE1)


class TestTable1:
    def test_all_algorithms_scored(self, table1_outcome):
        table, _ = table1_outcome
        assert len(table.names()) == 9
        for name in table.names():
            scores = table.scores(name).scores
            assert scores.shape == (TINY_TABLE1.n_repeats * TINY_TABLE1.n_test_sets,)
            assert np.all((scores >= 0) & (scores <= 1))

    def test_paper_table_rendering(self, table1_outcome):
        table, record = table1_outcome
        text = record.tables["table1"]
        assert "P(no feedback, X)" in text
        assert "within_ale" in text
        assert "NA" in text  # self-comparisons

    def test_record_series_csv(self, table1_outcome):
        _, record = table1_outcome
        lines = record.series["scores"].strip().splitlines()
        assert lines[0] == "algorithm,index,balanced_accuracy"
        assert len(lines) == 1 + 9 * TINY_TABLE1.n_repeats * TINY_TABLE1.n_test_sets

    def test_subset_of_algorithms(self):
        table, _ = run_table1(TINY_TABLE1, algorithms=["no_feedback", "uniform"])
        assert table.names() == ["no_feedback", "uniform"]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValidationError):
            run_table1(TINY_TABLE1, algorithms=["alchemy"])

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            Table1Config(n_test=5, n_test_sets=20).validate()
        with pytest.raises(ValidationError):
            Table1Config(cross_runs=1).validate()


class TestUCL:
    def test_runs_and_reports(self):
        table, record = run_ucl(TINY_UCL, algorithms=["no_feedback", "within_ale_pool"])
        assert set(table.names()) == {"no_feedback", "within_ale_pool"}
        assert "ucl" in record.tables
        scores = table.scores("within_ale_pool").scores
        assert scores.shape == (TINY_UCL.n_resplits * TINY_UCL.n_test_sets,)

    def test_oracle_strategies_rejected_gracefully(self):
        # Strategies needing an oracle must fail with a clear error on the
        # firewall data (no oracle exists).
        with pytest.raises(ValidationError, match="oracle"):
            run_ucl(TINY_UCL, algorithms=["within_ale"])


class TestFigures:
    def test_figure1_artifact(self):
        config = FigureConfig(n_train=120, automl_iterations=5, ensemble_size=3, grid_size=10, seed=5)
        artifact = run_figure1(config)
        assert artifact.feature_name == "bandwidth_mbps"
        assert "grid,count" in artifact.csv
        assert "ALE of" in artifact.ascii_plot
        record = artifact.to_record()
        assert record.experiment_id == "figure1_link_rate_ale"

    def test_figure2_artifacts(self):
        config = FigureConfig(n_train=800, automl_iterations=5, ensemble_size=3, grid_size=10, seed=6)
        fig2a, fig2b = run_figure2(config)
        assert fig2a.feature_name == "src_port"
        assert fig2b.feature_name == "dst_port"
        assert fig2a.report is fig2b.report  # one committee, two views


class TestThresholdSweep:
    def test_monotone_region_shrinkage(self, fitted_automl, scream_data):
        rows = sweep_thresholds(
            fitted_automl.ensemble_members_,
            scream_data.X,
            scream_data.domains,
            multipliers=(0.5, 1.0, 2.0),
            grid_size=10,
        )
        volumes = [row.relative_volume for row in rows]
        # The paper's claim: lower thresholds -> larger subspaces.
        assert volumes[0] >= volumes[1] >= volumes[2]

    def test_pool_hits_counted(self, fitted_automl, scream_data):
        pool = scream_data.X[:50]
        rows = sweep_thresholds(
            fitted_automl.ensemble_members_,
            scream_data.X,
            scream_data.domains,
            multipliers=(1.0,),
            grid_size=10,
            pool_X=pool,
        )
        assert rows[0].pool_hits is not None
        assert 0 <= rows[0].pool_hits <= 50

    def test_csv_rendering(self, fitted_automl, scream_data):
        rows = sweep_thresholds(
            fitted_automl.ensemble_members_,
            scream_data.X,
            scream_data.domains,
            multipliers=(1.0, 2.0),
            grid_size=10,
        )
        csv_text = sweep_to_csv(rows)
        assert csv_text.startswith("multiplier,threshold")
        assert len(csv_text.strip().splitlines()) == 3

    def test_invalid_multipliers(self, fitted_automl, scream_data):
        with pytest.raises(ValidationError):
            sweep_thresholds(
                fitted_automl.ensemble_members_,
                scream_data.X,
                scream_data.domains,
                multipliers=(),
            )
        with pytest.raises(ValidationError):
            sweep_thresholds(
                fitted_automl.ensemble_members_,
                scream_data.X,
                scream_data.domains,
                multipliers=(-1.0,),
            )


class TestRecords:
    def test_json_roundtrip(self, tmp_path):
        record = ExperimentRecord(
            experiment_id="unit",
            metadata={"n": np.int64(5), "f": np.float64(0.5)},
            tables={"t": "text"},
            series={"s": "a,b\n1,2\n"},
        )
        path = save_record(record, tmp_path)
        loaded = json.loads(path.read_text())
        assert loaded["metadata"]["n"] == 5
        assert (tmp_path / "unit_s.csv").read_text() == "a,b\n1,2\n"

    def test_scores_to_csv(self):
        table = SignificanceTable([AlgorithmScores("a", np.array([0.5, 0.6]))])
        text = scores_to_csv(table)
        assert "a,0,0.500000" in text

    def test_unknown_strategy_in_runner(self, fitted_automl, scream_data):
        ctx = AugmentationContext(
            train=scream_data,
            pool=scream_data,
            oracle=None,
            initial_automl=fitted_automl,
            automl_factory=lambda rng: fitted_automl,
            n_feedback=5,
            feedback=AleFeedback(grid_size=8),
            cross_runs=2,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValidationError):
            run_strategy("teleport", ctx, [scream_data])
