"""Failure-injection tests: degraded components must fail loudly or heal.

The AutoML search tolerates individual candidate crashes (as AutoSklearn
does); everything else in the stack must raise a :class:`ReproError`
subclass with an actionable message rather than produce silent garbage.

``TestGridDegradation`` pins the sharded experiment grid's contract: one
poisoned (repeat, strategy) cell — a raise, a timeout, a corrupted cache
entry — degrades that cell's algorithm and is reported in the experiment
record, while every healthy cell's scores stay bitwise-untouched.  Only
when nothing survives does the failure propagate.
"""

import time

import numpy as np
import pytest

from repro.automl import AutoMLClassifier, ModelFamily, RandomSearch
from repro.automl.spaces import FloatRange, default_model_families
from repro.exceptions import ReproError, SearchBudgetError, ValidationError
from repro.experiments import Table1Config, run_table1
from repro.experiments.grid import CellFailure, GridResult
from repro.experiments.runner import STRATEGIES, AugmentationResult, strategy
from repro.experiments.tasks import GRID_CELL_TASK
from repro.ml import GaussianNB
from repro.runtime import ArtifactCache, SerialExecutor, TaskError, TaskRuntime


class _AlwaysCrashes:
    """An estimator whose fit always raises a library error."""

    def __init__(self, **kwargs):
        pass

    def fit(self, X, y):
        raise ValidationError("injected failure")

    def predict(self, X):
        raise ValidationError("unreachable")

    def predict_proba(self, X):
        raise ValidationError("unreachable")

    def get_params(self):
        return {}


def _crashing_family() -> ModelFamily:
    return ModelFamily("crasher", _AlwaysCrashes, {"x": FloatRange(0.0, 1.0)}, stochastic=False)


class TestSearchFailureTolerance:
    def test_search_survives_crashing_candidates(self, blobs_2class):
        X, y = blobs_2class
        families = default_model_families() + [_crashing_family()]
        result = RandomSearch(n_iterations=20, families=families, random_state=0).run(X, y)
        assert result.evaluated  # the healthy families produced results
        crash_failures = [c for c, message in result.failures if c.family == "crasher"]
        assert len(crash_failures) >= 1
        assert all("injected failure" in message for c, message in result.failures if c.family == "crasher")

    def test_search_with_only_crashing_family_raises(self, blobs_2class):
        X, y = blobs_2class
        with pytest.raises(SearchBudgetError, match="failed"):
            RandomSearch(n_iterations=5, families=[_crashing_family()], random_state=0).run(X, y)

    def test_automl_propagates_total_failure(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(n_iterations=3, families=[_crashing_family()], random_state=0)
        with pytest.raises(SearchBudgetError):
            automl.fit(X, y)

    def test_unexpected_exceptions_not_swallowed(self, blobs_2class):
        """Only ReproError is treated as a candidate failure; genuine bugs
        (e.g. TypeError) must escape the search loop."""

        class _Buggy(_AlwaysCrashes):
            def fit(self, X, y):
                raise TypeError("a real bug")

        family = ModelFamily("buggy", _Buggy, {"x": FloatRange(0.0, 1.0)}, stochastic=False)
        X, y = blobs_2class
        with pytest.raises(TypeError, match="a real bug"):
            RandomSearch(n_iterations=3, families=[family], random_state=0).run(X, y)


class TestDataFailures:
    def test_automl_rejects_nan_features(self):
        X = np.array([[1.0, np.nan], [2.0, 3.0], [1.5, 2.0], [0.5, 1.0]])
        y = np.array([0, 1, 0, 1])
        with pytest.raises(ValidationError, match="NaN"):
            AutoMLClassifier(n_iterations=2).fit(X, y)

    def test_automl_rejects_single_class(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        with pytest.raises(ReproError):
            AutoMLClassifier(n_iterations=2, random_state=0).fit(X, y)

    def test_model_rejects_wrong_width_at_predict(self, blobs_2class):
        X, y = blobs_2class
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            model.predict(np.zeros((3, 9)))


class TestEmulatorFailures:
    def test_divergent_scenario_guard(self):
        from repro.netsim import NetworkScenario, run_packet_scenario
        from repro.exceptions import EmulationError

        scenario = NetworkScenario(bandwidth_mbps=100.0, rtt_ms=5.0, loss_rate=0.0, n_flows=8)
        with pytest.raises(EmulationError, match="events"):
            run_packet_scenario(scenario, "cubic", duration=5.0, max_events=500, random_state=0)


# --------------------------------------------------------------------------
# Sharded-grid degradation
# --------------------------------------------------------------------------

TINY_GRID = Table1Config(
    n_train=60,
    n_test=80,
    n_pool=60,
    n_feedback=10,
    n_test_sets=4,
    n_repeats=1,
    cross_runs=2,
    automl_iterations=4,
    ensemble_size=3,
    min_distinct_members=2,
    grid_size=8,
)


#: Toggle for the ``test_flaky`` strategy: ``True`` poisons it.  Flipping
#: this between runs models "the bug got fixed" — the strategy *name*
#: (which cell cache keys hash) stays the same, only the behaviour heals.
_FLAKY_STATE = {"fail": True}


def _ensure_injection_strategies() -> None:
    """Register the poisoned strategies once per process.

    Cell seed paths hash the strategy *name* (``strategy_key``), so adding
    these to the registry cannot move any real strategy's random stream —
    ``test_clean_cells_unaffected_by_poisoned_neighbor`` pins exactly that.
    """
    if "test_boom" not in STRATEGIES:

        @strategy("test_boom")
        def _boom(ctx) -> AugmentationResult:
            raise RuntimeError("injected cell failure")

    if "test_sleep" not in STRATEGIES:

        @strategy("test_sleep")
        def _sleep(ctx) -> AugmentationResult:
            time.sleep(8.0)
            return AugmentationResult(train=ctx.train, points_added=0)

    if "test_flaky" not in STRATEGIES:

        @strategy("test_flaky")
        def _flaky(ctx) -> AugmentationResult:
            if _FLAKY_STATE["fail"]:
                raise RuntimeError("injected transient failure")
            return AugmentationResult(train=ctx.train, points_added=0)


class TestGridDegradation:
    @pytest.fixture(scope="class")
    def poisoned_run(self):
        _ensure_injection_strategies()
        return run_table1(
            TINY_GRID,
            algorithms=["no_feedback", "test_boom", "within_ale_pool"],
            runtime=TaskRuntime(SerialExecutor()),
        )

    def test_poisoned_cell_drops_algorithm_not_run(self, poisoned_run):
        table, record = poisoned_run
        assert table.names() == ["no_feedback", "within_ale_pool"]
        grid = record.metadata["grid"]
        assert grid["dropped_algorithms"] == ["test_boom"]
        [failure] = grid["failed_cells"]
        assert failure["algorithm"] == "test_boom"
        assert failure["stage"] == "cell"
        assert "injected cell failure" in failure["error"]
        assert grid["failed_repeats"] == []

    def test_clean_cells_unaffected_by_poisoned_neighbor(self, poisoned_run):
        table, _ = poisoned_run
        clean_table, clean_record = run_table1(
            TINY_GRID,
            algorithms=["no_feedback", "within_ale_pool"],
            runtime=TaskRuntime(SerialExecutor()),
        )
        assert clean_record.metadata["grid"]["failed_cells"] == []
        for name in ("no_feedback", "within_ale_pool"):
            np.testing.assert_array_equal(table.scores(name).scores, clean_table.scores(name).scores)

    def test_every_cell_failing_raises(self):
        _ensure_injection_strategies()
        with pytest.raises(TaskError, match="injected cell failure"):
            run_table1(
                TINY_GRID,
                algorithms=["test_boom"],
                runtime=TaskRuntime(SerialExecutor()),
            )

    def test_corrupted_cache_entries_recompute_identically(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir))
        cold_table, _ = run_table1(
            TINY_GRID, algorithms=["no_feedback"], runtime=cold
        )
        entries = list(cache_dir.glob("*/*.pkl"))
        assert entries
        for entry in entries:
            entry.write_bytes(b"not a pickle")

        warm = TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir))
        warm_table, warm_record = run_table1(
            TINY_GRID, algorithms=["no_feedback"], runtime=warm
        )
        # Every poisoned entry is evicted and recomputed; results stay
        # bitwise-identical and nothing is silently degraded.
        assert warm.cache.corrupt_evictions == len(entries)
        assert warm.stats["executed"] == cold.stats["executed"] > 0
        assert warm_record.metadata["grid"]["failed_cells"] == []
        np.testing.assert_array_equal(
            cold_table.scores("no_feedback").scores, warm_table.scores("no_feedback").scores
        )

class TestGridResume:
    """A degraded run's partial cache resumes with only the failed cells."""

    def test_resume_reexecutes_only_failed_cells(self, tmp_path):
        _ensure_injection_strategies()
        algorithms = ["no_feedback", "test_flaky"]

        _FLAKY_STATE["fail"] = True
        try:
            first = TaskRuntime(SerialExecutor(), cache=ArtifactCache(tmp_path / "cache"))
            table, record = run_table1(TINY_GRID, algorithms=algorithms, runtime=first)
        finally:
            _FLAKY_STATE["fail"] = False

        grid = record.metadata["grid"]
        assert grid["dropped_algorithms"] == ["test_flaky"]
        assert grid["resumed_initial_fits"] == 0 and grid["resumed_cells"] == 0
        # The failed cell was never cached — that's what makes resume work.
        assert first.stats["failed"] == 1
        assert first.stats["cache_stores"] == first.stats["executed"]

        # "Fix the bug" (flag already flipped above) and rerun against the
        # same cache: only the previously-failed cell may execute.
        second = TaskRuntime(SerialExecutor(), cache=ArtifactCache(tmp_path / "cache"))
        resumed_table, resumed_record = run_table1(TINY_GRID, algorithms=algorithms, runtime=second)

        assert second.executions_of(GRID_CELL_TASK) == 1  # just the healed flaky cell
        assert second.stats["executed"] == 1
        assert second.stats["failed"] == 0
        resumed_grid = resumed_record.metadata["grid"]
        assert resumed_grid["failed_cells"] == [] and resumed_grid["dropped_algorithms"] == []
        assert resumed_grid["resumed_initial_fits"] == TINY_GRID.n_repeats == 1
        assert resumed_grid["resumed_cells"] == 1  # the healthy no_feedback cell replayed
        assert sorted(resumed_table.names()) == sorted(algorithms)
        # Replayed scores are the cached ones, bitwise.
        np.testing.assert_array_equal(
            table.scores("no_feedback").scores, resumed_table.scores("no_feedback").scores
        )

    def test_gridresult_metadata_reports_resume_counts(self):
        result = GridResult(
            collected={"a": [0.5]},
            n_cells=2,
            n_repeats=1,
            failures=[CellFailure(0, "b", "cell", "boom")],
            dropped_algorithms=["b"],
            resumed_initial_fits=1,
            resumed_cells=3,
        )
        meta = result.metadata()
        assert meta["resumed_initial_fits"] == 1
        assert meta["resumed_cells"] == 3
        assert meta["failed_cells"] == [
            {"repeat": 0, "algorithm": "b", "stage": "cell", "error": "boom"}
        ]


class TestGridTimeouts:
    @pytest.mark.slow
    def test_cell_timeout_degrades_gracefully(self):
        _ensure_injection_strategies()
        table, record = run_table1(
            TINY_GRID,
            algorithms=["no_feedback", "test_sleep"],
            # The eval-dataset task alone runs ~2.5s on a loaded 1-CPU
            # container, so the timeout needs real headroom above every
            # legitimate task while staying under the injected sleep.
            runtime=TaskRuntime(SerialExecutor(), timeout=5.0),
        )
        assert table.names() == ["no_feedback"]
        grid = record.metadata["grid"]
        assert grid["dropped_algorithms"] == ["test_sleep"]
        [failure] = grid["failed_cells"]
        assert failure["algorithm"] == "test_sleep"
        assert "timed out" in failure["error"]
