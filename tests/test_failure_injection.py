"""Failure-injection tests: degraded components must fail loudly or heal.

The AutoML search tolerates individual candidate crashes (as AutoSklearn
does); everything else in the stack must raise a :class:`ReproError`
subclass with an actionable message rather than produce silent garbage.
"""

import numpy as np
import pytest

from repro.automl import AutoMLClassifier, ModelFamily, RandomSearch
from repro.automl.spaces import FloatRange, default_model_families
from repro.exceptions import ReproError, SearchBudgetError, ValidationError
from repro.ml import GaussianNB


class _AlwaysCrashes:
    """An estimator whose fit always raises a library error."""

    def __init__(self, **kwargs):
        pass

    def fit(self, X, y):
        raise ValidationError("injected failure")

    def predict(self, X):
        raise ValidationError("unreachable")

    def predict_proba(self, X):
        raise ValidationError("unreachable")

    def get_params(self):
        return {}


def _crashing_family() -> ModelFamily:
    return ModelFamily("crasher", _AlwaysCrashes, {"x": FloatRange(0.0, 1.0)}, stochastic=False)


class TestSearchFailureTolerance:
    def test_search_survives_crashing_candidates(self, blobs_2class):
        X, y = blobs_2class
        families = default_model_families() + [_crashing_family()]
        result = RandomSearch(n_iterations=20, families=families, random_state=0).run(X, y)
        assert result.evaluated  # the healthy families produced results
        crash_failures = [c for c, message in result.failures if c.family == "crasher"]
        assert len(crash_failures) >= 1
        assert all("injected failure" in message for c, message in result.failures if c.family == "crasher")

    def test_search_with_only_crashing_family_raises(self, blobs_2class):
        X, y = blobs_2class
        with pytest.raises(SearchBudgetError, match="failed"):
            RandomSearch(n_iterations=5, families=[_crashing_family()], random_state=0).run(X, y)

    def test_automl_propagates_total_failure(self, blobs_2class):
        X, y = blobs_2class
        automl = AutoMLClassifier(n_iterations=3, families=[_crashing_family()], random_state=0)
        with pytest.raises(SearchBudgetError):
            automl.fit(X, y)

    def test_unexpected_exceptions_not_swallowed(self, blobs_2class):
        """Only ReproError is treated as a candidate failure; genuine bugs
        (e.g. TypeError) must escape the search loop."""

        class _Buggy(_AlwaysCrashes):
            def fit(self, X, y):
                raise TypeError("a real bug")

        family = ModelFamily("buggy", _Buggy, {"x": FloatRange(0.0, 1.0)}, stochastic=False)
        X, y = blobs_2class
        with pytest.raises(TypeError, match="a real bug"):
            RandomSearch(n_iterations=3, families=[family], random_state=0).run(X, y)


class TestDataFailures:
    def test_automl_rejects_nan_features(self):
        X = np.array([[1.0, np.nan], [2.0, 3.0], [1.5, 2.0], [0.5, 1.0]])
        y = np.array([0, 1, 0, 1])
        with pytest.raises(ValidationError, match="NaN"):
            AutoMLClassifier(n_iterations=2).fit(X, y)

    def test_automl_rejects_single_class(self):
        X = np.random.default_rng(0).normal(size=(20, 2))
        y = np.zeros(20, dtype=int)
        with pytest.raises(ReproError):
            AutoMLClassifier(n_iterations=2, random_state=0).fit(X, y)

    def test_model_rejects_wrong_width_at_predict(self, blobs_2class):
        X, y = blobs_2class
        model = GaussianNB().fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            model.predict(np.zeros((3, 9)))


class TestEmulatorFailures:
    def test_divergent_scenario_guard(self):
        from repro.netsim import NetworkScenario, run_packet_scenario
        from repro.exceptions import EmulationError

        scenario = NetworkScenario(bandwidth_mbps=100.0, rtt_ms=5.0, loss_rate=0.0, n_flows=8)
        with pytest.raises(EmulationError, match="events"):
            run_packet_scenario(scenario, "cubic", duration=5.0, max_events=500, random_state=0)
