"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_present(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("table1", "ucl", "figure1", "figure2", "sweep", "emulate", "store"):
            assert command in text

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_emulate_args(self):
        args = build_parser().parse_args(
            ["emulate", "--bandwidth", "5", "--rtt", "10", "--loss", "0.01", "--flows", "2",
             "--engine", "fluid", "--seed", "3"]
        )
        assert args.bandwidth == 5.0
        assert args.engine == "fluid"
        assert args.seed == 3

    def test_common_flags(self):
        args = build_parser().parse_args(["table1", "--seed", "9", "--paper-scale"])
        assert args.seed == 9 and args.paper_scale

    def test_resume_forces_cache_on(self, tmp_path):
        from repro.cli import _runtime_from_args

        args = build_parser().parse_args(
            ["table1", "--resume", "--cache-dir", str(tmp_path / "cache")]
        )
        assert args.resume and args.cache == "off"  # flag default untouched by argparse
        runtime = _runtime_from_args(args)
        assert runtime is not None
        assert runtime.cache is not None and runtime.cache_mode == "on"

    def test_resume_rejects_refresh(self, tmp_path):
        from repro.cli import _runtime_from_args

        args = build_parser().parse_args(
            ["table1", "--resume", "--cache", "refresh", "--cache-dir", str(tmp_path / "cache")]
        )
        with pytest.raises(SystemExit, match="refresh"):
            _runtime_from_args(args)


class TestExecution:
    def test_emulate_runs(self, capsys):
        code = main(
            ["emulate", "--bandwidth", "10", "--rtt", "30", "--engine", "fluid", "--seed", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scream" in out and "p95 delay" in out

    def test_emulate_packet_engine(self, capsys):
        code = main(
            ["emulate", "--bandwidth", "10", "--rtt", "30", "--engine", "packet", "--seed", "0"]
        )
        assert code == 0
        assert "vegas" in capsys.readouterr().out

    def test_invalid_engine_rejected(self):
        with pytest.raises(SystemExit):
            main(["emulate", "--engine", "carrier-pigeon"])


class TestLoadtest:
    def test_parser_defaults_and_choices(self):
        args = build_parser().parse_args(["loadtest"])
        assert args.name is None
        assert args.transport == "inproc" and args.shape == "open"
        args = build_parser().parse_args(
            ["loadtest", "scream", "--transport", "async", "--shape", "retry-storm"]
        )
        assert args.name == "scream" and args.transport == "async"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--shape", "sideways"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest", "--transport", "carrier-pigeon"])

    def test_inproc_run_reports_balanced_accounting(
        self, served_scream_registry, capsys
    ):
        import json

        code = main(
            [
                "loadtest",
                "scream",
                "--dir",
                str(served_scream_registry.directory),
                "--requests",
                "12",
                "--rate",
                "2000",
                "--clients",
                "2",
                "--seed",
                "5",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert report["offered"] == 12
        assert report["offered"] == (
            report["completed"] + report["shed"] + report["timed_out"] + report["failed"]
        )
        assert report["workload"]["name"] == "open_loop"
        assert "accounting identity holds" in captured.err


class TestStoreCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["store"])
        assert args.action == "serve"
        assert args.transport == "threaded" and args.port == 8751
        args = build_parser().parse_args(["store", "stat", "--url", "http://x:1"])
        assert args.action == "stat" and args.url == "http://x:1"

    def test_stat_reports_a_local_directory(self, tmp_path, capsys):
        import hashlib
        import json

        from repro.runtime import ArtifactCache

        ArtifactCache(tmp_path).store(hashlib.sha256(b"k").hexdigest(), {"v": 1})
        assert main(["store", "stat", "--dir", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1 and payload["directory"] == str(tmp_path)

    def test_stat_queries_a_running_server(self, tmp_path, capsys):
        import json

        from repro.store import StoreService, serve_store_http

        server = serve_store_http(StoreService(tmp_path))
        try:
            assert main(["store", "stat", "--url", server.url]) == 0
        finally:
            server.close()
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 0 and "metrics" in payload

    def test_store_flag_forces_cache_on_and_wires_the_tier(self, tmp_path):
        from repro.cli import _runtime_from_args
        from repro.store import RemoteCacheTier

        args = build_parser().parse_args(
            ["table1", "--store", "http://127.0.0.1:1", "--cache-dir", str(tmp_path / "cache")]
        )
        assert args.cache == "off"  # flag default untouched by argparse
        runtime = _runtime_from_args(args)
        assert isinstance(runtime.cache, RemoteCacheTier)
        assert runtime.cache_mode == "on"
        runtime.cache.close()
