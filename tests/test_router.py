"""Tests for repro.serve.router — multi-model routing and canary splits.

Covers the three promises the router makes:

1. **Deterministic canary selection** — the error-accumulator split is a
   pure function of request order and weight (no serving-path
   randomness), so a weight-0.25 canary serves exactly every 4th
   request, replayed identically.
2. **Manifest round-trip** — ``ModelRegistry.set_canary`` persists the
   split, survives a fresh registry instance, and
   ``ModelRouter.from_registry`` turns it into a live weighted route.
3. **Dispatcher contract** — route parsing, payload validation, and the
   typed-error → status mapping that both transports share.
"""

from types import SimpleNamespace

import pytest

from repro.exceptions import (
    BackpressureError,
    RegistryError,
    RequestTimeoutError,
    ServeError,
    ValidationError,
)
from repro.serve import ModelRegistry, ModelRouter, RequestDispatcher, ServeConfig, ServeService
from repro.serve.router import RouteNotFound


def _stub_service(version=1, name="m"):
    """Just enough surface for routing tests: no engine, no model."""
    return SimpleNamespace(
        version=version,
        bundle=SimpleNamespace(name=name),
        healthz=lambda: {"status": "ok", "version": version},
        metrics=lambda: {"counters": {"requests": 0}},
    )


@pytest.fixture(scope="module")
def canary_registry(tmp_path_factory, fitted_automl, scream_data):
    """A registry with two versions of ``m`` (v2 promoted)."""
    registry = ModelRegistry(tmp_path_factory.mktemp("canary-registry"))
    registry.register("m", fitted_automl, scream_data.X, scream_data.domains)
    registry.register("m", fitted_automl, scream_data.X, scream_data.domains)
    assert registry.promoted_version("m") == 2
    return registry


class TestRouterPick:
    def test_no_canary_always_primary(self):
        primary = _stub_service()
        router = ModelRouter({"m": primary})
        assert all(router.pick("m") is primary for _ in range(10))

    def test_quarter_weight_canary_serves_every_fourth(self):
        primary, canary = _stub_service(1), _stub_service(2)
        router = ModelRouter({"m": primary})
        router.set_canary("m", canary, 0.25)
        picks = [router.pick("m") for _ in range(8)]
        # Accumulator fires on overflow: requests 4 and 8 hit the canary.
        assert picks == [primary, primary, primary, canary] * 2

    def test_split_is_replay_identical(self):
        def sequence():
            primary, canary = _stub_service(1), _stub_service(2)
            router = ModelRouter({"m": primary})
            router.set_canary("m", canary, 0.3)
            return ["c" if router.pick("m") is canary else "p" for _ in range(50)]

        first = sequence()
        assert first == sequence()
        assert first.count("c") == 15  # 0.3 * 50, exactly

    def test_weight_bounds_validated(self):
        router = ModelRouter({"m": _stub_service()})
        for weight in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValidationError, match="canary weight"):
                router.set_canary("m", _stub_service(2), weight)

    def test_clear_canary_returns_detached_service(self):
        primary, canary = _stub_service(1), _stub_service(2)
        router = ModelRouter({"m": primary})
        router.set_canary("m", canary, 0.5)
        assert router.clear_canary("m") is canary
        assert all(router.pick("m") is primary for _ in range(4))
        assert router.clear_canary("m") is None  # idempotent

    def test_bare_predict_ambiguous_with_many_models(self):
        router = ModelRouter({"a": _stub_service(name="a"), "b": _stub_service(name="b")})
        with pytest.raises(RouteNotFound, match="ambiguous"):
            router.pick(None)
        with pytest.raises(RouteNotFound, match="no model route 'nope'"):
            router.pick("nope")
        # A single-model router keeps the PR-5 bare-path behaviour.
        single = ModelRouter({"a": _stub_service(name="a")})
        assert single.pick(None) is single.primary("a")

    def test_needs_at_least_one_service(self):
        with pytest.raises(ValidationError, match="at least one"):
            ModelRouter({})

    def test_names_and_views(self):
        router = ModelRouter({"b": _stub_service(name="b"), "a": _stub_service(name="a")})
        assert router.names() == ["a", "b"]
        router.set_canary("a", _stub_service(7), 0.1)
        health = router.healthz()
        assert health["status"] == "ok"
        assert health["models"]["a"]["canary"] == {"version": 7, "weight": 0.1}
        assert "canary" not in health["models"]["b"]
        metrics = router.metrics()
        assert metrics["models"]["a"]["canary_weight"] == 0.1
        assert metrics["models"]["a"]["canary_version"] == 7
        assert set(metrics["models"]["b"]) == {"primary"}


class TestRegistryCanaryManifest:
    def test_round_trip_and_persistence(self, canary_registry):
        canary_registry.set_canary("m", 1, 0.2)
        assert canary_registry.canary("m") == {"version": 1, "weight": 0.2}
        # A fresh instance reads the same manifest off disk.
        fresh = ModelRegistry(canary_registry.directory)
        assert fresh.canary("m") == {"version": 1, "weight": 0.2}
        fresh.clear_canary("m")
        assert fresh.canary("m") is None
        assert ModelRegistry(canary_registry.directory).canary("m") is None

    def test_validation(self, canary_registry):
        with pytest.raises(ValidationError, match="weight"):
            canary_registry.set_canary("m", 1, 1.5)
        with pytest.raises(RegistryError):
            canary_registry.set_canary("m", 99, 0.2)
        with pytest.raises(RegistryError):
            canary_registry.set_canary("ghost", 1, 0.2)


class TestRouterFromRegistry:
    def test_manifest_split_becomes_live_canary(self, canary_registry):
        canary_registry.set_canary("m", 1, 0.5)
        try:
            router = ModelRouter.from_registry(
                directory=canary_registry.directory,
                config=ServeConfig(max_batch=8, max_delay=0.0),
            )
            try:
                assert router.names() == ["m"]
                assert router.primary("m").version == 2
                picks = [router.pick("m").version for _ in range(4)]
                assert picks == [2, 1, 2, 1]  # weight 0.5: every 2nd request
                assert router.healthz()["models"]["m"]["canary"]["version"] == 1
            finally:
                router.close()
        finally:
            canary_registry.clear_canary("m")

    def test_no_split_means_primary_only(self, canary_registry):
        router = ModelRouter.from_registry(
            ["m"],
            directory=canary_registry.directory,
            config=ServeConfig(max_batch=8, max_delay=0.0),
        )
        with router:
            assert {router.pick("m").version for _ in range(5)} == {2}
            assert "canary" not in router.healthz()["models"]["m"]

    def test_canary_predictions_flow(self, canary_registry, scream_data, fitted_automl):
        """End to end: the canary service really answers its share."""
        canary_registry.set_canary("m", 1, 0.5)
        try:
            with ModelRouter.from_registry(
                directory=canary_registry.directory,
                config=ServeConfig(max_batch=8, max_delay=0.0),
            ) as router:
                dispatcher = RequestDispatcher(router)
                rows = scream_data.X[:3].tolist()
                versions = []
                for _ in range(4):
                    status, payload = dispatcher.post("/predict/m", {"rows": rows})
                    assert status == 200
                    assert payload["labels"] == fitted_automl.predict(scream_data.X[:3]).tolist()
                    versions.append(payload["version"])
                assert versions == [2, 1, 2, 1]
                assert router.quiesce(5.0)
        finally:
            canary_registry.clear_canary("m")


class TestRequestDispatcher:
    def test_parse_post_route(self):
        dispatcher = RequestDispatcher(_stub_service())
        assert dispatcher.parse_post_route("/predict") == ("predict", None)
        assert dispatcher.parse_post_route("/predict/") == ("predict", None)
        assert dispatcher.parse_post_route("/predict/m") == ("predict", "m")
        assert dispatcher.parse_post_route("/feedback") == ("feedback", None)
        assert dispatcher.parse_post_route("/feedback/m") == ("feedback", "m")
        for path in ("/nope", "/predict/m/extra", "/", ""):
            with pytest.raises(RouteNotFound):
                dispatcher.parse_post_route(path)

    def test_service_for_plain_service_checks_name(self):
        service = _stub_service(name="only")
        dispatcher = RequestDispatcher(service)
        assert dispatcher.service_for(None) is service
        assert dispatcher.service_for("only", pick=True) is service
        with pytest.raises(RouteNotFound, match="no model route 'other'"):
            dispatcher.service_for("other")

    def test_payload_validation(self):
        with pytest.raises(ValidationError, match='"rows"'):
            RequestDispatcher.rows_of({})
        assert RequestDispatcher.rows_of({"rows": [[1.0]]}) == [[1.0]]
        assert RequestDispatcher.limit_of({}) is None
        assert RequestDispatcher.limit_of({"limit": 3}) == 3
        for bad in (-1, "five", 1.5):
            with pytest.raises(ValidationError, match='"limit"'):
                RequestDispatcher.limit_of({"limit": bad})

    def test_error_status_contract(self):
        cases = [
            (ValidationError("bad"), 400, "ValidationError"),
            (BackpressureError("full"), 503, "BackpressureError"),
            (RequestTimeoutError("late"), 504, "RequestTimeoutError"),
            (ServeError("broke"), 500, "ServeError"),
        ]
        for error, status, type_name in cases:
            got_status, payload = RequestDispatcher.error_response(error)
            assert got_status == status
            assert payload == {"error": str(error), "type": type_name}
        with pytest.raises(KeyError):  # unmapped errors re-raise, never 200
            RequestDispatcher.error_response(KeyError("untyped"))

    def test_get_routes(self):
        dispatcher = RequestDispatcher(_stub_service())
        assert dispatcher.get("/healthz") == (200, {"status": "ok", "version": 1})
        assert dispatcher.get("/metrics") == (200, {"counters": {"requests": 0}})
        status, payload = dispatcher.get("/nope")
        assert status == 404 and payload["type"] == "NotFound"

    def test_post_against_live_service(self, served_scream_registry, scream_data):
        service = ServeService.from_registry(
            "scream",
            directory=served_scream_registry.directory,
            config=ServeConfig(max_batch=8, max_delay=0.0),
        )
        with service:
            dispatcher = RequestDispatcher(service)
            status, payload = dispatcher.post("/predict", {"rows": scream_data.X[:2].tolist()})
            assert status == 200 and payload["model"] == "scream"
            status, payload = dispatcher.post("/predict/scream", {"rows": scream_data.X[:2].tolist()})
            assert status == 200
            status, payload = dispatcher.post("/predict/ghost", {"rows": [[0.0]]})
            assert status == 404 and payload["type"] == "NotFound"
            status, payload = dispatcher.post("/predict", {})
            assert status == 400 and payload["type"] == "ValidationError"
            status, payload = dispatcher.post("/feedback", {"limit": 5})
            assert status == 200 and "candidates" in payload


class _StubLoop:
    """Duck-typed retraining loop: tick()/status(), deterministic payloads."""

    def __init__(self):
        self.ticks = 0

    def tick(self):
        self.ticks += 1
        return {"tick": self.ticks, "promoted": False}

    def status(self):
        return {"ticks": self.ticks, "state": "idle"}


class TestLoopRoutes:
    """The /loop/tick admin surface, shared by both HTTP transports."""

    def test_parse_loop_tick_route(self):
        dispatcher = RequestDispatcher(_stub_service())
        assert dispatcher.parse_post_route("/loop/tick") == ("loop", None)
        for path in ("/loop", "/loop/tick/extra", "/loop/other"):
            with pytest.raises(RouteNotFound):
                dispatcher.parse_post_route(path)

    def test_tick_without_attached_loop_is_404(self):
        dispatcher = RequestDispatcher(_stub_service())
        status, payload = dispatcher.post("/loop/tick", {})
        assert status == 404 and payload["type"] == "NotFound"
        status, payload = dispatcher.get("/loop/status")
        assert status == 404  # the route only exists once a loop is attached

    def test_attached_loop_ticks_and_reports(self):
        dispatcher = RequestDispatcher(_stub_service())
        dispatcher.attach_loop(_StubLoop())
        assert dispatcher.post("/loop/tick", {}) == (200, {"tick": 1, "promoted": False})
        assert dispatcher.post("/loop/tick", {}) == (200, {"tick": 2, "promoted": False})
        assert dispatcher.get("/loop/status") == (200, {"ticks": 2, "state": "idle"})

    def test_transports_serve_identical_loop_routes(self):
        """POST /loop/tick and GET /loop/status are bitwise-equal on both servers."""
        import urllib.request

        from repro.serve import serve_async_http, serve_http

        def exchange(url, method, path, body=None):
            request = urllib.request.Request(
                url + path, data=body, method=method,
                headers={"Content-Type": "application/json"} if body else {},
            )
            try:
                with urllib.request.urlopen(request, timeout=5.0) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as error:
                return error.code, error.read()

        transcripts = {}
        for transport, factory in (("threaded", serve_http), ("async", serve_async_http)):
            service = SimpleNamespace(
                healthz=lambda: {"status": "ok"},
                metrics=lambda: {"counters": {}},
                quiesce=lambda timeout=None: True,
                close=lambda: None,
            )
            server = factory(service)
            server.dispatcher.attach_loop(_StubLoop())
            try:
                transcripts[transport] = [
                    exchange(server.url, "POST", "/loop/tick", b"{}"),
                    exchange(server.url, "POST", "/loop/tick", b"{}"),
                    exchange(server.url, "GET", "/loop/status"),
                    exchange(server.url, "POST", "/loop/tick/extra", b"{}"),
                ]
            finally:
                server.close()
        assert transcripts["threaded"] == transcripts["async"]
        statuses = [status for status, _ in transcripts["threaded"]]
        assert statuses == [200, 200, 200, 404]
