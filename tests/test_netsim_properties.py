"""Property-based invariants of the network emulators.

Whatever the scenario, certain physics must hold: delays are bounded below
by propagation, utilization cannot exceed 1, counters conserve packets.
Hypothesis drives both engines across the scenario space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim import (
    NetworkScenario,
    Sender,
    Simulator,
    BottleneckLink,
    run_fluid_scenario,
    run_packet_scenario,
)
from repro.netsim.cc import make_protocol

_scenarios = st.builds(
    NetworkScenario,
    bandwidth_mbps=st.floats(1.0, 80.0),
    rtt_ms=st.floats(5.0, 150.0),
    loss_rate=st.floats(0.0, 0.02),
    n_flows=st.integers(1, 4),
    queue_bdp=st.floats(0.5, 3.0),
)

_protocols = st.sampled_from(["reno", "cubic", "vegas", "scream", "bbr"])


@settings(max_examples=20, deadline=None)
@given(scenario=_scenarios, protocol=_protocols, seed=st.integers(0, 2**31 - 1))
def test_fluid_engine_invariants_property(scenario, protocol, seed):
    metrics = run_fluid_scenario(scenario, protocol, random_state=seed)
    # Physics: one-way delay is at least half the base RTT.
    assert metrics.avg_delay_ms >= scenario.rtt_ms / 2.0 - 1e-6
    # p95 >= mean up to discretization: the weighted percentile picks a
    # concrete sample, which on a near-constant delay distribution can sit
    # slightly below the weighted mean — the gap scales with the delay
    # magnitude, so the tolerance must too.
    assert metrics.p95_delay_ms >= metrics.avg_delay_ms - max(1e-3, 0.01 * metrics.avg_delay_ms)
    # Delay is bounded by propagation + a full queue.
    max_queue_delay_ms = scenario.queue_capacity_packets / scenario.bandwidth_pps * 1000.0
    assert metrics.p95_delay_ms <= scenario.rtt_ms / 2.0 + max_queue_delay_ms + 1e-6
    # Capacity and probability bounds.
    assert 0.0 <= metrics.utilization <= 1.0
    assert metrics.throughput_mbps <= scenario.bandwidth_mbps * 1.01
    assert 0.0 <= metrics.loss_fraction <= 1.0


@settings(max_examples=8, deadline=None)
@given(
    scenario=st.builds(
        NetworkScenario,
        bandwidth_mbps=st.floats(2.0, 20.0),
        rtt_ms=st.floats(10.0, 80.0),
        loss_rate=st.floats(0.0, 0.01),
        n_flows=st.integers(1, 2),
    ),
    protocol=_protocols,
)
def test_packet_engine_invariants_property(scenario, protocol):
    metrics = run_packet_scenario(scenario, protocol, duration=3.0, random_state=0)
    assert metrics.avg_delay_ms >= scenario.rtt_ms / 2.0 - 1e-6
    assert metrics.throughput_mbps <= scenario.bandwidth_mbps * 1.05
    assert 0.0 <= metrics.loss_fraction <= 1.0
    assert 0.0 <= metrics.utilization <= 1.0


@settings(max_examples=10, deadline=None)
@given(protocol=_protocols, seed=st.integers(0, 2**31 - 1))
def test_sender_packet_conservation_property(protocol, seed):
    """sent = inflight + delivered + detected-lost (+ yet-undetected)."""
    sim = Simulator()
    link = BottleneckLink(
        sim, rate_pps=300.0, one_way_delay=0.02, queue_capacity=30,
        loss_rate=0.005, rng=np.random.default_rng(seed),
    )
    sender = Sender(sim, link, make_protocol(protocol), flow_id=0, reverse_delay=0.02)
    sim.run(3.0)
    sender.stop()
    stats = sender.stats
    # Each counter is bounded by sent, but the categories overlap at a
    # snapshot: a delivered packet may be awaiting its ACK (still inflight
    # at the sender) and a "lost" one may arrive after the spurious
    # RTO/gap verdict, so no disjoint-sum invariant exists mid-flight.
    assert stats.delivered <= stats.sent
    assert stats.lost <= stats.sent
    assert sender.inflight <= stats.sent
    assert all(delay >= 0.02 - 1e-9 for delay in stats.delays)
    assert len(stats.delays) == stats.delivered
