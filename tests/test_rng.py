"""Tests for repro.rng."""

import warnings

import numpy as np
import pytest

import repro.rng
from repro.exceptions import ValidationError
from repro.rng import check_random_state, spawn


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_none_warns_once_about_nondeterminism(self, monkeypatch):
        """The normalization contract: None = fresh OS entropy, loudly.

        The first ``check_random_state(None)`` of a process must warn that
        the run is not reproducible; later calls stay silent so library
        internals with ``random_state=None`` defaults cannot cause a storm.
        """
        monkeypatch.setattr(repro.rng, "_warned_nondeterministic_seed", False)
        with pytest.warns(UserWarning, match="nondeterministically seeded"):
            check_random_state(None)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            check_random_state(None)  # latched: no second warning

    def test_int_and_generator_never_warn(self, monkeypatch):
        monkeypatch.setattr(repro.rng, "_warned_nondeterministic_seed", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            check_random_state(7)
            check_random_state(np.random.default_rng(7))

    def test_none_generators_are_independent(self, monkeypatch):
        monkeypatch.setattr(repro.rng, "_warned_nondeterministic_seed", True)
        draws_a = check_random_state(None).integers(0, 2**62, size=4)
        draws_b = check_random_state(None).integers(0, 2**62, size=4)
        assert not np.array_equal(draws_a, draws_b)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(5).integers(0, 1000, size=10)
        b = check_random_state(5).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(5).integers(0, 10**9)
        b = check_random_state(6).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert check_random_state(rng) is rng

    def test_numpy_integer_accepted(self):
        rng = check_random_state(np.int64(9))
        assert isinstance(rng, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state(-1)

    def test_invalid_type_rejected(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestSpawn:
    def test_children_count(self):
        assert len(spawn(np.random.default_rng(0), 5)) == 5

    def test_children_reproducible(self):
        kids_a = spawn(np.random.default_rng(1), 3)
        kids_b = spawn(np.random.default_rng(1), 3)
        for a, b in zip(kids_a, kids_b):
            assert a.integers(0, 10**9) == b.integers(0, 10**9)

    def test_children_independent(self):
        kids = spawn(np.random.default_rng(2), 2)
        assert kids[0].integers(0, 10**9) != kids[1].integers(0, 10**9)

    def test_zero_children(self):
        assert spawn(np.random.default_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            spawn(np.random.default_rng(0), -1)
