"""Congestion-control advisor: the emulator and both its engines, hands-on.

This example works one level below the dataset API:

1. emulate a handful of concrete network conditions with every protocol,
   on both the packet-level and the fluid engine, and print the
   latency/throughput table (what Pantheon would report);
2. build an advisor model ("which protocol should this application use?")
   from emulated scenarios — the multi-class generalization of the
   paper's Scream-vs-rest example;
3. show the advisor's ALE explanation for the loss-rate feature.

Run:  python examples/congestion_control_advisor.py
"""

import numpy as np

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, ascii_ale_plot, within_ale_committee
from repro.ml import balanced_accuracy, train_test_split
from repro.rng import check_random_state
from repro.netsim import (
    DEFAULT_SPACE,
    PROTOCOLS,
    NetworkScenario,
    run_fluid_scenario,
    run_packet_scenario,
)

SEED = 11

print("=" * 72)
print("1) One scenario, every protocol, both engines")
print("=" * 72)
scenario = NetworkScenario(bandwidth_mbps=25, rtt_ms=50, loss_rate=0.005, n_flows=3)
print(f"scenario: {scenario}")
print(f"{'protocol':10s} {'engine':7s} {'p95 delay':>10s} {'throughput':>11s} {'loss':>6s}")
for protocol in sorted(PROTOCOLS):
    for engine, run in (("packet", run_packet_scenario), ("fluid", run_fluid_scenario)):
        kwargs = {"duration": 5.0} if engine == "packet" else {}
        metrics = run(scenario, protocol, random_state=SEED, **kwargs)
        print(
            f"{protocol:10s} {engine:7s} {metrics.p95_delay_ms:8.1f}ms "
            f"{metrics.throughput_mbps:8.2f}Mbps {metrics.loss_fraction:6.3f}"
        )

print()
print("=" * 72)
print("2) Training a protocol advisor (multi-class: best protocol wins)")
print("=" * 72)
rng = check_random_state(SEED)
scenarios = DEFAULT_SPACE.sample(350, random_state=rng)
X = np.array([s.as_features() for s in scenarios])
labels = []
for index, s in enumerate(scenarios):
    scores = {
        protocol: run_fluid_scenario(s, protocol, random_state=index).latency_score()
        for protocol in sorted(PROTOCOLS)
    }
    qualified = {p: v for p, v in scores.items() if v < float("inf")}
    labels.append(min(qualified, key=qualified.get) if qualified else "none")
y = np.array(labels)
print("advisor label distribution:", {label: int(count) for label, count in zip(*np.unique(y, return_counts=True))})

X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, stratify=True, random_state=SEED)
advisor = AutoMLClassifier(n_iterations=16, ensemble_size=8, random_state=SEED)
advisor.fit(X_train, y_train)
print(f"advisor balanced accuracy: {balanced_accuracy(y_test, advisor.predict(X_test)):.3f}")

print()
print("=" * 72)
print("3) What did the advisor learn about loss rate?  (ALE + disagreement)")
print("=" * 72)
report = AleFeedback(grid_size=20, grid_strategy="uniform").analyze(
    within_ale_committee(advisor), X_train, DEFAULT_SPACE.domains()
)
loss_profile = next(p for p in report.profiles if p.domain.name == "loss_rate")
scream_class = int(np.flatnonzero(advisor.classes_ == "scream")[0]) if "scream" in advisor.classes_ else 0
print(ascii_ale_plot(loss_profile, threshold=report.threshold, class_index=scream_class))
print()
print(report.summary())
