"""DDoS detection on firewall logs: the §4.2 interpretability story.

An operator trains AutoML on firewall logs to classify session actions,
gets mediocre accuracy, and asks for feedback.  The feedback flags two
features:

- the *source port* at low values — but the operator knows source ports
  are kernel-assigned and noisy, so she discards that bound;
- the *destination port* around 443–445 — port 443 is a prime DDoS
  target, so she keeps that bound and collects more data there.

This selective use of feedback is exactly what pool-point-only active
learning cannot offer (the points come with no rationale to veto).

Run:  python examples/ddos_feedback.py
"""

import numpy as np

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, ascii_ale_plot, within_ale_committee
from repro.datasets import generate_firewall_dataset, split_train_test_pool
from repro.ml import balanced_accuracy

SEED = 17

print("1) Firewall logs in, AutoML out...")
logs = generate_firewall_dataset(3000, random_state=SEED)
bundle = split_train_test_pool(logs, n_test_sets=10, random_state=SEED)
print(f"   {bundle.describe()}; classes {logs.class_balance()}")

automl = AutoMLClassifier(n_iterations=14, ensemble_size=8, random_state=SEED)
automl.fit(bundle.train.X, bundle.train.y)
before = float(np.mean([balanced_accuracy(t.y, automl.predict(t.X)) for t in bundle.test_sets]))
print(f"   mean balanced accuracy over {bundle.n_test_sets} test sets: {before:.3f}")

print("\n2) Feedback: which feature ranges confuse the ensemble?")
report = AleFeedback(grid_size=24, grid_strategy="uniform").analyze(
    within_ale_committee(automl), bundle.train.X, bundle.train.domains
)
for feature in ("src_port", "dst_port"):
    profile = next(p for p in report.profiles if p.domain.name == feature)
    print()
    print(ascii_ale_plot(profile, threshold=report.threshold, class_index=0, height=10))
    intervals = report.intervals_for(feature)
    print(f"   flagged: {feature} ∈ {intervals if intervals else '∅'}")

print("\n3) Operator judgment: drop the noisy source-port bound, keep dst_port.")
actionable = report.restrict_to([name for name in logs.feature_names if name != "src_port"])
print(f"   regions before: {len(report.region)}, after operator filtering: {len(actionable.region)}")

print("\n4) Pull the matching pool records and retrain...")
picks = actionable.filter_pool(bundle.pool.X, max_points=150, random_state=SEED)
print(f"   {picks.size} pool records fall inside the kept regions")
augmented = bundle.train.extended(bundle.pool.X[picks], bundle.pool.y[picks])
retrained = AutoMLClassifier(n_iterations=14, ensemble_size=8, random_state=SEED + 1)
retrained.fit(augmented.X, augmented.y)
after = float(np.mean([balanced_accuracy(t.y, retrained.predict(t.X)) for t in bundle.test_sets]))
print(f"   mean balanced accuracy: {before:.3f} -> {after:.3f}")
