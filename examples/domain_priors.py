"""Domain-customized AutoML: encoding operator priors (the paper's §1 vision).

Three kinds of domain knowledge, applied to the Scream-vs-rest problem:

1. **topology-implied independence** — measurements from disconnected
   parts of the network are class-conditionally independent, which becomes
   the covariance mask of a structured Gaussian model family;
2. **monotonicity** — the operator knows SCReAM's advantage can only grow
   with the loss rate (loss-based protocols collapse); ensemble members
   whose ALE curve learned the opposite get evicted;
3. **irrelevance** — a noise column the operator knows to ignore.

Run:  python examples/domain_priors.py
"""

import networkx as nx
import numpy as np

from repro.datasets import generate_scream_dataset
from repro.domain import (
    INCREASING,
    DomainCustomizedAutoML,
    DomainSpec,
    TopologyPriorBuilder,
)
from repro.ml import balanced_accuracy, train_test_split
from repro.rng import check_random_state

SEED = 23

print("1) Data: Scream-vs-rest with an extra known-noise column appended")
data = generate_scream_dataset(400, random_state=SEED)
rng = check_random_state(SEED)
noise = rng.normal(size=(data.n_samples, 1))
X = np.hstack([data.X, noise])
feature_names = data.feature_names + ["ambient_noise"]
X_train, X_test, y_train, y_test = train_test_split(X, data.y, test_size=0.3, stratify=True, random_state=SEED)

print("\n2) Topology: where is each feature measured?")
topology = nx.Graph()
topology.add_edges_from(
    [
        ("sender", "bottleneck_link"),
        ("bottleneck_link", "receiver"),
        ("probe_host", "bottleneck_link"),
    ]
)
topology.add_node("weather_station")  # disconnected: source of the noise column
builder = TopologyPriorBuilder(
    topology,
    {
        "bandwidth_mbps": "bottleneck_link",
        "rtt_ms": "probe_host",
        "loss_rate": "bottleneck_link",
        "n_flows": "sender",
        "ambient_noise": "weather_station",
    },
)
groups = builder.dependence_groups(radius=1)
print(f"   dependence groups (radius 1): {[sorted(g) for g in groups]}")

spec = builder.build_spec(
    feature_names,
    radius=1,
    monotone={"loss_rate": INCREASING},  # more loss -> SCReAM more attractive
    irrelevant=["ambient_noise"],
)
print()
print(spec.describe())

print("\n3) Fitting domain-customized AutoML vs. the plain one...")
customized = DomainCustomizedAutoML(spec, n_iterations=16, ensemble_size=8, random_state=SEED)
customized.fit(X_train, y_train)
custom_score = balanced_accuracy(y_test, customized.predict(X_test))
print(customized.describe())

from repro.automl import AutoMLClassifier  # noqa: E402  (contrast model)

plain = AutoMLClassifier(n_iterations=16, ensemble_size=8, random_state=SEED)
plain.fit(X_train, y_train)
plain_score = balanced_accuracy(y_test, plain.predict(X_test))

print(f"\n   plain AutoML      balanced accuracy: {plain_score:.3f}")
print(f"   domain-customized balanced accuracy: {custom_score:.3f}")
print("   (the customized run also guarantees its ensemble respects the priors,")
print("    which is worth as much as raw accuracy to an operator)")
