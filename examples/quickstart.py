"""Quickstart: the full interpretable-feedback loop in ~40 lines.

Workflow (the paper's §2.1 congestion-control story):

1. train AutoML on network conditions labeled "should I use SCReAM?";
2. ask the feedback algorithm where the ensemble's models disagree;
3. read the explanation (this is the part a non-ML-expert operator sees);
4. collect the suggested data points (labeled by the network emulator);
5. retrain and compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, explain_report, within_ale_committee
from repro.datasets import ScreamOracle, generate_scream_dataset
from repro.ml import balanced_accuracy

SEED = 7

print("1) Generating the Scream-vs-rest training data (emulator-labeled)...")
train = generate_scream_dataset(350, random_state=SEED)
test = generate_scream_dataset(600, random_state=SEED + 1)
print(f"   {train.n_samples} training rows, class balance {train.class_balance()}")

print("2) Running AutoML...")
automl = AutoMLClassifier(n_iterations=16, ensemble_size=8, random_state=SEED)
automl.fit(train.X, train.y)
before = balanced_accuracy(test.y, automl.predict(test.X))
print(automl.describe())
print(f"   balanced accuracy before feedback: {before:.3f}")

print("3) Asking for feedback (where do the ensemble's models disagree?)...")
report = AleFeedback(grid_size=24).analyze(within_ale_committee(automl), train.X, train.domains)
print(explain_report(report, max_features=2))

print("4) Collecting the suggested data (the emulator is our oracle)...")
new_points = report.suggest(80, random_state=SEED)
new_labels = ScreamOracle(random_state=SEED).label(new_points)
augmented = train.extended(new_points, new_labels)
print(f"   +{new_points.shape[0]} labeled points -> {augmented.n_samples} training rows")

print("5) Retraining with the augmented data...")
retrained = AutoMLClassifier(n_iterations=16, ensemble_size=8, random_state=SEED + 2)
retrained.fit(augmented.X, augmented.y)
after = balanced_accuracy(test.y, retrained.predict(test.X))
print(f"   balanced accuracy: {before:.3f} -> {after:.3f} "
      f"({'+' if after >= before else ''}{(after - before) * 100:.1f} points)")
