"""Tuning the feedback threshold to the sampling budget (paper §4).

The feedback algorithm's only hyper-parameter is the variance threshold
``T``.  The paper's guidance:

- *large labeling budget* → set ``T`` low: bigger subspaces, broader
  coverage, less overfitting risk;
- *small labeling budget* → set ``T`` high: concentrate the few samples
  where they matter (near the decision boundary).

This example sweeps ``T`` as a multiple of the median heuristic and shows
(1) how the flagged subspace shrinks, and (2) what that does to the
retrained model at two different budgets.

Run:  python examples/threshold_tuning.py
"""

import numpy as np

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, within_ale_committee
from repro.datasets import ScreamOracle, generate_scream_dataset
from repro.experiments import sweep_thresholds, sweep_to_csv
from repro.ml import balanced_accuracy

SEED = 29

print("1) Base model on the Scream-vs-rest task...")
train = generate_scream_dataset(300, random_state=SEED)
test = generate_scream_dataset(700, random_state=SEED + 1)
oracle = ScreamOracle(random_state=SEED + 2)
automl = AutoMLClassifier(n_iterations=14, ensemble_size=8, random_state=SEED)
automl.fit(train.X, train.y)
committee = within_ale_committee(automl)
baseline = balanced_accuracy(test.y, automl.predict(test.X))
print(f"   baseline balanced accuracy: {baseline:.3f}")

print("\n2) Region geometry across threshold multipliers:")
rows = sweep_thresholds(committee, train.X, train.domains, grid_size=24)
print(sweep_to_csv(rows))

print("3) Retraining at two budgets with low vs high thresholds:")
print(f"   {'budget':>8s} {'T multiplier':>13s} {'region volume':>14s} {'bacc':>7s}")
for budget in (30, 120):
    for multiplier in (0.5, 2.0):
        feedback = AleFeedback(grid_size=24, threshold_scale=multiplier)
        report = feedback.analyze(committee, train.X, train.domains)
        if not report.region:
            print(f"   {budget:8d} {multiplier:13.1f} {'(empty)':>14s}      --")
            continue
        points = report.suggest(budget, random_state=SEED + budget)
        labels = oracle.label(points)
        augmented = train.extended(points, labels)
        retrained = AutoMLClassifier(n_iterations=14, ensemble_size=8, random_state=SEED + 3)
        retrained.fit(augmented.X, augmented.y)
        score = balanced_accuracy(test.y, retrained.predict(test.X))
        print(
            f"   {budget:8d} {multiplier:13.1f} {report.region.volume():14.3f} {score:7.3f}"
        )

print("\n   The §4 trade-off in the paper: small budgets favour a high threshold")
print("   (boundary focus), large budgets a low one (coverage).  Any single run")
print("   is noisy — the benchmarks repeat this with 20 test sets and Wilcoxon")
print("   tests before drawing conclusions; do the same before trusting a point.")
