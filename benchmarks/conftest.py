"""Shared benchmark plumbing.

Every benchmark regenerates one table or figure of the paper and prints it
(run with ``pytest benchmarks/ --benchmark-only -s`` to see the artifacts).
Budgets are scaled down from the paper's (documented in EXPERIMENTS.md);
set ``REPRO_BENCH_SCALE=paper`` for full-scale runs.
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    """'default' (minutes) or 'paper' (hours, the paper's sizes)."""
    return os.environ.get("REPRO_BENCH_SCALE", "default")


def banner(title: str) -> None:
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


@pytest.fixture
def run_once(benchmark):
    """Run the artifact generator exactly once under pytest-benchmark.

    These are experiment harnesses, not microbenchmarks: one round is the
    meaningful unit, and the artifact matters more than the timing.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
