"""Benchmark the remote cache tier end-to-end against a live artifact server.

Times ``run_table1`` — the full sharded grid — under the distribution
regimes the ``repro.store`` subsystem exists for:

- ``local_cold``   — serial runtime, empty local cache, no store (the
  baseline: every dataset generation, fit, and cell executes);
- ``remote_warm``  — an *empty* local cache in front of an artifact
  server warmed by the cold run: the whole grid must be answered across
  the wire with **zero** task executions;
- ``store_killed`` — the same wiring, but the server is killed before
  the run: the tier trips its breaker, degrades to local-only, and the
  grid executes everything locally instead of failing.

Every regime must produce bitwise-identical balanced-accuracy scores;
the zero-execution and graceful-degradation claims are asserted, not
merely reported.  Results land in ``BENCH_store.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_store.py``
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments import Table1Config, run_table1
from repro.experiments.grid import clear_dataset_memo
from repro.runtime import ArtifactCache, SerialExecutor, TaskRuntime
from repro.runtime.clock import Stopwatch
from repro.store import StoreService, serve_store_http

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Task families the grid shards; a remote-warm run must execute none of them.
GRID_TASKS = ("repro.experiments.tasks:scream_dataset", "automl.fit", "repro.experiments.tasks:grid_cell")

ALGORITHMS = ["no_feedback", "uniform", "cross_ale", "within_ale_pool"]


def build_config(args) -> Table1Config:
    return Table1Config(
        n_train=args.n_train,
        n_test=args.n_test,
        n_pool=args.n_pool,
        n_feedback=args.n_feedback,
        n_test_sets=4,
        n_repeats=args.repeats,
        cross_runs=2,
        automl_iterations=args.iterations,
        ensemble_size=3,
        min_distinct_members=2,
        grid_size=8,
        seed=args.seed,
    )


def run_regime(name: str, runtime: TaskRuntime, config: Table1Config):
    clear_dataset_memo()  # each regime pays its real dataset-generation cost
    watch = Stopwatch()
    table, record = run_table1(config, algorithms=list(ALGORITHMS), runtime=runtime)
    seconds = watch.elapsed()
    scores = {algo: table.scores(algo).scores for algo in ALGORITHMS}
    store_meta = record.metadata["grid"].get("store")
    print(
        f"{name:12s} {seconds:8.2f}s  "
        f"executed={runtime.stats['executed']} cache_hits={runtime.stats['cache_hits']} "
        + (
            f"remote_hits={store_meta['remote_hits']} degraded={store_meta['degraded']}"
            if store_meta is not None
            else "(no store)"
        )
    )
    executions = {fn: runtime.executions_of(fn) for fn in GRID_TASKS}
    return seconds, scores, executions, store_meta


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-train", type=int, default=60)
    parser.add_argument("--n-test", type=int, default=80)
    parser.add_argument("--n-pool", type=int, default=60)
    parser.add_argument("--n-feedback", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=4, help="AutoML candidates per fit")
    parser.add_argument("--seed", type=int, default=20211110)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_store.json", help="result file"
    )
    args = parser.parse_args(argv)

    config = build_config(args)
    n_cells = args.repeats * len(ALGORITHMS)
    print(
        f"workload: {n_cells} grid cells ({args.repeats} repeats x {len(ALGORITHMS)} "
        f"strategies), {os.cpu_count()} CPU core(s)\n"
    )

    timings: dict[str, float] = {}
    all_scores: dict[str, dict[str, np.ndarray]] = {}
    executions: dict[str, dict[str, int]] = {}
    store_metas: dict[str, dict | None] = {}
    work_dir = Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        # Cold local run: fills the origin cache the server will export.
        origin_cache = work_dir / "origin"
        cold_runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(origin_cache))
        timings["local_cold"], all_scores["local_cold"], executions["local_cold"], store_metas["local_cold"] = (
            run_regime("local_cold", cold_runtime, config)
        )

        # Remote-warm: empty local cache, every unit fetched from the server.
        server = serve_store_http(StoreService(origin_cache))
        warm_runtime = TaskRuntime(
            SerialExecutor(), cache=ArtifactCache(work_dir / "warm-local"), store_url=server.url
        )
        try:
            timings["remote_warm"], all_scores["remote_warm"], executions["remote_warm"], store_metas["remote_warm"] = (
                run_regime("remote_warm", warm_runtime, config)
            )
        finally:
            warm_runtime.cache.close()
            server.close()

        # Store killed mid-session: breaker trips, the grid runs locally.
        dead_server = serve_store_http(StoreService(work_dir / "dead-origin"))
        killed_runtime = TaskRuntime(
            SerialExecutor(), cache=ArtifactCache(work_dir / "killed-local"), store_url=dead_server.url
        )
        dead_server.close()
        try:
            timings["store_killed"], all_scores["store_killed"], executions["store_killed"], store_metas["store_killed"] = (
                run_regime("store_killed", killed_runtime, config)
            )
        finally:
            killed_runtime.cache.close()
        warm_stats = warm_runtime.stats
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)

    reference = all_scores["local_cold"]
    bitwise_identical = all(
        all(np.array_equal(reference[algo], scores[algo]) for algo in ALGORITHMS)
        for scores in all_scores.values()
    )
    assert bitwise_identical, "store regimes disagree — the determinism contract is broken"
    warm_executions = executions["remote_warm"]
    assert warm_stats["executed"] == 0 and all(
        count == 0 for count in warm_executions.values()
    ), f"remote-warm rerun executed work: {warm_executions}"
    assert store_metas["remote_warm"]["degraded"] is False
    assert store_metas["store_killed"]["degraded"] is True, "dead store did not degrade"
    assert executions["store_killed"] == executions["local_cold"], (
        "degraded run did not fall back to full local execution"
    )

    results = {
        "workload": {
            "n_cells": n_cells,
            "algorithms": list(ALGORITHMS),
            "config": {k: getattr(config, k) for k in Table1Config.__dataclass_fields__},
        },
        "cpu_count": os.cpu_count(),
        "timings_seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "speedup_remote_warm_vs_cold": round(timings["local_cold"] / timings["remote_warm"], 2),
        "executions_by_regime": executions,
        "remote_warm_executed": warm_stats["executed"],
        "store_stats_by_regime": {
            name: meta for name, meta in store_metas.items() if meta is not None
        },
        "bitwise_identical": bitwise_identical,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nremote-warm speedup vs cold: {results['speedup_remote_warm_vs_cold']}x")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
