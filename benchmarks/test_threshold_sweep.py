"""Benchmark TH: the §4 "Setting the threshold" analysis.

Paper claims: lower thresholds yield larger feature subspaces (better for
large sampling budgets), higher thresholds shrink the region toward the
decision boundary (better for small budgets).  We sweep multiples of the
median heuristic and report region geometry and pool coverage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.datasets import generate_scream_dataset
from repro.experiments import sweep_thresholds, sweep_to_csv

from .conftest import banner, bench_scale


def _setup():
    n = 1161 if bench_scale() == "paper" else 300
    iterations = 120 if bench_scale() == "paper" else 14
    dataset = generate_scream_dataset(n, random_state=2021)
    pool = generate_scream_dataset(max(200, n // 3), random_state=2022)
    automl = AutoMLClassifier(
        n_iterations=iterations, ensemble_size=8, min_distinct_members=5, random_state=0
    ).fit(dataset.X, dataset.y)
    return dataset, pool, automl


@pytest.mark.benchmark(group="threshold")
def test_threshold_sweep(run_once):
    dataset, pool, automl = _setup()

    def sweep():
        return sweep_thresholds(
            automl.ensemble_members_,
            dataset.X,
            dataset.domains,
            multipliers=(0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
            grid_size=24,
            pool_X=pool.X,
        )

    rows = run_once(sweep)
    banner("§4 'Setting the threshold' — region size vs threshold multiplier")
    print(sweep_to_csv(rows))

    volumes = np.array([row.relative_volume for row in rows])
    hits = np.array([row.pool_hits for row in rows], dtype=float)
    # Monotone (non-increasing) region volume and pool coverage in T.
    assert np.all(np.diff(volumes) <= 1e-9), volumes
    assert np.all(np.diff(hits) <= 0 + 1e-9), hits
    # The extremes actually differ (the knob does something).
    assert volumes[0] > volumes[-1]
