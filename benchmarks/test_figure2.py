"""Benchmark F2: reproduce Figures 2a/2b (firewall port ALE plots).

Paper claims (§4.2): the source-port ALE shows high across-model variance
*especially around lower values* (kernel-assigned ports are noisy, low
values appear mostly in spoofed attack traffic), and the destination-port
ALE shows high variance *across 443–445* (the DDoS target zone).  The
operator keeps the destination-port bound and discards the source-port
one — interpretability that pool-point active learning cannot offer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import FigureConfig, run_figure2

from .conftest import banner, bench_scale


def _config() -> FigureConfig:
    if bench_scale() == "paper":
        return FigureConfig(
            n_train=65532, automl_iterations=120, ensemble_size=16,
            grid_size=64, grid_strategy="quantile",
        )
    return FigureConfig(
        n_train=2500, automl_iterations=10, ensemble_size=6,
        grid_size=48, grid_strategy="quantile", seed=3,
    )


@pytest.mark.benchmark(group="figure2")
def test_figure2_port_ale(run_once):
    fig2a, fig2b = run_once(run_figure2, _config())
    banner("Figure 2a — ALE of the source port (firewall data)")
    print(fig2a.ascii_plot)
    print(f"feedback: {fig2a.flagged_intervals}")
    banner("Figure 2b — ALE of the destination port (firewall data)")
    print(fig2b.ascii_plot)
    print(f"feedback: {fig2b.flagged_intervals}")

    report = fig2a.report
    threshold = report.threshold

    # 2a: disagreement concentrates at LOW source ports.
    src = next(p for p in report.profiles if p.domain.name == "src_port")
    low_mask = src.grid < 20000
    high_mask = src.grid > 40000
    assert low_mask.any() and high_mask.any()
    assert src.std_curve[low_mask].mean() > 2.0 * src.std_curve[high_mask].mean()
    # ...and the low range is actually flagged for the operator.
    low_intervals = report.intervals_for("src_port")
    assert low_intervals and low_intervals.intervals[0].low < 20000

    # 2b: the 443-445 neighbourhood is flagged (the paper's actionable bound).
    dst = next(p for p in report.profiles if p.domain.name == "dst_port")
    ddos_zone = (dst.grid >= 400) & (dst.grid <= 500)
    assert ddos_zone.any(), "quantile grid must resolve the 443-445 mass"
    assert dst.std_curve[ddos_zone].max() > threshold
    assert report.intervals_for("dst_port").contains(445.0)
