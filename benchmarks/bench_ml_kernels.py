"""Benchmark the flat-array ensemble kernels and the batched committee ALE.

Three measurements, from micro to macro:

- ``predict_proba`` — forests and boosting through the
  :class:`repro.ml.kernels.TreeBank` kernel vs their legacy per-member
  loops (:func:`repro.ml.per_member_fallback`).  The kernel win is
  largest where per-tree Python overhead dominates — the small batches
  the serving engine and the per-feature ALE slices actually issue — so
  the asserted >= 3x bound is measured on a 200-row batch; bulk-scoring
  batches are reported alongside.
- ``committee ALE`` — every committee member's (lo, hi) perturbed copies
  for *all* features stacked into few ``predict_proba`` calls
  (:func:`repro.core.ale.ale_curves_for_features`) vs the historical
  two-model-calls-per-feature shape with kernels disabled.
- ``grid cell`` — a representative experiment-grid unit of work (AutoML
  fit + Within-ALE feedback + scoring) with kernels on vs off, the
  end-to-end number a Table-1 reproduction actually feels.

Bitwise identity between the fast and legacy paths is asserted on every
measurement — the speedups are only meaningful if the bits agree.
Results land in ``BENCH_ml_kernels.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_ml_kernels.py``
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path

import numpy as np

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, make_grid, within_ale_committee
from repro.core.ale import ale_curve, ale_curves_for_features
from repro.datasets import generate_scream_dataset
from repro.ml import (
    ExtraTreesClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
    balanced_accuracy,
    per_member_fallback,
)
from repro.rng import check_random_state
from repro.runtime.clock import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent


def best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds over ``repeats`` calls (noise floor)."""
    best = float("inf")
    for _ in range(repeats):
        watch = Stopwatch()
        fn()
        best = min(best, watch.elapsed())
    return best


def bench_predict(models: dict, eval_sets: dict, repeats: int) -> dict:
    """Kernel vs per-member ``predict_proba`` timings, bitwise-checked."""
    section: dict[str, dict] = {}
    for model_name, model in models.items():
        section[model_name] = {}
        for rows_name, X_eval in eval_sets.items():
            fast_proba = model.predict_proba(X_eval)  # warm (builds the bank)
            with per_member_fallback():
                slow_proba = model.predict_proba(X_eval)
            assert np.array_equal(fast_proba, slow_proba), (
                f"{model_name}: kernel path diverged from per-member loop"
            )
            fast = best_of(lambda: model.predict_proba(X_eval), repeats)
            with per_member_fallback():
                slow = best_of(lambda: model.predict_proba(X_eval), repeats)
            section[model_name][rows_name] = {
                "rows": int(X_eval.shape[0]),
                "kernel_ms": round(fast * 1e3, 3),
                "per_member_ms": round(slow * 1e3, 3),
                "speedup": round(slow / fast, 2),
            }
            entry = section[model_name][rows_name]
            print(
                f"predict_proba {model_name:18s} {entry['rows']:5d} rows  "
                f"kernel {entry['kernel_ms']:8.2f} ms  per-member {entry['per_member_ms']:8.2f} ms  "
                f"{entry['speedup']:5.2f}x"
            )
    return section


def bench_committee_ale(committee, X, edges_per_feature, repeats: int) -> dict:
    """Batched-and-kernelized committee ALE vs the historical shape."""
    indices = list(range(X.shape[1]))

    def batched():
        return [
            ale_curves_for_features(model, X, indices, edges_per_feature)
            for model in committee
        ]

    def historical():
        # Two model calls per (model, feature), per-member tree loops:
        # the exact pre-kernel committee profile.
        with per_member_fallback():
            return [
                [
                    ale_curve(model, X, j, edges_per_feature[j])
                    for j in indices
                ]
                for model in committee
            ]

    for fast_curves, slow_curves in zip(batched(), historical()):
        for fast_curve, slow_curve in zip(fast_curves, slow_curves):
            assert np.array_equal(fast_curve.values, slow_curve.values), (
                "batched committee ALE diverged from the per-feature path"
            )
    fast = best_of(batched, repeats)
    slow = best_of(historical, repeats)
    result = {
        "committee_size": len(committee),
        "n_features": len(indices),
        "batched_ms": round(fast * 1e3, 3),
        "unbatched_ms": round(slow * 1e3, 3),
        "speedup": round(slow / fast, 2),
        "saved_ms": round((slow - fast) * 1e3, 3),
    }
    print(
        f"committee ALE  batched {result['batched_ms']:8.2f} ms  "
        f"unbatched {result['unbatched_ms']:8.2f} ms  {result['speedup']:5.2f}x"
    )
    return result


def run_grid_cell(data, iterations: int) -> tuple[float, np.ndarray]:
    """One experiment-grid unit of work: fit, Within-ALE feedback, score."""
    watch = Stopwatch()
    automl = AutoMLClassifier(
        n_iterations=iterations, ensemble_size=5, min_distinct_members=3, random_state=7
    ).fit(data.X, data.y)
    AleFeedback(grid_size=16).analyze(within_ale_committee(automl), data.X, data.domains)
    balanced_accuracy(data.y, automl.predict(data.X))
    return watch.elapsed(), automl.predict_proba(data.X)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-train", type=int, default=400, help="training rows")
    parser.add_argument("--n-features", type=int, default=8, help="synthetic feature count")
    parser.add_argument("--n-trees", type=int, default=200, help="forest size under test")
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats (best-of)")
    parser.add_argument("--grid-samples", type=int, default=200, help="grid-cell dataset size")
    parser.add_argument("--grid-iterations", type=int, default=6, help="grid-cell AutoML candidates")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_ml_kernels.json", help="result file"
    )
    args = parser.parse_args(argv)

    rng = check_random_state(args.seed)
    X_train = rng.normal(size=(args.n_train, args.n_features))
    y_train = rng.integers(0, 3, size=args.n_train)
    eval_sets = {
        "batch_200": rng.normal(size=(200, args.n_features)),
        "bulk_3000": rng.normal(size=(3000, args.n_features)),
    }

    print(f"fitting benchmark models ({args.n_trees} trees, {os.cpu_count()} CPU core(s))")
    models = {
        "random_forest": RandomForestClassifier(
            n_estimators=args.n_trees, random_state=args.seed
        ).fit(X_train, y_train),
        "extra_trees": ExtraTreesClassifier(
            n_estimators=args.n_trees, random_state=args.seed
        ).fit(X_train, y_train),
        "gradient_boosting": GradientBoostingClassifier(
            n_estimators=max(10, args.n_trees // 4), max_depth=3, random_state=args.seed
        ).fit(X_train, y_train),
    }
    predict_section = bench_predict(models, eval_sets, args.repeats)

    committee = [
        RandomForestClassifier(n_estimators=50, random_state=seed).fit(X_train, y_train)
        for seed in range(5)
    ]
    edges_per_feature = [make_grid(X_train[:, j], grid_size=16) for j in range(args.n_features)]
    ale_section = bench_committee_ale(committee, X_train, edges_per_feature, args.repeats)

    print("running the representative grid cell (fit + Within-ALE feedback + scoring)")
    data = generate_scream_dataset(args.grid_samples, random_state=args.seed)
    kernel_seconds, kernel_proba = run_grid_cell(data, args.grid_iterations)
    with per_member_fallback():
        legacy_seconds, legacy_proba = run_grid_cell(data, args.grid_iterations)
    assert np.array_equal(kernel_proba, legacy_proba), (
        "grid cell produced different ensemble probabilities with kernels on vs off"
    )
    grid_section = {
        "kernel_seconds": round(kernel_seconds, 3),
        "per_member_seconds": round(legacy_seconds, 3),
        "speedup": round(legacy_seconds / kernel_seconds, 2),
        "saved_seconds": round(legacy_seconds - kernel_seconds, 3),
    }
    print(
        f"grid cell  kernel {grid_section['kernel_seconds']:6.2f}s  "
        f"per-member {grid_section['per_member_seconds']:6.2f}s  {grid_section['speedup']:5.2f}x"
    )

    headline = predict_section["random_forest"]["batch_200"]["speedup"]
    assert headline >= 3.0, (
        f"TreeBank must be >= 3x the per-member loop on the 200-row forest batch, "
        f"measured {headline:.2f}x"
    )

    results = {
        "workload": {
            "n_train": args.n_train,
            "n_features": args.n_features,
            "n_trees": args.n_trees,
            "timing_repeats_best_of": args.repeats,
            "grid_cell_samples": args.grid_samples,
            "grid_cell_automl_iterations": args.grid_iterations,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count(),
        "note": (
            "kernel and per-member paths are asserted bitwise-identical before timing; "
            "the kernel win shrinks as batch size grows because the per-tree passes it "
            "removes are amortized over more rows"
        ),
        "predict_proba": predict_section,
        "committee_ale": ale_section,
        "grid_cell": grid_section,
        "asserted_min_speedup": {"model": "random_forest", "rows": 200, "speedup": 3.0},
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nheadline: {headline:.2f}x forest predict_proba at 200 rows")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
