"""Benchmark the serving subsystem: micro-batching vs one-at-a-time.

Fits a small AutoML ensemble on the Scream dataset, publishes it through
the model registry, and drives the in-process serving client from
concurrent threads under three regimes:

- ``unbatched`` — ``max_batch=1``: every request is its own model call
  (the naive serving baseline);
- ``batched``   — ``max_batch=32`` with a short flush deadline: the
  batcher coalesces concurrent single-row requests into one
  ``predict_batch`` call, amortizing the per-call ensemble overhead;
- ``overload``  — a deliberately tiny queue under a thundering herd, to
  measure the shed rate (typed :class:`BackpressureError`, never a
  block or a drop).

Two invariants are asserted, not merely reported: served labels are
identical to offline ``AutoML.predict`` for every row, and batched
throughput is at least 2x the unbatched baseline.  Results land in
``BENCH_serve.json``.

Caveat: in a single-CPU container (the expected environment) the batching
win measured here comes from amortizing per-call Python/ensemble overhead
across coalesced rows, not from parallel hardware; multi-core machines
should see a larger gap still.

Run: ``PYTHONPATH=src python benchmarks/bench_serve.py``
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
from pathlib import Path

from repro.automl import AutoMLClassifier
from repro.datasets import generate_scream_dataset
from repro.exceptions import BackpressureError
from repro.runtime.clock import Stopwatch
from repro.serve import InProcessClient, ModelRegistry, ServeConfig, ServeService

REPO_ROOT = Path(__file__).resolve().parent.parent


def drive(service: ServeService, X, total_requests: int, n_threads: int, *, retry_on_shed: bool = False) -> dict:
    """Fire ``total_requests`` single-row requests from ``n_threads`` clients.

    With ``retry_on_shed`` a shed request backs off briefly and retries —
    the well-behaved-client overload pattern — so every request is
    eventually served and the shed count measures sustained pressure.
    Returns wall seconds, per-request outcomes, and the service's own
    metrics snapshot so throughput and latency come from the same run.
    """
    client = InProcessClient(service)
    cursor = {"next": 0}
    outcomes = {"ok": 0, "shed": 0}
    labels: dict[int, int] = {}
    lock = threading.Lock()

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= total_requests:
                    return
                cursor["next"] += 1
            row_index = index % X.shape[0]
            while True:
                try:
                    response = client.predict(X[row_index : row_index + 1].tolist())
                except BackpressureError:
                    with lock:
                        outcomes["shed"] += 1
                    if not retry_on_shed:
                        break
                    threading.Event().wait(0.002)
                    continue
                with lock:
                    outcomes["ok"] += 1
                    labels[row_index] = response["labels"][0]
                break

    watch = Stopwatch()
    threads = [threading.Thread(target=worker) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = watch.elapsed()
    snapshot = service.metrics()
    return {"seconds": seconds, "outcomes": outcomes, "labels": labels, "metrics": snapshot}


def regime_summary(name: str, run: dict, total_requests: int) -> dict:
    latency = run["metrics"]["histograms"].get("latency_seconds", {})
    served = run["outcomes"]["ok"]
    shed = run["outcomes"]["shed"]
    summary = {
        "requests": total_requests,
        "served": served,
        "shed": shed,
        "shed_rate": round(shed / (served + shed), 4),
        "wall_seconds": round(run["seconds"], 4),
        "throughput_rps": round(served / run["seconds"], 2),
        "latency_p50_ms": round(latency.get("p50", 0.0) * 1e3, 3),
        "latency_p95_ms": round(latency.get("p95", 0.0) * 1e3, 3),
        "mean_batch_size": round(
            run["metrics"]["histograms"].get("batch_size", {}).get("mean", 0.0), 2
        ),
    }
    print(
        f"{name:10s} {summary['wall_seconds']:8.2f}s  "
        f"{summary['throughput_rps']:8.1f} req/s  p95 {summary['latency_p95_ms']:7.2f} ms  "
        f"mean batch {summary['mean_batch_size']:5.2f}  shed {summary['shed']}"
    )
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-samples", type=int, default=200, help="Scream dataset size")
    parser.add_argument("--requests", type=int, default=400, help="requests per regime")
    parser.add_argument("--threads", type=int, default=8, help="concurrent client threads")
    parser.add_argument("--iterations", type=int, default=8, help="AutoML candidates")
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_serve.json", help="result file"
    )
    args = parser.parse_args(argv)

    print(f"fitting the served model ({args.iterations} candidates, {os.cpu_count()} CPU core(s))")
    data = generate_scream_dataset(args.n_samples, random_state=args.seed)
    automl = AutoMLClassifier(
        n_iterations=args.iterations, ensemble_size=5, min_distinct_members=3, random_state=7
    ).fit(data.X, data.y)
    offline_labels = automl.predict(data.X)

    with tempfile.TemporaryDirectory(prefix="bench-serve-registry-") as registry_dir:
        registry = ModelRegistry(registry_dir)
        registry.register("scream", automl, data.X, data.domains)
        bundle = registry.load("scream")

        regimes = {
            "unbatched": ServeConfig(max_batch=1, max_delay=0.0, queue_bound=1024),
            "batched": ServeConfig(max_batch=32, max_delay=0.002, queue_bound=1024),
            # Tiny queue, slow drain, no client backoff: the herd must
            # shed with a typed error, not block.
            "overload": ServeConfig(max_batch=1, max_delay=0.0, queue_bound=2),
        }
        summaries: dict[str, dict] = {}
        for name, config in regimes.items():
            with ServeService(bundle, config) as service:
                run = drive(
                    service, data.X, args.requests, args.threads, retry_on_shed=(name == "overload")
                )
                summaries[name] = regime_summary(name, run, args.requests)
                for row_index, label in run["labels"].items():
                    assert label == int(offline_labels[row_index]), (
                        f"{name}: served label diverged from offline predict at row {row_index}"
                    )

    speedup = summaries["batched"]["throughput_rps"] / summaries["unbatched"]["throughput_rps"]
    assert summaries["unbatched"]["shed"] == 0 and summaries["batched"]["shed"] == 0
    assert summaries["overload"]["shed"] > 0, "overload regime never hit the queue bound"
    assert speedup >= 2.0, (
        f"micro-batching must be >= 2x the unbatched baseline, measured {speedup:.2f}x"
    )

    results = {
        "workload": {
            "requests_per_regime": args.requests,
            "client_threads": args.threads,
            "rows_per_request": 1,
            "n_samples": args.n_samples,
            "automl_iterations": args.iterations,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count(),
        "note": (
            "single-CPU container: the batched speedup comes from amortizing per-call "
            "ensemble overhead across coalesced rows, not from parallel hardware"
        ),
        "regimes": summaries,
        "batched_speedup_vs_unbatched": round(speedup, 2),
        "served_labels_match_offline_predict": True,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nbatched speedup vs unbatched: {speedup:.2f}x")
    print(f"overload shed rate: {summaries['overload']['shed_rate']:.1%}")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
