"""Ablation AB4: the interpretation algorithm — ALE vs PDP.

The paper uses ALE but notes any model-agnostic interpreter slots into the
algorithm (§3).  This ablation swaps in partial dependence (PDP) with
everything else fixed and compares (a) the flagged subspace and (b) the
downstream accuracy after one feedback round.  On a task with correlated
features ALE is the safer choice (PDP evaluates the model off the data
manifold); on this task's mostly independent features the two should
broadly agree — which is itself worth measuring.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, within_ale_committee
from repro.datasets import ScreamOracle, generate_scream_dataset
from repro.ml import balanced_accuracy
from repro.ml.metrics import accuracy
from repro.rng import check_random_state

from .conftest import banner, bench_scale


@pytest.mark.benchmark(group="ablation")
def test_ablation_interpreter_ale_vs_pdp(run_once):
    paper = bench_scale() == "paper"
    n_train = 1161 if paper else 300
    iterations = 120 if paper else 20

    def experiment():
        train = generate_scream_dataset(n_train, random_state=4242)
        test = generate_scream_dataset(3 * n_train, random_state=4243)
        oracle = ScreamOracle(random_state=4244)
        automl = AutoMLClassifier(
            n_iterations=iterations, ensemble_size=8, min_distinct_members=5,
            scorer=accuracy, random_state=0,
        ).fit(train.X, train.y)
        committee = within_ale_committee(automl)
        baseline = balanced_accuracy(test.y, automl.predict(test.X))

        outcome = {"baseline": baseline}
        probe = np.column_stack(
            [domain.sample(4096, check_random_state(0)) for domain in train.domains]
        )
        masks = {}
        for interpreter in ("ale", "pdp"):
            feedback = AleFeedback(grid_size=24, interpreter=interpreter, threshold_scale=2.0)
            report = feedback.analyze(committee, train.X, train.domains)
            masks[interpreter] = (
                report.region.contains(probe) if report.region else np.zeros(4096, dtype=bool)
            )
            points = report.suggest(n_train // 4, random_state=1)
            labels = oracle.label(points)
            retrained = AutoMLClassifier(
                n_iterations=iterations, ensemble_size=8, min_distinct_members=5,
                scorer=accuracy, random_state=2,
            ).fit(*_stack(train, points, labels))
            outcome[interpreter] = balanced_accuracy(test.y, retrained.predict(test.X))
        union = (masks["ale"] | masks["pdp"]).sum()
        outcome["region_jaccard"] = float((masks["ale"] & masks["pdp"]).sum() / union) if union else 1.0
        return outcome

    outcome = run_once(experiment)
    banner("Ablation AB4 — interpreter choice: ALE vs PDP feedback")
    print(f"baseline (no feedback):     {outcome['baseline']:.3f}")
    print(f"after ALE-variance feedback: {outcome['ale']:.3f}")
    print(f"after PDP-variance feedback: {outcome['pdp']:.3f}")
    print(f"flagged-region Jaccard(ALE, PDP): {outcome['region_jaccard']:.3f}")

    # Both interpreters must produce usable feedback on this task.  This is
    # a single unrepeated round (unlike Table 1's repeated protocol), so
    # the tolerance absorbs one-shot variance; the printed numbers carry
    # the actual comparison.
    assert outcome["ale"] > outcome["baseline"] - 0.08
    assert outcome["pdp"] > outcome["baseline"] - 0.08
    # With (mostly) independent features the flagged regions overlap.
    assert outcome["region_jaccard"] > 0.1


def _stack(train, points, labels):
    augmented = train.extended(points, labels)
    return augmented.X, augmented.y
