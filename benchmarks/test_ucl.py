"""Benchmark U1: reproduce the §4.2 firewall ("UCL") numbers.

Paper shape: ALE-based feedback improves balanced accuracy over the raw
training data with statistical significance (p ≈ 0.02 / 0.04); the
active-learning baselines land within a couple of points of ALE without
significance either way.  On this dataset every strategy is pool-bound.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_SCALE_UCL, UCLConfig, run_ucl

from .conftest import banner, bench_scale

_DEFAULT = UCLConfig(
    n_samples=2500,
    n_feedback=120,
    n_resplits=3,
    cross_runs=3,
    automl_iterations=12,
    ensemble_size=8,
)


def _config() -> UCLConfig:
    return PAPER_SCALE_UCL if bench_scale() == "paper" else _DEFAULT


@pytest.mark.benchmark(group="ucl")
def test_ucl_firewall(run_once):
    table, record = run_once(run_ucl, _config())
    banner("§4.2 — firewall dataset balanced accuracy (pool-bound strategies)")
    print(record.tables["ucl"])
    print()
    for name in ("within_ale_pool", "cross_ale_pool"):
        p = table.p_value("no_feedback", name)
        print(f"P(no_feedback, {name}) = {p:.3g}   (paper: 0.02 / 0.04)")

    mean = {name: table.scores(name).mean for name in table.names()}
    # ALE feedback does not hurt, and stays within a couple of points of
    # the active-learning baselines (paper: baselines within 1-2%).
    assert mean["within_ale_pool"] >= mean["no_feedback"] - 0.02, mean
    assert mean["cross_ale_pool"] >= mean["no_feedback"] - 0.02, mean
    for baseline in ("confidence", "qbc"):
        assert abs(mean[baseline] - mean["within_ale_pool"]) < 0.10, mean
