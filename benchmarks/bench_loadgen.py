"""Benchmark the serving transports under generated load.

Fits a small AutoML ensemble on the Scream dataset, publishes it through
the model registry, serves it over both HTTP transports (thread-per-
connection ``serve_http`` and the event-loop ``serve_async_http``), and
drives them with :mod:`repro.loadgen` workload shapes:

- ``equivalence`` — one seeded open-loop workload replayed against both
  transports; every response body must be bitwise identical, because
  both stacks share one :class:`RequestDispatcher`;
- ``retry_storm`` — a shed-amplifying client herd against a tiny queue;
  the zero-drop identity ``offered == completed + shed + timed_out``
  must hold with every retry accounted as a new offered attempt;
- ``flash_crowd`` — a mid-run arrival burst into the same tiny queue;
  backpressure must actually engage (shed-rate floor);
- ``churn_duel`` — a closed-loop, connection-per-request workload run
  against both transports (median of 3): the async loop must not lose
  to thread-per-connection on one CPU.

The first three are asserted, not merely reported.  Results land in
``BENCH_loadgen.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_loadgen.py``
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import tempfile
from pathlib import Path

from repro.automl import AutoMLClassifier
from repro.datasets import generate_scream_dataset
from repro.loadgen import (
    HttpTarget,
    WorkloadShape,
    check_accounting,
    check_shed_rate,
    flash_crowd,
    open_loop,
    retry_storm,
    run_workload,
)
from repro.rng import check_random_state
from repro.serve import ModelRegistry, ServeConfig, ServeService, serve_async_http, serve_http

REPO_ROOT = Path(__file__).resolve().parent.parent

TRANSPORTS = {"threaded": serve_http, "async": serve_async_http}


def _serve(transport: str, registry_dir: str, config: ServeConfig):
    service = ServeService.from_registry("scream", directory=registry_dir, config=config)
    return service, TRANSPORTS[transport](service)


def bench_equivalence(registry_dir: str, X, n_requests: int, seed: int) -> dict:
    """Replay one seeded request sequence; demand bitwise-identical bodies."""
    rng = check_random_state(seed)
    starts = rng.integers(0, X.shape[0] - 2, size=n_requests)
    replies: dict[str, list[tuple[int, bytes]]] = {}
    for transport in TRANSPORTS:
        service, server = _serve(
            transport, registry_dir, ServeConfig(max_batch=16, max_delay=0.002)
        )
        try:
            target = HttpTarget(server.url)
            replies[transport] = [
                target.exchange(X[s : s + 2].tolist(), timeout=10.0, plan={})
                for s in starts
            ]
        finally:
            server.close()
    threaded, async_ = replies["threaded"], replies["async"]
    assert all(status == 200 for status, _ in threaded + async_)
    assert threaded == async_, "transports served different bytes for identical requests"
    print(f"equivalence: {n_requests} requests, {sum(len(b) for _, b in threaded)} bytes, bitwise identical")
    return {
        "requests": n_requests,
        "payload_bytes": sum(len(body) for _, body in threaded),
        "bitwise_identical": True,
    }


def bench_overload(registry_dir: str, X, seed: int) -> dict:
    """Retry storm + flash crowd into a tiny queue: shed loudly, drop nothing."""
    config = ServeConfig(max_batch=2, max_delay=0.005, queue_bound=2, request_timeout=2.0)
    out: dict[str, dict] = {}

    service, server = _serve("async", registry_dir, config)
    try:
        storm = retry_storm(120, 400.0, max_retries=3, backoff=0.001, clients=8)
        report = run_workload(HttpTarget(server.url), X, storm, seed=seed)
    finally:
        server.close()
    check_accounting(report)  # zero-drop: every retry is an offered attempt
    assert report.offered > storm.n_requests, "storm never retried — overload did not engage"
    out["retry_storm"] = report.to_json()
    print(
        f"retry_storm: offered {report.offered} (of {storm.n_requests} logical), "
        f"completed {report.completed}, shed {report.shed}, timed_out {report.timed_out}"
    )

    service, server = _serve("async", registry_dir, config)
    try:
        crowd = flash_crowd(150, 80.0, 4000.0, clients=8, request_timeout=5.0)
        report = run_workload(HttpTarget(server.url), X, crowd, seed=seed)
    finally:
        server.close()
    check_accounting(report)
    check_shed_rate(report, min_rate=0.02)  # backpressure must actually engage
    out["flash_crowd"] = report.to_json()
    print(
        f"flash_crowd: offered {report.offered}, completed {report.completed}, "
        f"shed rate {report.shed_rate:.1%}, p99 {report.latency.get('p99', 0.0) * 1e3:.1f} ms"
    )
    return out


def bench_churn_duel(registry_dir: str, X, n_requests: int, clients: int, seed: int) -> dict:
    """Closed-loop connection churn, median of 3 per transport."""
    shape = WorkloadShape(
        name="churn_closed",
        kind="closed",
        n_requests=n_requests,
        clients=clients,
        new_connection_per_request=True,
    )
    config = ServeConfig(max_batch=16, max_delay=0.002)
    duel: dict[str, dict] = {}
    for transport in TRANSPORTS:
        throughputs, p99s = [], []
        for round_index in range(3):
            service, server = _serve(transport, registry_dir, config)
            try:
                report = run_workload(
                    HttpTarget(server.url), X, shape, seed=seed + round_index
                )
            finally:
                server.close()
            check_accounting(report)
            assert report.completed == n_requests * clients
            throughputs.append(report.throughput_rps)
            p99s.append(float(report.latency["p99"]))
        duel[transport] = {
            "throughput_rps_median": round(statistics.median(throughputs), 2),
            "throughput_rps_runs": [round(t, 2) for t in throughputs],
            "latency_p99_ms_median": round(statistics.median(p99s) * 1e3, 3),
        }
        print(
            f"churn_duel {transport:8s}: median {duel[transport]['throughput_rps_median']:8.1f} req/s, "
            f"p99 {duel[transport]['latency_p99_ms_median']:7.2f} ms"
        )
    ratio = duel["async"]["throughput_rps_median"] / duel["threaded"]["throughput_rps_median"]
    duel["async_over_threaded"] = round(ratio, 3)
    assert ratio >= 0.9, (
        f"async transport fell far behind thread-per-connection: {ratio:.2f}x"
    )
    return duel


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-samples", type=int, default=200, help="Scream dataset size")
    parser.add_argument("--equivalence-requests", type=int, default=60)
    parser.add_argument("--duel-requests", type=int, default=40, help="per client, per round")
    parser.add_argument("--duel-clients", type=int, default=6)
    parser.add_argument("--iterations", type=int, default=8, help="AutoML candidates")
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_loadgen.json", help="result file"
    )
    args = parser.parse_args(argv)

    print(f"fitting the served model ({args.iterations} candidates, {os.cpu_count()} CPU core(s))")
    data = generate_scream_dataset(args.n_samples, random_state=args.seed)
    automl = AutoMLClassifier(
        n_iterations=args.iterations, ensemble_size=5, min_distinct_members=3, random_state=7
    ).fit(data.X, data.y)

    with tempfile.TemporaryDirectory(prefix="bench-loadgen-registry-") as registry_dir:
        registry = ModelRegistry(registry_dir)
        registry.register("scream", automl, data.X, data.domains)

        equivalence = bench_equivalence(
            registry_dir, data.X, args.equivalence_requests, args.seed
        )
        overload = bench_overload(registry_dir, data.X, args.seed)
        duel = bench_churn_duel(
            registry_dir, data.X, args.duel_requests, args.duel_clients, args.seed
        )

    results = {
        "workload": {
            "n_samples": args.n_samples,
            "automl_iterations": args.iterations,
            "equivalence_requests": args.equivalence_requests,
            "duel_requests_per_client": args.duel_requests,
            "duel_clients": args.duel_clients,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count(),
        "transport_equivalence": equivalence,
        "overload": overload,
        "churn_duel": duel,
        "zero_drop_identity_held": True,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nasync/threaded churn throughput: {duel['async_over_threaded']:.2f}x")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
