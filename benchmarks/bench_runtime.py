"""Benchmark the ``repro.runtime`` execution engine on cross-ALE fits.

Times the ISSUE-3 workload — a cross-ALE committee of independent AutoML
fits — under every execution regime the runtime offers:

- ``serial``       — ``SerialExecutor``, no cache (the pre-runtime path);
- ``process_2/4``  — ``ProcessExecutor`` with 2 and 4 workers, no cache;
- ``cache_cold``   — serial with an empty artifact cache (store overhead);
- ``cache_warm``   — the same cache again (every fit answered from disk).

Every regime must produce bitwise-identical committees (checked via
predictions on the training grid); the warm rerun must execute zero
AutoML fits.  Results, timings, and speedups land in ``BENCH_runtime.json``
— including ``cpu_count``, because process-pool speedups are physically
bounded by the cores actually present.

Run: ``PYTHONPATH=src python benchmarks/bench_runtime.py``
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.automl import AutoMLSpec
from repro.datasets import generate_scream_dataset
from repro.ml.metrics import accuracy
from repro.rng import check_random_state, spawn_seeds
from repro.runtime import (
    ArtifactCache,
    ProcessExecutor,
    SerialExecutor,
    Task,
    TaskRuntime,
)
from repro.runtime.clock import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent


def build_tasks(args) -> tuple[list[Task], np.ndarray]:
    dataset = generate_scream_dataset(args.n_samples, random_state=args.seed)
    spec = AutoMLSpec(
        n_iterations=args.iterations,
        ensemble_size=args.ensemble_size,
        min_distinct_members=2,
        scorer=accuracy,
    )
    seeds = spawn_seeds(check_random_state(args.seed + 1), args.cross_runs)
    tasks = [
        Task(
            fn_name="automl.fit",
            payload={"factory": spec, "X": dataset.X, "y": dataset.y},
            seed_path=(seed,),
            label=f"cross-run[{index}]",
        )
        for index, seed in enumerate(seeds)
    ]
    return tasks, dataset.X


def run_regime(name: str, runtime: TaskRuntime, tasks, X) -> tuple[float, list]:
    watch = Stopwatch()
    committees = runtime.run(tasks)
    seconds = watch.elapsed()
    fingerprints = [model.predict(X) for model in committees]
    print(
        f"{name:12s} {seconds:8.2f}s  "
        f"executed={runtime.stats['executed']} cache_hits={runtime.stats['cache_hits']}"
    )
    return seconds, fingerprints


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-samples", type=int, default=200, help="scream dataset size")
    parser.add_argument("--cross-runs", type=int, default=6, help="committee size (independent fits)")
    parser.add_argument("--iterations", type=int, default=8, help="AutoML candidates per fit")
    parser.add_argument("--ensemble-size", type=int, default=4)
    parser.add_argument("--seed", type=int, default=20211110)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_runtime.json", help="result file"
    )
    args = parser.parse_args(argv)

    tasks, X = build_tasks(args)
    print(f"workload: {len(tasks)} cross-ALE AutoML fits, {os.cpu_count()} CPU core(s)\n")

    timings: dict[str, float] = {}
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-runtime-cache-"))
    try:
        regimes = {
            "serial": TaskRuntime(SerialExecutor()),
            "process_2": TaskRuntime(ProcessExecutor(max_workers=2)),
            "process_4": TaskRuntime(ProcessExecutor(max_workers=4)),
            "cache_cold": TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir)),
            "cache_warm": TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir)),
        }
        fingerprints: dict[str, list] = {}
        for name, runtime in regimes.items():
            timings[name], fingerprints[name] = run_regime(name, runtime, tasks, X)
        warm_fits = regimes["cache_warm"].executions_of("automl.fit")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    reference = fingerprints["serial"]
    bitwise_identical = all(
        all(np.array_equal(a, b) for a, b in zip(reference, prints))
        for prints in fingerprints.values()
    )
    assert bitwise_identical, "executors disagree — the determinism contract is broken"
    assert warm_fits == 0, f"cache-warm rerun executed {warm_fits} AutoML fits, expected 0"

    results = {
        "workload": {
            "n_samples": args.n_samples,
            "cross_runs": args.cross_runs,
            "automl_iterations": args.iterations,
            "ensemble_size": args.ensemble_size,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count(),
        "timings_seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "speedups_vs_serial": {
            name: round(timings["serial"] / seconds, 2)
            for name, seconds in timings.items()
            if name != "serial"
        },
        "cache_warm_automl_fits": warm_fits,
        "bitwise_identical": bitwise_identical,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nspeedups vs serial: {results['speedups_vs_serial']}")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
