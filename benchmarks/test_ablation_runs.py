"""Ablation AB2: how many AutoML runs does Cross-ALE need?

The paper uses 10 runs but notes the cost ("each AutoML run can take a
long time").  This ablation measures the disagreement profile's stability
as the committee grows: the high-variance region identified by R runs
should converge — additional runs change the flagged subspace less and
less, which is what makes a small R practical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.automl import AutoMLClassifier
from repro.core import AleFeedback, cross_ale_committee
from repro.datasets import generate_scream_dataset
from repro.rng import check_random_state

from .conftest import banner, bench_scale


@pytest.mark.benchmark(group="ablation")
def test_ablation_cross_ale_runs(run_once):
    paper = bench_scale() == "paper"
    n_train = 1161 if paper else 300
    iterations = 120 if paper else 12
    max_runs = 10 if paper else 6

    dataset = generate_scream_dataset(n_train, random_state=777)

    def build_runs():
        return [
            AutoMLClassifier(
                n_iterations=iterations, ensemble_size=6, min_distinct_members=4,
                random_state=1000 + i,
            ).fit(dataset.X, dataset.y)
            for i in range(max_runs)
        ]

    runs = run_once(build_runs)
    feedback = AleFeedback(grid_size=24)

    banner("Ablation AB2 — Cross-ALE committee size (runs) vs flagged region")
    print("runs,threshold,n_regions,relative_volume,jaccard_vs_full")

    full_report = feedback.analyze(cross_ale_committee(runs), dataset.X, dataset.domains)
    probe = np.column_stack([d.sample(4096, check_random_state(0)) for d in dataset.domains])
    full_mask = full_report.region.contains(probe)

    jaccards = {}
    for r in range(2, max_runs + 1):
        report = feedback.analyze(cross_ale_committee(runs[:r]), dataset.X, dataset.domains)
        mask = report.region.contains(probe)
        union = (mask | full_mask).sum()
        jaccard = float((mask & full_mask).sum() / union) if union else 1.0
        jaccards[r] = jaccard
        print(
            f"{r},{report.threshold:.4g},{len(report.region)},"
            f"{report.region.volume():.3f},{jaccard:.3f}"
        )

    # Convergence: the flagged region with most of the committee resembles
    # the full committee's region far more than the 2-run region does.
    assert jaccards[max_runs] >= jaccards[2] - 0.05
    assert jaccards[max_runs - 1] > 0.5
