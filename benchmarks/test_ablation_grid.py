"""Ablation AB3: ALE grid resolution vs subspace recovery.

Ground truth is constructed: a committee of two threshold models whose
decision steps sit at x=4 and x=6, so the true disagreement region on
feature 0 is exactly [4, 6].  The ablation measures how precisely the
flagged interval recovers that region as the ALE grid refines — the
resolution/cost trade-off an operator tunes with ``grid_size``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AleFeedback, FeatureDomain, Interval, IntervalUnion
from repro.rng import check_random_state
from repro.ml.linear import softmax

from .conftest import banner


class _StepModel:
    def __init__(self, threshold, k=12.0):
        self.threshold = threshold
        self.k = k

    def predict_proba(self, X):
        logits = self.k * (np.asarray(X)[:, 0] - self.threshold)
        return softmax(np.column_stack([np.zeros_like(logits), logits]))


def _coverage(flagged: IntervalUnion, truth: Interval) -> float:
    """Fraction of the true disagreement region the flagged union covers.

    Coverage, not IoU: centered ALE curves with different step locations
    legitimately disagree in their flat tails too (the paper's Figure 1
    shows exactly this at both ends of the link-rate range), so flagged
    mass outside the step region is expected, not a localization error.
    """
    truth_union = IntervalUnion([truth])
    return flagged.intersection(truth_union).total_length / truth.length


@pytest.mark.benchmark(group="ablation")
def test_ablation_grid_resolution(run_once):
    rng = check_random_state(0)
    X = rng.uniform(0, 10, size=(3000, 2))
    domains = [FeatureDomain("x0", 0, 10), FeatureDomain("x1", 0, 10)]
    committee = [_StepModel(4.0), _StepModel(6.0)]
    truth = Interval(4.2, 5.8)  # interior of the [4, 6] step-disagreement zone

    def sweep():
        results = {}
        for grid_size in (4, 8, 16, 32, 64):
            report = AleFeedback(grid_size=grid_size, grid_strategy="uniform").analyze(
                committee, X, domains
            )
            flagged = report.intervals_for("x0")
            results[grid_size] = _coverage(flagged, truth)
        return results

    coverage = run_once(sweep)
    banner("Ablation AB3 — ALE grid resolution vs coverage of the true disagreement region")
    print("grid_size,coverage_of_truth")
    for grid_size, value in coverage.items():
        print(f"{grid_size},{value:.3f}")

    # Refining the grid must improve coverage substantially, then level off.
    assert coverage[32] >= coverage[4]
    assert coverage[32] > 0.9
    assert abs(coverage[64] - coverage[32]) < 0.1  # diminishing returns
