"""Benchmark T1: reproduce Table 1 (Scream-vs-rest, nine algorithms).

Regenerates the paper's Table 1 rows — balanced accuracy ± std plus the
one-sided Wilcoxon p-value columns — at a laptop-scale budget.  The
assertions pin the paper's *shape*:

- ALE feedback (within and cross) beats no-feedback;
- Cross-ALE >= Within-ALE (more diverse committee);
- uniform sampling is the weakest augmentation;
- upsampling is at or near the top (label imbalance is the root problem),
  with Cross-ALE close behind;
- the pool-restricted ALE variants drop back toward the active-learning
  baselines.
"""

from __future__ import annotations

import pytest

from repro.experiments import PAPER_SCALE, Table1Config, format_comparison, run_table1

from .conftest import banner, bench_scale

# The AutoML candidate budget is the fidelity lever that matters most at
# laptop scale: stronger per-run search concentrates committee disagreement
# where data is genuinely lacking (see EXPERIMENTS.md).  30 candidates per
# fit keeps the full table under ~10 minutes.
_DEFAULT = Table1Config(
    n_train=350,
    n_test=1000,
    n_pool=500,
    n_feedback=84,
    n_repeats=3,
    cross_runs=4,
    automl_iterations=30,
    ensemble_size=10,
    threshold_scale=2.0,
)


def _config() -> Table1Config:
    return PAPER_SCALE if bench_scale() == "paper" else _DEFAULT


@pytest.mark.benchmark(group="table1")
def test_table1_scream_vs_rest(run_once):
    table, record = run_once(run_table1, _config())
    banner("Table 1 — Scream vs rest balanced accuracy (paper: HotNets'21 Table 1)")
    print(record.tables["table1"])
    print()
    print(format_comparison(table))

    mean = {name: table.scores(name).mean for name in table.names()}

    # Robust shape assertions at laptop scale (see EXPERIMENTS.md for the
    # orderings that need paper-scale budgets to stabilize).
    # 1. The headline claim: ALE feedback improves on the raw training data.
    assert mean["within_ale"] > mean["no_feedback"], mean
    assert mean["cross_ale"] > mean["no_feedback"], mean
    assert table.p_value("no_feedback", "within_ale") < 0.05, "within-ALE gain not significant"
    # 2. Placement matters: ALE does at least as well as blind uniform data.
    assert mean["within_ale"] >= mean["uniform"] - 0.01, mean
    assert mean["cross_ale"] >= mean["uniform"] - 0.01, mean
    # 3. Upsampling (fixing the root-cause imbalance) is a strong row.
    assert mean["upsampling"] > mean["no_feedback"], mean
    # 4. Pool restriction cannot beat sampling the whole subspace by much.
    assert mean["within_ale_pool"] <= mean["within_ale"] + 0.03, mean
    assert mean["cross_ale_pool"] <= mean["cross_ale"] + 0.03, mean
