"""Benchmark the sharded Table-1 experiment grid end-to-end.

Times ``run_table1`` — dataset generation, per-repeat initial fits, and
every (repeat, strategy) cell, all submitted as runtime tasks — under the
execution regimes the grid sharding exists for:

- ``serial``      — implicit serial runtime, no cache (the baseline path);
- ``process_2``   — grid cells on a 2-worker process pool, no cache;
- ``cache_cold``  — serial with an empty artifact cache (store overhead);
- ``cache_warm``  — the same cache again: the whole grid answered from
  disk with **zero** netsim dataset generations, zero AutoML fits, and
  zero cell executions.

Every regime must produce bitwise-identical balanced-accuracy scores for
every algorithm; both invariants are asserted, not merely reported.
Results land in ``BENCH_grid.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_grid.py``
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments import Table1Config, run_table1
from repro.experiments.grid import clear_dataset_memo
from repro.runtime import ArtifactCache, ProcessExecutor, SerialExecutor, TaskRuntime
from repro.runtime.clock import Stopwatch

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Task families the grid shards; a warm cache must execute none of them.
GRID_TASKS = ("repro.experiments.tasks:scream_dataset", "automl.fit", "repro.experiments.tasks:grid_cell")

ALGORITHMS = ["no_feedback", "uniform", "cross_ale", "within_ale_pool"]


def build_config(args) -> Table1Config:
    return Table1Config(
        n_train=args.n_train,
        n_test=args.n_test,
        n_pool=args.n_pool,
        n_feedback=args.n_feedback,
        n_test_sets=4,
        n_repeats=args.repeats,
        cross_runs=2,
        automl_iterations=args.iterations,
        ensemble_size=3,
        min_distinct_members=2,
        grid_size=8,
        seed=args.seed,
    )


def run_regime(name: str, runtime: TaskRuntime, config: Table1Config):
    clear_dataset_memo()  # each regime pays its real dataset-generation cost
    watch = Stopwatch()
    table, _ = run_table1(config, algorithms=list(ALGORITHMS), runtime=runtime)
    seconds = watch.elapsed()
    scores = {algo: table.scores(algo).scores for algo in ALGORITHMS}
    print(
        f"{name:12s} {seconds:8.2f}s  "
        f"executed={runtime.stats['executed']} cache_hits={runtime.stats['cache_hits']} "
        f"failed={runtime.stats['failed']}"
    )
    return seconds, scores, {fn: runtime.executions_of(fn) for fn in GRID_TASKS}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-train", type=int, default=60)
    parser.add_argument("--n-test", type=int, default=80)
    parser.add_argument("--n-pool", type=int, default=60)
    parser.add_argument("--n-feedback", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=4, help="AutoML candidates per fit")
    parser.add_argument("--seed", type=int, default=20211110)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_grid.json", help="result file"
    )
    args = parser.parse_args(argv)

    config = build_config(args)
    n_cells = args.repeats * len(ALGORITHMS)
    print(
        f"workload: {n_cells} grid cells ({args.repeats} repeats x {len(ALGORITHMS)} "
        f"strategies), {os.cpu_count()} CPU core(s)\n"
    )

    timings: dict[str, float] = {}
    all_scores: dict[str, dict[str, np.ndarray]] = {}
    executions: dict[str, dict[str, int]] = {}
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-grid-cache-"))
    try:
        regimes = {
            "serial": TaskRuntime(SerialExecutor()),
            "process_2": TaskRuntime(ProcessExecutor(max_workers=2)),
            "cache_cold": TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir)),
            "cache_warm": TaskRuntime(SerialExecutor(), cache=ArtifactCache(cache_dir)),
        }
        for name, runtime in regimes.items():
            timings[name], all_scores[name], executions[name] = run_regime(name, runtime, config)
        warm_stats = regimes["cache_warm"].stats
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    reference = all_scores["serial"]
    bitwise_identical = all(
        all(np.array_equal(reference[algo], scores[algo]) for algo in ALGORITHMS)
        for scores in all_scores.values()
    )
    assert bitwise_identical, "grid regimes disagree — the determinism contract is broken"
    warm_executions = executions["cache_warm"]
    assert warm_stats["executed"] == 0 and all(
        count == 0 for count in warm_executions.values()
    ), f"cache-warm rerun executed work: {warm_executions}"

    results = {
        "workload": {
            "n_cells": n_cells,
            "algorithms": list(ALGORITHMS),
            "config": {k: getattr(config, k) for k in Table1Config.__dataclass_fields__},
        },
        "cpu_count": os.cpu_count(),
        "timings_seconds": {name: round(seconds, 4) for name, seconds in timings.items()},
        "speedups_vs_serial": {
            name: round(timings["serial"] / seconds, 2)
            for name, seconds in timings.items()
            if name != "serial"
        },
        "executions_by_regime": executions,
        "cache_warm_executed": warm_stats["executed"],
        "bitwise_identical": bitwise_identical,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"\nspeedups vs serial: {results['speedups_vs_serial']}")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
