"""Ablation AB1: ALE-variance vs prediction-entropy disagreement.

The paper frames its algorithm as "QBC with the disagreement metric
swapped" (§3): vote entropy at candidate points becomes ALE variance over
feature space.  This ablation holds everything else fixed — same initial
AutoML, same candidate pool, same number of added points — and compares
the two metrics head-to-head in their pool-restricted forms, plus ALE's
unrestricted form (the capability QBC structurally lacks).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import Table1Config, run_table1

from .conftest import banner, bench_scale

_DEFAULT = Table1Config(
    n_train=350,
    n_test=1000,
    n_pool=500,
    n_feedback=84,
    n_repeats=3,
    cross_runs=4,
    automl_iterations=12,
    ensemble_size=8,
    threshold_scale=2.0,
    seed=31415,
)


@pytest.mark.benchmark(group="ablation")
def test_ablation_disagreement_metric(run_once):
    config = _DEFAULT if bench_scale() != "paper" else Table1Config(
        n_train=1161, n_test=4850, n_pool=2000, n_feedback=280,
        n_repeats=10, cross_runs=10, automl_iterations=120, ensemble_size=16,
    )
    algorithms = ["no_feedback", "qbc", "within_ale_pool", "within_ale"]
    table, record = run_once(run_table1, config, algorithms=algorithms)
    banner("Ablation AB1 — disagreement metric: prediction entropy (QBC) vs ALE variance")
    print(record.tables["table1"])

    mean = {name: table.scores(name).mean for name in table.names()}
    # Pool-restricted, the two metrics are comparable (paper: pool variants
    # land in the same band as active learning)...
    assert abs(mean["within_ale_pool"] - mean["qbc"]) < 0.10, mean
    # ...but unrestricted ALE (sampling the whole flagged subspace) is the
    # structural advantage.
    assert mean["within_ale"] >= mean["within_ale_pool"] - 0.03, mean
