"""Benchmark the retraining loop: trigger→promotion, cache hits, shadow cost.

Three measurements, each asserted rather than merely reported:

- **trigger → promotion wall time** — the demo scenario (biased
  incumbent, boundary-hugging traffic) is run end to end; the time from
  the first retrain trigger to the promotion landing in the manifest is
  recorded, and the loop must actually promote;
- **warm-cache retrain** — the same retrain (identical queue contents,
  identical seed path) is re-submitted through a fresh runtime over the
  same artifact cache: it must be a pure cache hit (zero refits) and
  dramatically cheaper than the cold fit;
- **shadow overhead** — the serving engine is driven with and without a
  full-mirror shadow attached; served p99 latency with mirroring may
  exceed the baseline by at most 10%.  Mirroring runs on the batcher
  thread *after* replies are delivered, so it consumes idle headroom
  between batches; the driver therefore paces requests (unsaturated
  serving, the regime shadowing is designed for) rather than saturating
  a single CPU with back-to-back submits, where any post-reply work
  would necessarily land on the next request's queue wait.

Results land in ``BENCH_loop.json``.

Run: ``PYTHONPATH=src python benchmarks/bench_loop.py``
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.automl import AutoMLClassifier, AutoMLSpec
from repro.loop import LoopConfig, LoopService, RetrainController
from repro.loop.demo import demo_oracle
from repro.rng import check_random_state
from repro.runtime import ArtifactCache, SerialExecutor, TaskRuntime
from repro.runtime.clock import Stopwatch
from repro.serve import ModelRegistry, ServeConfig, ServeService, ShadowMirror
from repro.featurespace import FeatureDomain

REPO_ROOT = Path(__file__).resolve().parent.parent

DOMAINS = (FeatureDomain("f0", 0.0, 1.0), FeatureDomain("f1", 0.0, 1.0))


def _biased_training_set(n: int, seed: int):
    rng = check_random_state(seed)
    X = rng.uniform(0.0, 1.0, size=(4 * n, 2))
    X = X[np.abs(X[:, 0] + X[:, 1] - 1.0) > 0.35][:n]
    return X, demo_oracle(X)


def bench_trigger_to_promotion(workdir: Path, args) -> tuple[dict, RetrainController]:
    """Run the loop end to end; time trigger→promotion."""
    spec = AutoMLSpec(
        n_iterations=args.iterations, ensemble_size=4, min_distinct_members=2
    )
    rng = check_random_state(args.seed)
    X_base, y_base = _biased_training_set(150, args.seed)
    incumbent = AutoMLClassifier(
        n_iterations=args.iterations,
        ensemble_size=4,
        min_distinct_members=2,
        random_state=args.seed + 1,
    ).fit(X_base, y_base)
    registry = ModelRegistry(workdir / "registry")
    registry.register("bench", incumbent, X_base, DOMAINS, promote=True)
    serve = ServeService.from_registry(
        "bench",
        directory=registry.directory,
        config=ServeConfig(max_batch=16, max_delay=0.0, disagreement_threshold=0.15),
    )
    config = LoopConfig(
        min_queue_depth=8,
        min_served_points=16,
        uncertain_rate=0.9,
        shadow_fraction=1.0,
        min_shadow_rows=16,
        score_margin=-0.1,
        max_ale_drift=2.0,
        retrain_seed=args.seed,
    )
    X_eval = rng.uniform(0.0, 1.0, size=(200, 2))
    runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(workdir / "cache"))
    controller = RetrainController(
        runtime, spec, X_base, y_base, X_eval, demo_oracle(X_eval), config=config
    )
    loop = LoopService(serve, controller, oracle=demo_oracle, config=config)

    triggered_at = None
    promotion_seconds = None
    watch = Stopwatch()
    try:
        for _ in range(32):
            rows = rng.uniform(0.0, 1.0, size=(24, 2))
            rows[:, 1] = np.clip(1.0 - rows[:, 0] + rng.normal(0.0, 0.12, 24), 0.0, 1.0)
            serve.predict(rows)
            event = loop.tick()
            if event["action"] == "retrained" and triggered_at is None:
                triggered_at = watch.elapsed()
            if event["action"] == "promoted":
                promotion_seconds = watch.elapsed() - triggered_at
                break
        assert promotion_seconds is not None, "the loop never promoted"
        assert registry.promoted_version("bench") == 2
        status = loop.status()
    finally:
        serve.close()
    summary = {
        "trigger_to_promotion_seconds": round(promotion_seconds, 4),
        "serving_version": status["serving_version"],
        "counters": status["counters"],
    }
    print(
        f"trigger→promotion: {summary['trigger_to_promotion_seconds']:.2f}s "
        f"(serving v{summary['serving_version']})"
    )
    return summary, controller


def bench_warm_cache(workdir: Path, controller: RetrainController, args) -> dict:
    """Re-run an identical retrain through a fresh runtime: pure cache hit."""
    X_new, y_new = _biased_training_set(24, args.seed + 7)

    cold_runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(workdir / "warm-cache"))
    cold_controller = RetrainController(
        cold_runtime,
        controller.spec,
        controller.X,
        controller.y,
        controller.X_eval,
        controller.y_eval,
        config=controller.config,
    )
    watch = Stopwatch()
    cold = cold_controller.retrain(X_new, y_new)
    cold_seconds = watch.elapsed()
    assert cold.refits == 1

    warm_runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(workdir / "warm-cache"))
    warm_controller = RetrainController(
        warm_runtime,
        controller.spec,
        controller.X,
        controller.y,
        controller.X_eval,
        controller.y_eval,
        config=controller.config,
    )
    watch = Stopwatch()
    warm = warm_controller.retrain(X_new, y_new)
    warm_seconds = watch.elapsed()
    assert warm.refits == 0, "identical retrain must be a pure cache hit"
    assert warm_runtime.stats["cache_hits"] == 1
    assert warm.score == cold.score

    summary = {
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "warm_refits": warm.refits,
        "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
    }
    print(
        f"retrain cold {summary['cold_seconds']:.2f}s, warm {summary['warm_seconds']:.4f}s "
        f"({summary['speedup']}x, {summary['warm_refits']} refit(s))"
    )
    return summary


def bench_shadow_overhead(args) -> dict:
    """Served p99 with a full mirror attached vs without: <= 10% overhead."""
    rng = check_random_state(args.seed)
    X_base, y_base = _biased_training_set(150, args.seed)
    automl = AutoMLClassifier(
        n_iterations=args.iterations, ensemble_size=4, min_distinct_members=2,
        random_state=args.seed + 1,
    ).fit(X_base, y_base)
    candidate = AutoMLClassifier(
        n_iterations=args.iterations, ensemble_size=4, min_distinct_members=2,
        random_state=args.seed + 2,
    ).fit(X_base, y_base)
    with tempfile.TemporaryDirectory(prefix="bench-loop-shadow-") as registry_dir:
        registry = ModelRegistry(registry_dir)
        registry.register("shadowed", automl, X_base, DOMAINS)
        bundle = registry.load("shadowed")

        pace = threading.Event()  # .wait(t) = sleep without touching the clock

        def drive(attach: bool) -> dict:
            config = ServeConfig(max_batch=16, max_delay=0.0, queue_bound=1024)
            traffic = check_random_state(args.seed + 3)
            with ServeService(bundle, config) as service:
                if attach:
                    service.engine.attach_shadow(
                        ShadowMirror(candidate, fraction=1.0, max_rows=4096)
                    )
                for _ in range(args.requests):
                    rows = traffic.uniform(0.0, 1.0, size=(4, 2))
                    service.predict(rows)
                    pace.wait(args.pace_ms / 1e3)
                metrics = service.metrics()
            return metrics["histograms"]["latency_seconds"]

        # p99 over a few hundred requests is the 3rd-slowest sample — one
        # scheduler hiccup swings it by ±30%.  Warm up once (discarded),
        # then interleave the regimes and take the median p99 of each so
        # the comparison is stable.
        drive(attach=False)
        baseline_p99s, shadowed_p99s = [], []
        for _ in range(args.repeats):
            baseline_p99s.append(drive(attach=False)["p99"])
            shadowed_p99s.append(drive(attach=True)["p99"])
    baseline_p99 = float(np.median(baseline_p99s))
    shadowed_p99 = float(np.median(shadowed_p99s))

    overhead = shadowed_p99 / max(baseline_p99, 1e-9) - 1.0
    summary = {
        "baseline_p99_ms": round(baseline_p99 * 1e3, 3),
        "shadowed_p99_ms": round(shadowed_p99 * 1e3, 3),
        "p99_overhead_fraction": round(overhead, 4),
        "pace_ms": args.pace_ms,
        "repeats": args.repeats,
    }
    print(
        f"shadow overhead: p99 {summary['baseline_p99_ms']:.2f}ms -> "
        f"{summary['shadowed_p99_ms']:.2f}ms ({overhead:+.1%})"
    )
    assert overhead <= 0.10, (
        f"shadow mirroring added {overhead:.1%} to served p99 (budget: 10%)"
    )
    return summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=6, help="AutoML candidates")
    parser.add_argument("--requests", type=int, default=300, help="shadow-bench requests")
    parser.add_argument(
        "--pace-ms",
        type=float,
        default=2.0,
        help="inter-request gap for the shadow bench (unsaturated serving)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="shadow-bench runs per regime (median p99)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_loop.json", help="result file"
    )
    args = parser.parse_args(argv)

    print(f"benchmarking the retraining loop ({os.cpu_count()} CPU core(s))")
    with tempfile.TemporaryDirectory(prefix="bench-loop-") as workdir:
        workdir = Path(workdir)
        loop_summary, controller = bench_trigger_to_promotion(workdir, args)
        warm_summary = bench_warm_cache(workdir, controller, args)
    shadow_summary = bench_shadow_overhead(args)

    results = {
        "workload": {
            "automl_iterations": args.iterations,
            "shadow_requests": args.requests,
            "seed": args.seed,
        },
        "cpu_count": os.cpu_count(),
        "trigger_to_promotion": loop_summary,
        "warm_cache_retrain": warm_summary,
        "shadow_overhead": shadow_summary,
    }
    args.output.write_text(json.dumps(results, indent=2) + "\n", encoding="utf-8")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
