"""Benchmark F1: reproduce Figure 1 (link-rate ALE with error bars).

The paper's Figure 1 shows the committee-mean ALE of the bottleneck link
rate for the Scream-vs-rest problem, with high across-model variance at
the low and/or high ends of the range — the regions the feedback tells the
operator to sample (the ``x ≤ 45 ∪ x ≥ 99`` example of §3).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import FigureConfig, run_figure1

from .conftest import banner, bench_scale


def _config() -> FigureConfig:
    if bench_scale() == "paper":
        return FigureConfig(n_train=1161, automl_iterations=120, ensemble_size=16, grid_size=32)
    return FigureConfig(n_train=400, automl_iterations=14, ensemble_size=8, grid_size=24)


@pytest.mark.benchmark(group="figure1")
def test_figure1_link_rate_ale(run_once):
    artifact = run_once(run_figure1, _config())
    banner("Figure 1 — ALE of the link rate, mean ± std across the ensemble")
    print(artifact.ascii_plot)
    print()
    print(f"threshold T = {artifact.threshold:.4g}")
    print(f"feedback:    {artifact.flagged_intervals}")

    profile = next(
        p for p in artifact.report.profiles if p.domain.name == "bandwidth_mbps"
    )
    # The committee must disagree somewhere on the link rate (the feature
    # drives the label), and the curve must actually move.
    assert profile.max_std > 0.0
    assert np.ptp(profile.mean_curve[:, 1]) > 0.05
    # The CSV series regenerating the plot is complete.
    lines = artifact.csv.strip().splitlines()
    assert len(lines) == profile.grid.shape[0] + 1
