"""Feature-subspace algebra: intervals, boxes and half-space systems.

The paper expresses its feedback as a union of linear systems
``∪ᵢ Aᵢx ≤ bᵢ`` (§3, step 5).  Because the disagreement analysis is
per-feature, every component the algorithm emits is an axis-aligned *slab*
(one feature constrained to an interval, the rest free within their
domain), i.e. a box.  This module provides the general machinery:

- :class:`Interval` / :class:`IntervalUnion` — 1-D ranges with set algebra;
- :class:`FeatureDomain` — a named feature with its valid range;
- :class:`Box` — a product of per-feature intervals, convertible to
  ``(A, b)``;
- :class:`SubspaceUnion` — a union of boxes supporting membership tests,
  volume computation and uniform sampling.

:class:`Interval` and :class:`FeatureDomain` live in
:mod:`repro.featurespace` (the layer below, so substrates like
``repro.netsim`` can describe their spaces without importing the core) and
are re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import SubspaceError
from ..featurespace import FeatureDomain, Interval
from ..rng import RandomState, check_random_state

__all__ = ["Interval", "IntervalUnion", "FeatureDomain", "Box", "SubspaceUnion"]


class IntervalUnion:
    """A finite union of intervals, kept sorted and merged.

    Adjacent or overlapping members are coalesced on construction, so the
    canonical form is unique and comparisons in tests are stable.
    """

    def __init__(self, intervals: Iterable[Interval] = ()):
        merged: list[Interval] = []
        for interval in sorted(intervals, key=lambda iv: (iv.low, iv.high)):
            if merged and interval.low <= merged[-1].high:
                merged[-1] = Interval(merged[-1].low, max(merged[-1].high, interval.high))
            else:
                merged.append(interval)
        self.intervals: tuple[Interval, ...] = tuple(merged)

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __iter__(self):
        return iter(self.intervals)

    def __eq__(self, other) -> bool:
        return isinstance(other, IntervalUnion) and self.intervals == other.intervals

    @property
    def total_length(self) -> float:
        return float(sum(interval.length for interval in self.intervals))

    def contains(self, value) -> np.ndarray | bool:
        value = np.asarray(value, dtype=np.float64)
        result = np.zeros(value.shape, dtype=bool)
        for interval in self.intervals:
            result |= (value >= interval.low) & (value <= interval.high)
        return bool(result) if result.ndim == 0 else result

    def union(self, other: "IntervalUnion") -> "IntervalUnion":
        return IntervalUnion([*self.intervals, *other.intervals])

    def intersection(self, other: "IntervalUnion") -> "IntervalUnion":
        pieces = []
        for a in self.intervals:
            for b in other.intervals:
                piece = a.intersection(b)
                if piece is not None:
                    pieces.append(piece)
        return IntervalUnion(pieces)

    def clip(self, low: float, high: float) -> "IntervalUnion":
        return self.intersection(IntervalUnion([Interval(low, high)]))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points uniformly over the union (by length)."""
        if not self.intervals:
            raise SubspaceError("cannot sample from an empty interval union")
        lengths = np.array([interval.length for interval in self.intervals])
        if lengths.sum() == 0:
            # All members are points; sample among them uniformly.
            picks = rng.integers(0, len(self.intervals), size=n)
            return np.array([self.intervals[i].low for i in picks])
        weights = lengths / lengths.sum()
        picks = rng.choice(len(self.intervals), size=n, p=weights)
        return np.array([float(self.intervals[i].sample(1, rng)[0]) for i in picks])

    def __str__(self) -> str:
        return " ∪ ".join(str(interval) for interval in self.intervals) if self.intervals else "∅"

    def __repr__(self) -> str:
        return f"IntervalUnion({list(self.intervals)!r})"


class Box:
    """An axis-aligned box: per-feature interval constraints over a domain.

    Features not explicitly constrained span their full domain.  The box is
    exactly one ``Ax ≤ b`` system (two rows per constrained feature).
    """

    def __init__(self, domains: Sequence[FeatureDomain], constraints: dict[int, Interval]):
        self.domains = tuple(domains)
        clipped: dict[int, Interval] = {}
        for index, interval in constraints.items():
            if not 0 <= index < len(self.domains):
                raise SubspaceError(f"constraint on feature {index} out of range")
            domain = self.domains[index]
            piece = interval.intersection(domain.interval)
            if piece is None:
                raise SubspaceError(
                    f"constraint {interval} on {domain.name!r} lies outside its domain {domain.interval}"
                )
            clipped[index] = piece
        self.constraints = dict(sorted(clipped.items()))

    @property
    def n_features(self) -> int:
        return len(self.domains)

    def interval_for(self, index: int) -> Interval:
        return self.constraints.get(index, self.domains[index].interval)

    def volume(self, *, relative: bool = True) -> float:
        """Product of edge lengths; ``relative`` normalizes by the domain box."""
        volume = 1.0
        for index, domain in enumerate(self.domains):
            edge = self.interval_for(index).length
            if relative:
                edge /= domain.interval.length
            volume *= edge
        return float(volume)

    def contains(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if X.shape[1] != self.n_features:
            raise SubspaceError(f"expected {self.n_features} features, got {X.shape[1]}")
        result = np.ones(X.shape[0], dtype=bool)
        for index, interval in self.constraints.items():
            result &= interval.contains(X[:, index])
        return result

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        columns = []
        for index, domain in enumerate(self.domains):
            interval = self.interval_for(index)
            values = interval.sample(n, rng)
            columns.append(np.round(values) if domain.integer else values)
        return np.column_stack(columns)

    def as_halfspaces(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(A, b)`` with ``Ax ≤ b`` describing the constrained axes.

        Only explicitly constrained features contribute rows, matching the
        paper's notation where the domain box is implicit.
        """
        rows, bounds = [], []
        for index, interval in self.constraints.items():
            upper = np.zeros(self.n_features)
            upper[index] = 1.0
            rows.append(upper)
            bounds.append(interval.high)
            lower = np.zeros(self.n_features)
            lower[index] = -1.0
            rows.append(lower)
            bounds.append(-interval.low)
        if not rows:
            return np.zeros((0, self.n_features)), np.zeros(0)
        return np.vstack(rows), np.asarray(bounds)

    def describe(self) -> str:
        if not self.constraints:
            return "entire domain"
        parts = [f"{self.domains[i].name} ∈ {interval}" for i, interval in self.constraints.items()]
        return " and ".join(parts)


class SubspaceUnion:
    """A union of boxes over a shared feature domain list (``∪ᵢ Aᵢx ≤ bᵢ``)."""

    def __init__(self, domains: Sequence[FeatureDomain], boxes: Iterable[Box] = ()):
        self.domains = tuple(domains)
        self.boxes: list[Box] = []
        self._bounds: tuple[np.ndarray, np.ndarray] | None = None
        for box in boxes:
            self.add(box)

    def add(self, box: Box) -> None:
        if box.domains != self.domains:
            raise SubspaceError("box domains do not match the union's domains")
        self.boxes.append(box)
        self._bounds = None  # compiled membership bounds are stale now

    def compiled_bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-box ``(lows, highs)`` matrices, shape ``(n_boxes, n_features)``.

        Unconstrained axes get ``±inf``, so a box's membership test is one
        broadcast comparison instead of a Python loop over constraints —
        the fast path :meth:`contains` uses.  Built lazily and invalidated
        by :meth:`add`, because membership is queried per request once a
        union is registered for online serving.
        """
        # getattr: a union unpickled from an artifact written before the
        # fast path existed has no ``_bounds`` slot in its __dict__.
        if getattr(self, "_bounds", None) is None:
            lows = np.full((len(self.boxes), self.n_features), -np.inf)
            highs = np.full((len(self.boxes), self.n_features), np.inf)
            for row, box in enumerate(self.boxes):
                for index, interval in box.constraints.items():
                    lows[row, index] = interval.low
                    highs[row, index] = interval.high
            self._bounds = (lows, highs)
        return self._bounds

    def __bool__(self) -> bool:
        return bool(self.boxes)

    def __len__(self) -> int:
        return len(self.boxes)

    def __iter__(self):
        return iter(self.boxes)

    @property
    def n_features(self) -> int:
        return len(self.domains)

    def contains(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if not self.boxes:
            return np.zeros(X.shape[0], dtype=bool)
        if X.shape[1] != self.n_features:
            raise SubspaceError(f"expected {self.n_features} features, got {X.shape[1]}")
        lows, highs = self.compiled_bounds()
        inside = (X[None, :, :] >= lows[:, None, :]) & (X[None, :, :] <= highs[:, None, :])
        return inside.all(axis=2).any(axis=0)

    def volume(self) -> float:
        """Relative volume of the union, estimated exactly for disjoint
        boxes and by inclusion-exclusion-free Monte Carlo otherwise."""
        if not self.boxes:
            return 0.0
        if len(self.boxes) == 1:
            return self.boxes[0].volume()
        # Monte Carlo over the domain box: cheap, unbiased, and adequate for
        # the diagnostics this is used for (threshold sweeps).
        # Fixed seed: volume() is a pure query, so repeated calls must agree.
        rng = check_random_state(0)
        samples = np.column_stack([domain.sample(4096, rng) for domain in self.domains])
        return float(np.mean(self.contains(samples)))

    def sample(self, n: int, rng_or_seed: RandomState = None) -> np.ndarray:
        """Draw ``n`` points uniformly from the union.

        Boxes are chosen proportionally to their relative volume, then a
        point is drawn uniformly inside the chosen box and rejected if a
        previously considered box already covers it (avoiding density
        doubling on overlaps).
        """
        if not self.boxes:
            raise SubspaceError("cannot sample from an empty subspace union")
        rng = check_random_state(rng_or_seed)
        volumes = np.array([max(box.volume(), 1e-12) for box in self.boxes])
        weights = volumes / volumes.sum()
        points = np.empty((n, self.n_features))
        filled = 0
        attempts = 0
        while filled < n:
            attempts += 1
            if attempts > 1000 * n:
                raise SubspaceError("rejection sampling failed to converge; boxes may be degenerate")
            box_index = int(rng.choice(len(self.boxes), p=weights))
            point = self.boxes[box_index].sample(1, rng)[0]
            earlier = any(self.boxes[j].contains(point)[0] for j in range(box_index))
            if earlier:
                continue
            points[filled] = point
            filled += 1
        return points

    def as_halfspaces(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """The ``∪ᵢ Aᵢx ≤ bᵢ`` form: one ``(A, b)`` pair per box."""
        return [box.as_halfspaces() for box in self.boxes]

    def describe(self) -> str:
        if not self.boxes:
            return "∅ (no region exceeds the threshold)"
        return "\n".join(f"  region {i + 1}: {box.describe()}" for i, box in enumerate(self.boxes))
