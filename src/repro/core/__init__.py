"""The paper's primary contribution: interpretable ALE-variance feedback.

Public surface:

- :class:`AleFeedback` / :class:`FeedbackReport` — the feedback algorithm
  and its output (subspaces to sample + per-feature explanations);
- :func:`within_ale_committee` / :func:`cross_ale_committee` — the two
  committee constructions of §3;
- ALE computation (:func:`ale_curve`, :func:`make_grid`);
- subspace algebra (:class:`Interval`, :class:`Box`, :class:`SubspaceUnion`);
- rendering (:func:`explain_report`, :func:`ascii_ale_plot`).
"""

from .ale import ALECurve, ale_curve, ale_curves_for_features, ale_curves_for_models, make_grid
from .ale2d import ALESurface, ale_interaction, interaction_disagreement
from .drift import AleDriftReport, ale_drift
from .pdp import pdp_curve, pdp_curves_for_models
from .explanations import ascii_ale_plot, curves_to_csv, explain_report
from .feedback import (
    AleFeedback,
    FeatureDisagreement,
    FeedbackReport,
    cross_ale_committee,
    median_threshold,
    within_ale_committee,
)
from .subspace import Box, FeatureDomain, Interval, IntervalUnion, SubspaceUnion

__all__ = [
    "ALECurve",
    "ale_curve",
    "ale_curves_for_features",
    "ale_curves_for_models",
    "make_grid",
    "ALESurface",
    "AleDriftReport",
    "ale_drift",
    "ale_interaction",
    "interaction_disagreement",
    "pdp_curve",
    "pdp_curves_for_models",
    "AleFeedback",
    "FeatureDisagreement",
    "FeedbackReport",
    "within_ale_committee",
    "cross_ale_committee",
    "median_threshold",
    "Interval",
    "IntervalUnion",
    "FeatureDomain",
    "Box",
    "SubspaceUnion",
    "explain_report",
    "ascii_ale_plot",
    "curves_to_csv",
]
