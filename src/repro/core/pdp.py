"""Partial Dependence Plots (PDP) — the alternative interpreter.

The paper's algorithm is interpreter-agnostic: *"we apply a model-agnostic
interpretation algorithm. We use ALE in this work"* (§3).  PDP (Friedman
2001) is the obvious alternative: the expected model output with one
feature forced to a grid value, averaged over the empirical distribution
of the remaining features,

    PDP_j(v) = (1/n) Σᵢ f(v, x_i,−j).

PDP is easier to explain but known to mislead under correlated features
(it evaluates the model far off the data manifold), which is why the paper
prefers ALE.  The curves are returned in the same :class:`ALECurve`
container (centered the same way) so :class:`repro.core.feedback.AleFeedback`
can swap interpreters via its ``interpreter`` argument — and the ablation
benchmark can compare the two on correlated data.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from .ale import ALECurve

__all__ = ["pdp_curve", "pdp_curves_for_models"]


def pdp_curve(
    model,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
    max_background: int = 512,
) -> ALECurve:
    """Compute a centered partial-dependence curve on an ALE-style grid.

    The curve is evaluated at the right edge of every bin (matching the
    ALE convention so the two interpreters are directly comparable on a
    shared grid) and centered to count-weighted zero mean.

    ``max_background`` caps the background sample for the expectation; the
    first rows of ``X`` are used (callers pass shuffled data).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    if not 0 <= feature_index < X.shape[1]:
        raise ValidationError(f"feature_index {feature_index} out of range for {X.shape[1]} features")
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError("edges must be a 1-D array with at least 2 entries")
    if max_background < 1:
        raise ValidationError(f"max_background must be >= 1, got {max_background}")

    background = X[:max_background]
    n_bins = edges.size - 1
    grid = edges[1:]

    # One big batch: background replicated per grid value.
    batch = np.repeat(background, grid.size, axis=0)
    batch[:, feature_index] = np.tile(grid, background.shape[0])
    proba = model.predict_proba(batch)
    n_classes = proba.shape[1]
    values = proba.reshape(background.shape[0], grid.size, n_classes).mean(axis=0)

    column = X[:, feature_index]
    bins = np.clip(np.searchsorted(edges, column, side="right") - 1, 0, n_bins - 1)
    counts = np.bincount(bins, minlength=n_bins)

    center = (counts[:, None] * values).sum(axis=0) / counts.sum()
    return ALECurve(
        feature_index=feature_index,
        feature_name=feature_name or f"feature_{feature_index}",
        edges=edges,
        values=values - center,
        counts=counts,
    )


def pdp_curves_for_models(
    models,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
    max_background: int = 512,
) -> list[ALECurve]:
    """PDP curves of several models on a shared grid (committee input)."""
    models = list(models)
    if not models:
        raise ValidationError("need at least one model")
    return [
        pdp_curve(
            model, X, feature_index, edges,
            feature_name=feature_name, max_background=max_background,
        )
        for model in models
    ]
