"""Second-order (interaction) ALE.

First-order ALE answers "what did the model learn about feature j"; the
second-order curve answers "what did it learn about the *interaction* of
features j and k beyond their individual effects" (Apley & Zhu §4).  The
paper's future-work list includes richer feedback such as identifying
confounded feature pairs — across-model variance of the interaction
surface is the natural extension of the §3 algorithm to that setting, and
:func:`interaction_disagreement` implements exactly that.

The estimator follows the standard construction: per 2-D bin, the mean
second-order finite difference of the model output at the bin's four
corners, double-accumulated over the grid, then centered so that both
first-order margins are zero (what remains is pure interaction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ALESurface", "ale_interaction", "interaction_disagreement"]


@dataclass
class ALESurface:
    """A fitted second-order ALE surface for one feature pair / one class.

    ``values[p, q]`` is the interaction effect at grid point
    ``(edges_a[p+1], edges_b[q+1])``; margins are centered out.
    """

    feature_a: int
    feature_b: int
    edges_a: np.ndarray
    edges_b: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @property
    def grid_a(self) -> np.ndarray:
        return self.edges_a[1:]

    @property
    def grid_b(self) -> np.ndarray:
        return self.edges_b[1:]

    def interaction_strength(self) -> float:
        """Count-weighted RMS of the surface: 0 means no interaction."""
        weights = self.counts / max(self.counts.sum(), 1)
        return float(np.sqrt(np.sum(weights * self.values**2)))


def ale_interaction(
    model,
    X: np.ndarray,
    feature_a: int,
    feature_b: int,
    edges_a: np.ndarray,
    edges_b: np.ndarray,
    *,
    class_index: int = -1,
) -> ALESurface:
    """Second-order ALE of ``model`` for the pair ``(feature_a, feature_b)``.

    ``class_index`` selects the probability column the surface describes
    (default: the last class, the positive one for binary problems).
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    for feature in (feature_a, feature_b):
        if not 0 <= feature < X.shape[1]:
            raise ValidationError(f"feature index {feature} out of range")
    if feature_a == feature_b:
        raise ValidationError("second-order ALE needs two distinct features")
    edges_a = np.asarray(edges_a, dtype=np.float64)
    edges_b = np.asarray(edges_b, dtype=np.float64)
    if edges_a.size < 2 or edges_b.size < 2:
        raise ValidationError("each edge array needs at least 2 entries")

    ka, kb = edges_a.size - 1, edges_b.size - 1
    bins_a = np.clip(np.searchsorted(edges_a, X[:, feature_a], side="right") - 1, 0, ka - 1)
    bins_b = np.clip(np.searchsorted(edges_b, X[:, feature_b], side="right") - 1, 0, kb - 1)

    # Evaluate the four corners of each sample's 2-D bin in one batch each.
    def corner(a_side: int, b_side: int) -> np.ndarray:
        batch = X.copy()
        batch[:, feature_a] = edges_a[bins_a + a_side]
        batch[:, feature_b] = edges_b[bins_b + b_side]
        proba = model.predict_proba(batch)
        return proba[:, class_index]

    second_difference = corner(1, 1) - corner(1, 0) - corner(0, 1) + corner(0, 0)

    local = np.zeros((ka, kb))
    counts = np.zeros((ka, kb), dtype=np.int64)
    np.add.at(local, (bins_a, bins_b), second_difference)
    np.add.at(counts, (bins_a, bins_b), 1)
    with np.errstate(invalid="ignore"):
        local = np.where(counts > 0, local / np.maximum(counts, 1), 0.0)

    accumulated = np.cumsum(np.cumsum(local, axis=0), axis=1)

    # Center out both first-order margins (count-weighted), leaving pure
    # interaction; then center the global mean.
    total = max(counts.sum(), 1)
    row_means = (accumulated * counts).sum(axis=1) / np.maximum(counts.sum(axis=1), 1)
    col_means = (accumulated * counts).sum(axis=0) / np.maximum(counts.sum(axis=0), 1)
    centered = accumulated - row_means[:, None] - col_means[None, :]
    grand = (centered * counts).sum() / total
    centered -= grand

    return ALESurface(
        feature_a=feature_a,
        feature_b=feature_b,
        edges_a=edges_a,
        edges_b=edges_b,
        values=centered,
        counts=counts,
    )


def interaction_disagreement(
    committee,
    X: np.ndarray,
    feature_a: int,
    feature_b: int,
    edges_a: np.ndarray,
    edges_b: np.ndarray,
    *,
    class_index: int = -1,
) -> tuple[np.ndarray, list[ALESurface]]:
    """Across-committee std of the interaction surface (future-work feedback).

    Returns the per-grid-cell standard deviation plus each member's
    surface; high cells indicate feature *pairs* the committee is confused
    about — the 2-D analogue of the paper's §3 output.
    """
    committee = list(committee)
    if len(committee) < 2:
        raise ValidationError(f"disagreement needs >= 2 models, got {len(committee)}")
    surfaces = [
        ale_interaction(model, X, feature_a, feature_b, edges_a, edges_b, class_index=class_index)
        for model in committee
    ]
    stacked = np.stack([surface.values for surface in surfaces])
    return stacked.std(axis=0), surfaces
