"""ALE-drift comparison: a candidate committee against a stored report.

Promotion in the retraining loop is not gated on score alone — "Beyond
the Single-Best Model" argues that *what a model learned* should stay
stable unless the data says otherwise.  The measurable proxy this module
provides: recompute the candidate committee's ALE curves on the exact
grids the incumbent's :class:`~repro.core.feedback.FeedbackReport`
stored, average them across the committee, and report — per feature —
the largest absolute deviation from the incumbent's stored mean curve.

Because both curve families live on the same bin edges and both are
centered ALE values in probability units, the deviation is directly
interpretable: a drift of 0.2 on feature ``link_rate`` means the
candidate's learned effect of link rate differs from the incumbent's by
up to 20 probability points somewhere in the domain.  A retrain that
merely sharpened the boundary drifts little; one that flipped what a
feature *means* drifts a lot — and should not ship silently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from .ale import ale_curves_for_features
from .feedback import FeedbackReport

__all__ = ["AleDriftReport", "ale_drift"]


@dataclass(frozen=True)
class AleDriftReport:
    """Per-feature ALE drift of a candidate committee vs a stored report.

    ``drift[i]`` is the maximum absolute difference (over grid bins and
    classes) between the candidate committee's mean ALE curve and the
    incumbent report's stored mean curve for feature ``feature_names[i]``.
    """

    feature_names: tuple[str, ...]
    drift: np.ndarray  # (n_features,)

    @property
    def max_drift(self) -> float:
        """The worst per-feature drift — what a promotion gate bounds."""
        return float(self.drift.max()) if self.drift.size else 0.0

    def by_feature(self) -> dict[str, float]:
        """Feature name → drift, for logs and gate metadata."""
        return {name: float(value) for name, value in zip(self.feature_names, self.drift)}

    def summary(self) -> str:
        parts = ", ".join(f"{name}={value:.4f}" for name, value in self.by_feature().items())
        return f"ALE drift (max {self.max_drift:.4f}): {parts}"


def ale_drift(
    committee,
    X,
    report: FeedbackReport,
    *,
    max_batch_rows: int | None = None,
) -> AleDriftReport:
    """Measure how far a candidate committee's ALE curves drifted.

    Parameters
    ----------
    committee:
        Fitted models with ``predict_proba`` — typically
        :func:`~repro.core.feedback.within_ale_committee` of the retrain
        candidate.
    X:
        The dataset the curves are anchored to (the candidate's augmented
        training set, or a buffer of mirrored live traffic).
    report:
        The incumbent's stored :class:`FeedbackReport`; its profiles
        supply the bin edges, so both curve families share one grid by
        construction.
    max_batch_rows:
        Forwarded to :func:`~repro.core.ale.ale_curves_for_features`.

    Returns an :class:`AleDriftReport`.  Raises
    :class:`~repro.exceptions.ValidationError` on shape mismatches (a
    candidate trained on different classes is not comparable).
    """
    committee = list(committee)
    if not committee:
        raise ValidationError("ALE drift needs at least one candidate committee member")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    if X.shape[0] == 0:
        raise ValidationError("X has no samples; ALE drift needs a non-empty dataset")
    if not report.profiles:
        raise ValidationError("the incumbent report has no profiles to compare against")
    for profile in report.profiles:
        if not 0 <= profile.feature_index < X.shape[1]:
            raise ValidationError(
                f"report profiles feature {profile.feature_index}, but X has {X.shape[1]} features"
            )

    indices = [profile.feature_index for profile in report.profiles]
    edges = [profile.edges for profile in report.profiles]
    names = [profile.domain.name for profile in report.profiles]
    per_member = [
        ale_curves_for_features(
            member, X, indices, edges, feature_names=names, max_batch_rows=max_batch_rows
        )
        for member in committee
    ]

    drift = np.zeros(len(indices))
    for position, profile in enumerate(report.profiles):
        candidate_mean = np.stack(
            [curves[position].values for curves in per_member]
        ).mean(axis=0)
        if candidate_mean.shape != profile.mean_curve.shape:
            raise ValidationError(
                f"feature {profile.domain.name!r}: candidate curve shape "
                f"{candidate_mean.shape} != incumbent {profile.mean_curve.shape} "
                "(class sets must match for drift to be comparable)"
            )
        drift[position] = np.abs(candidate_mean - profile.mean_curve).max()
    return AleDriftReport(feature_names=tuple(names), drift=drift)
