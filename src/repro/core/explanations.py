"""Operator-facing rendering of feedback reports.

The paper argues interpretability is the point: the operator must see *why*
data is being requested.  This module renders a :class:`FeedbackReport`
three ways:

- :func:`explain_report` — plain-language, per-feature text targeted at a
  domain expert with no ML background (the "blind-folded humans" framing of
  §2.1);
- :func:`ascii_ale_plot` — a terminal plot of the committee-mean ALE with
  ±1 std error bars, the textual equivalent of the paper's Figure 1/2;
- :func:`curves_to_csv` — machine-readable series for external plotting.
"""

from __future__ import annotations

import io

import numpy as np

from ..exceptions import ValidationError
from .feedback import FeatureDisagreement, FeedbackReport

__all__ = ["explain_report", "ascii_ale_plot", "curves_to_csv"]


def explain_report(report: FeedbackReport, *, max_features: int | None = None) -> str:
    """Render a feedback report as plain-language guidance.

    Features are ordered by peak disagreement so the operator reads the
    most confusing feature first; ``max_features`` truncates the tail.
    """
    profiles = sorted(report.profiles, key=lambda p: p.max_std, reverse=True)
    if max_features is not None:
        profiles = profiles[:max_features]
    lines = [
        "=== AutoML feedback: where the models disagree ===",
        f"Committee: {report.committee_size} models.  Disagreement threshold T = {report.threshold:.4g}.",
        "",
        "The committee's models were each asked what they learned about every",
        "feature (its ALE curve).  Where their answers diverge, the training",
        "data was not enough to pin the relationship down — more samples from",
        "those value ranges are likely to help.",
        "",
    ]
    for profile in profiles:
        intervals = profile.high_variance_intervals(report.threshold)
        lines.append(f"Feature '{profile.domain.name}' "
                     f"(domain {profile.domain.interval}, peak disagreement {profile.max_std:.3f}):")
        if intervals:
            lines.append(f"  -> models are confused when {profile.domain.name} ∈ {intervals}")
            lines.append("     Suggestion: label additional samples from this range.")
        else:
            lines.append("  -> models agree across the whole range; no extra data needed here.")
    lines.append("")
    if report.region:
        lines.append("Combined sampling region (union of half-space systems A_i x <= b_i):")
        lines.append(report.region.describe())
        lines.append("")
        lines.append("You know your network: drop any range that contradicts domain knowledge")
        lines.append("(e.g. noisy kernel-assigned source ports) before collecting data.")
    else:
        lines.append("No region exceeds the threshold; the committee is consistent everywhere.")
    return "\n".join(lines)


def ascii_ale_plot(
    profile: FeatureDisagreement,
    *,
    width: int = 64,
    height: int = 16,
    class_index: int = 0,
    threshold: float | None = None,
) -> str:
    """Terminal rendering of one feature's committee ALE curve.

    ``*`` marks the committee mean, ``|`` the ±1 standard-deviation band;
    columns whose disagreement exceeds ``threshold`` are flagged with ``^``
    underneath — those are the ranges the feedback asks to sample.
    """
    if width < 16 or height < 5:
        raise ValidationError("plot needs width >= 16 and height >= 5")
    if not 0 <= class_index < profile.mean_curve.shape[1]:
        raise ValidationError(f"class_index {class_index} out of range")
    grid = profile.grid
    mean = profile.mean_curve[:, class_index]
    std = profile.std_by_class[:, class_index]

    columns = np.clip(
        ((grid - grid[0]) / max(grid[-1] - grid[0], 1e-12) * (width - 1)).astype(int), 0, width - 1
    )
    low, high = float((mean - std).min()), float((mean + std).max())
    span = max(high - low, 1e-12)

    def to_row(value: float) -> int:
        return int(np.clip((high - value) / span * (height - 1), 0, height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for k, col in enumerate(columns):
        top, bottom = to_row(mean[k] + std[k]), to_row(mean[k] - std[k])
        for row in range(min(top, bottom), max(top, bottom) + 1):
            canvas[row][col] = "|"
    for k, col in enumerate(columns):
        canvas[to_row(mean[k])][col] = "*"

    lines = [
        f"ALE of '{profile.domain.name}' (class {class_index}); "
        f"* mean, | ±1 std across {len(profile.curves)} models"
    ]
    for i, row in enumerate(canvas):
        label = high - i * span / (height - 1)
        lines.append(f"{label:+8.3f} {''.join(row)}")
    if threshold is not None:
        flags = [" "] * width
        for k, col in enumerate(columns):
            if profile.std_curve[k] > threshold:
                flags[col] = "^"
        lines.append(" " * 9 + "".join(flags) + f"   (^ disagreement > T={threshold:.3g})")
    axis = f"{grid[0]:<12.4g}{' ' * max(0, width - 24)}{grid[-1]:>12.4g}"
    lines.append(" " * 9 + axis)
    return "\n".join(lines)


def curves_to_csv(profile: FeatureDisagreement) -> str:
    """Serialize one disagreement profile as CSV.

    Columns: grid value, bin count, then per-class mean and std — the exact
    series needed to regenerate the paper's Figure 1/2 in any plotting tool.
    """
    buffer = io.StringIO()
    n_classes = profile.mean_curve.shape[1]
    header = ["grid", "count"]
    header += [f"mean_class{c}" for c in range(n_classes)]
    header += [f"std_class{c}" for c in range(n_classes)]
    buffer.write(",".join(header) + "\n")
    for k in range(profile.grid.shape[0]):
        row = [f"{profile.grid[k]:.10g}", str(int(profile.counts[k]))]
        row += [f"{profile.mean_curve[k, c]:.10g}" for c in range(n_classes)]
        row += [f"{profile.std_by_class[k, c]:.10g}" for c in range(n_classes)]
        buffer.write(",".join(row) + "\n")
    return buffer.getvalue()
