"""Accumulated Local Effects (ALE) for black-box classifiers.

First-order ALE following Apley & Zhu ("Visualizing the effects of
predictor variables in black box supervised learning models").  For a
feature ``x_j`` and bin edges ``z_0 < … < z_K``, the local effect of bin
``k`` is the mean change in model output when ``x_j`` is moved from
``z_{k-1}`` to ``z_k`` for the samples that fall inside that bin; effects
are accumulated over bins and centered so the curve has (count-weighted)
zero mean.

For classifiers the "model output" is the predicted probability of each
class, so an :class:`ALECurve` carries a ``(K, n_classes)`` value matrix.
All curves produced from the same :func:`make_grid` edges are directly
comparable across models — the property the feedback algorithm's
across-model standard deviation relies on.

Batching: a model's curves for *many* features need one perturbed (lo,
hi) copy pair of ``X`` per feature, and every copy is independent of the
others — so :func:`ale_curves_for_features` stacks consecutive copies
into large ``predict_proba`` batches (bounded by ``max_batch_rows``)
instead of issuing two model calls per feature.  Each row's prediction
is independent of its batch neighbours for every model in this library,
so batch composition never changes the produced bits — the same
invariant the serving engine's micro-batching relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = [
    "ALECurve",
    "make_grid",
    "ale_curve",
    "ale_curves_for_features",
    "ale_curves_for_models",
]

#: Default row bound for one stacked ``predict_proba`` call.  Perturbed
#: copies are float64 matrices of ``X.shape[1]`` columns, so at the
#: paper's widest schema (12 features) a full batch stays ~6 MiB.
DEFAULT_MAX_BATCH_ROWS = 65536


@dataclass
class ALECurve:
    """A fitted ALE curve for one feature of one model.

    Attributes
    ----------
    feature_index, feature_name:
        Which feature the curve describes.
    edges:
        Bin edges ``z_0..z_K`` (length ``K+1``).
    grid:
        The x-positions of ``values``: the right edges ``z_1..z_K``.
    values:
        Centered accumulated effects, shape ``(K, n_classes)``.
    counts:
        Samples per bin (length ``K``); empty bins contribute zero local
        effect and are flagged by ``counts == 0``.
    """

    feature_index: int
    feature_name: str
    edges: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @property
    def grid(self) -> np.ndarray:
        return self.edges[1:]

    @property
    def n_bins(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_classes(self) -> int:
        return int(self.values.shape[1])

    def value_range(self) -> float:
        """Peak-to-peak spread of the curve (max over classes)."""
        return float(np.max(self.values.max(axis=0) - self.values.min(axis=0)))


def make_grid(
    x: np.ndarray,
    *,
    grid_size: int = 32,
    strategy: str = "quantile",
    domain: tuple[float, float] | None = None,
) -> np.ndarray:
    """Build shared ALE bin edges for a feature column.

    ``quantile`` edges (the Apley & Zhu default) give every bin roughly
    equal data mass; ``uniform`` edges span the feature's domain evenly,
    which reads more naturally on plots with a physical x-axis (link rate,
    port number).  Duplicate edges from heavy value ties are dropped.

    ``domain`` bounds the grid for both strategies: ``uniform`` edges
    span it directly, and ``quantile`` edges honor it by clipping the
    quantile source into ``[low, high]`` — out-of-domain samples pile
    onto the boundary instead of stretching the grid beyond the declared
    feature domain.  A degenerate domain (``low >= high``) raises.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2:
        raise ValidationError("need at least 2 samples to build an ALE grid")
    if grid_size < 2:
        raise ValidationError(f"grid_size must be >= 2, got {grid_size}")
    if domain is not None:
        low, high = float(domain[0]), float(domain[1])
        if low >= high:
            raise ValidationError(f"degenerate domain for {strategy} grid: [{low}, {high}]")
    if strategy == "quantile":
        if domain is not None:
            x = np.clip(x, low, high)
        quantiles = np.linspace(0.0, 1.0, grid_size + 1)
        edges = np.quantile(x, quantiles)
    elif strategy == "uniform":
        low, high = domain if domain is not None else (float(x.min()), float(x.max()))
        if low >= high:
            raise ValidationError(f"degenerate domain for uniform grid: [{low}, {high}]")
        edges = np.linspace(low, high, grid_size + 1)
    else:
        raise ValidationError(f"unknown grid strategy {strategy!r}; use 'quantile' or 'uniform'")
    edges = np.unique(edges)
    if edges.size < 2:
        raise ValidationError("feature is constant; ALE is undefined")
    return edges


def _validated_edges(edges: np.ndarray) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError("edges must be a 1-D array with at least 2 entries")
    return edges


def _stacked_proba(model, blocks, max_batch_rows: int) -> list[np.ndarray]:
    """Evaluate ``model.predict_proba`` over a sequence of row blocks.

    ``blocks`` yields ``(n, d)`` matrices; consecutive blocks concatenate
    into one model call as long as the call stays within
    ``max_batch_rows`` (a call always takes at least one whole block, so
    a tiny bound degrades to one call per block — the historical
    two-calls-per-feature shape).  Returns per-block probability
    matrices, exactly as if each block had been evaluated alone.
    """
    results: list[np.ndarray] = []
    pending: list[np.ndarray] = []
    pending_rows = 0

    def flush() -> None:
        nonlocal pending, pending_rows
        if not pending:
            return
        proba = np.asarray(model.predict_proba(np.concatenate(pending, axis=0)))
        splits = np.cumsum([block.shape[0] for block in pending])[:-1]
        results.extend(np.split(proba, splits, axis=0))
        pending = []
        pending_rows = 0

    for block in blocks:
        if pending and pending_rows + block.shape[0] > max_batch_rows:
            flush()
        pending.append(block)
        pending_rows += block.shape[0]
    flush()
    return results


def ale_curves_for_features(
    model,
    X: np.ndarray,
    feature_indices,
    edges_per_feature,
    *,
    feature_names=None,
    max_batch_rows: int | None = None,
) -> list[ALECurve]:
    """First-order ALE curves of one model for several features, batched.

    The workhorse behind :func:`ale_curve` and the committee profiles:
    for every feature it pins the feature column to each bin's left and
    right edge (two perturbed copies of ``X``), stacks consecutive copies
    into ``predict_proba`` batches of at most ``max_batch_rows`` rows,
    and assembles each feature's curve from the per-copy probability
    slices.  ``model`` must expose ``predict_proba``.  Samples outside an
    edge range are clamped into the first/last bin, so a grid built from
    the training data also works on augmented datasets.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    if X.shape[0] == 0:
        raise ValidationError("X has no samples; ALE needs a non-empty dataset")
    feature_indices = [int(index) for index in feature_indices]
    edges_per_feature = [_validated_edges(edges) for edges in edges_per_feature]
    if len(edges_per_feature) != len(feature_indices):
        raise ValidationError(
            f"{len(feature_indices)} features but {len(edges_per_feature)} edge arrays"
        )
    if feature_names is not None and len(feature_names) != len(feature_indices):
        raise ValidationError(
            f"{len(feature_indices)} features but {len(feature_names)} names"
        )
    for index in feature_indices:
        if not 0 <= index < X.shape[1]:
            raise ValidationError(
                f"feature_index {index} out of range for {X.shape[1]} features"
            )
    if max_batch_rows is None:
        max_batch_rows = DEFAULT_MAX_BATCH_ROWS
    if max_batch_rows < 1:
        raise ValidationError(f"max_batch_rows must be >= 1, got {max_batch_rows}")

    bins_per_feature = []
    for index, edges in zip(feature_indices, edges_per_feature):
        n_bins = edges.size - 1
        column = X[:, index]
        bins_per_feature.append(
            np.clip(np.searchsorted(edges, column, side="right") - 1, 0, n_bins - 1)
        )

    def perturbed_blocks():
        # lo then hi per feature, in feature order: block 2i is feature
        # i's left-edge copy, block 2i+1 its right-edge copy.
        for index, edges, bins in zip(feature_indices, edges_per_feature, bins_per_feature):
            for edge_of_bin in (edges[bins], edges[bins + 1]):
                block = X.copy()
                block[:, index] = edge_of_bin
                yield block

    probas = _stacked_proba(model, perturbed_blocks(), max_batch_rows)

    curves: list[ALECurve] = []
    for position, (index, edges, bins) in enumerate(
        zip(feature_indices, edges_per_feature, bins_per_feature)
    ):
        proba_lo, proba_hi = probas[2 * position], probas[2 * position + 1]
        n_classes = proba_lo.shape[1]
        n_bins = edges.size - 1
        deltas = proba_hi - proba_lo
        local_effects = np.zeros((n_bins, n_classes))
        counts = np.zeros(n_bins, dtype=np.int64)
        for k in range(n_bins):
            members = bins == k
            count = int(members.sum())
            counts[k] = count
            if count:
                local_effects[k] = deltas[members].mean(axis=0)

        accumulated = np.cumsum(local_effects, axis=0)
        total = counts.sum()
        center = (counts[:, None] * accumulated).sum(axis=0) / total
        if feature_names is not None and feature_names[position]:
            name = feature_names[position]
        else:
            name = f"feature_{index}"
        curves.append(
            ALECurve(
                feature_index=index,
                feature_name=name,
                edges=edges,
                values=accumulated - center,
                counts=counts,
            )
        )
    return curves


def ale_curve(
    model,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
) -> ALECurve:
    """Compute the first-order ALE curve of ``model`` for one feature.

    ``model`` must expose ``predict_proba``.  Samples outside the edge
    range are clamped into the first/last bin, so a grid built from the
    training data also works on augmented datasets.  Raises
    :class:`ValidationError` for an empty ``X`` (an empty dataset has no
    local effects — the curve would be all-NaN).
    """
    [curve] = ale_curves_for_features(
        model,
        X,
        [feature_index],
        [edges],
        feature_names=[feature_name] if feature_name is not None else None,
    )
    return curve


def ale_curves_for_models(
    models,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
) -> list[ALECurve]:
    """ALE curves of several models on a shared grid (committee input).

    Each model's (lo, hi) perturbed copies evaluate in one stacked
    ``predict_proba`` call (see :func:`ale_curves_for_features`) instead
    of the historical two passes per model.
    """
    models = list(models)
    if not models:
        raise ValidationError("need at least one model")
    return [
        ale_curve(model, X, feature_index, edges, feature_name=feature_name)
        for model in models
    ]
