"""Accumulated Local Effects (ALE) for black-box classifiers.

First-order ALE following Apley & Zhu ("Visualizing the effects of
predictor variables in black box supervised learning models").  For a
feature ``x_j`` and bin edges ``z_0 < … < z_K``, the local effect of bin
``k`` is the mean change in model output when ``x_j`` is moved from
``z_{k-1}`` to ``z_k`` for the samples that fall inside that bin; effects
are accumulated over bins and centered so the curve has (count-weighted)
zero mean.

For classifiers the "model output" is the predicted probability of each
class, so an :class:`ALECurve` carries a ``(K, n_classes)`` value matrix.
All curves produced from the same :func:`make_grid` edges are directly
comparable across models — the property the feedback algorithm's
across-model standard deviation relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ALECurve", "make_grid", "ale_curve", "ale_curves_for_models"]


@dataclass
class ALECurve:
    """A fitted ALE curve for one feature of one model.

    Attributes
    ----------
    feature_index, feature_name:
        Which feature the curve describes.
    edges:
        Bin edges ``z_0..z_K`` (length ``K+1``).
    grid:
        The x-positions of ``values``: the right edges ``z_1..z_K``.
    values:
        Centered accumulated effects, shape ``(K, n_classes)``.
    counts:
        Samples per bin (length ``K``); empty bins contribute zero local
        effect and are flagged by ``counts == 0``.
    """

    feature_index: int
    feature_name: str
    edges: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    @property
    def grid(self) -> np.ndarray:
        return self.edges[1:]

    @property
    def n_bins(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_classes(self) -> int:
        return int(self.values.shape[1])

    def value_range(self) -> float:
        """Peak-to-peak spread of the curve (max over classes)."""
        return float(np.max(self.values.max(axis=0) - self.values.min(axis=0)))


def make_grid(
    x: np.ndarray,
    *,
    grid_size: int = 32,
    strategy: str = "quantile",
    domain: tuple[float, float] | None = None,
) -> np.ndarray:
    """Build shared ALE bin edges for a feature column.

    ``quantile`` edges (the Apley & Zhu default) give every bin roughly
    equal data mass; ``uniform`` edges span the feature's domain evenly,
    which reads more naturally on plots with a physical x-axis (link rate,
    port number).  Duplicate edges from heavy value ties are dropped.
    """
    x = np.asarray(x, dtype=np.float64).ravel()
    if x.size < 2:
        raise ValidationError("need at least 2 samples to build an ALE grid")
    if grid_size < 2:
        raise ValidationError(f"grid_size must be >= 2, got {grid_size}")
    if strategy == "quantile":
        quantiles = np.linspace(0.0, 1.0, grid_size + 1)
        edges = np.quantile(x, quantiles)
    elif strategy == "uniform":
        low, high = domain if domain is not None else (float(x.min()), float(x.max()))
        if low >= high:
            raise ValidationError(f"degenerate domain for uniform grid: [{low}, {high}]")
        edges = np.linspace(low, high, grid_size + 1)
    else:
        raise ValidationError(f"unknown grid strategy {strategy!r}; use 'quantile' or 'uniform'")
    edges = np.unique(edges)
    if edges.size < 2:
        raise ValidationError("feature is constant; ALE is undefined")
    return edges


def ale_curve(
    model,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
) -> ALECurve:
    """Compute the first-order ALE curve of ``model`` for one feature.

    ``model`` must expose ``predict_proba``.  Samples outside the edge
    range are clamped into the first/last bin, so a grid built from the
    training data also works on augmented datasets.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValidationError("X must be 2-dimensional")
    if not 0 <= feature_index < X.shape[1]:
        raise ValidationError(f"feature_index {feature_index} out of range for {X.shape[1]} features")
    edges = np.asarray(edges, dtype=np.float64)
    if edges.ndim != 1 or edges.size < 2:
        raise ValidationError("edges must be a 1-D array with at least 2 entries")
    n_bins = edges.size - 1

    column = X[:, feature_index]
    bins = np.clip(np.searchsorted(edges, column, side="right") - 1, 0, n_bins - 1)

    # Evaluate the model on two perturbed copies per occupied bin: the
    # feature pinned to the bin's left and right edge.
    probe = model.predict_proba(X[:1])
    n_classes = probe.shape[1]
    local_effects = np.zeros((n_bins, n_classes))
    counts = np.zeros(n_bins, dtype=np.int64)
    lo_batch = X.copy()
    hi_batch = X.copy()
    lo_batch[:, feature_index] = edges[bins]
    hi_batch[:, feature_index] = edges[bins + 1]
    proba_lo = model.predict_proba(lo_batch)
    proba_hi = model.predict_proba(hi_batch)
    deltas = proba_hi - proba_lo
    for k in range(n_bins):
        members = bins == k
        count = int(members.sum())
        counts[k] = count
        if count:
            local_effects[k] = deltas[members].mean(axis=0)

    accumulated = np.cumsum(local_effects, axis=0)
    total = counts.sum()
    center = (counts[:, None] * accumulated).sum(axis=0) / total
    return ALECurve(
        feature_index=feature_index,
        feature_name=feature_name or f"feature_{feature_index}",
        edges=edges,
        values=accumulated - center,
        counts=counts,
    )


def ale_curves_for_models(
    models,
    X: np.ndarray,
    feature_index: int,
    edges: np.ndarray,
    *,
    feature_name: str | None = None,
) -> list[ALECurve]:
    """ALE curves of several models on a shared grid (committee input)."""
    models = list(models)
    if not models:
        raise ValidationError("need at least one model")
    return [
        ale_curve(model, X, feature_index, edges, feature_name=feature_name)
        for model in models
    ]
