"""The paper's contribution: interpretable ALE-variance feedback for AutoML.

Algorithm (§3 of the paper):

1. Take the committee of models ``M`` an AutoML system produced, a variance
   threshold ``T``, the feature set and each feature's domain.
2. Compute each model's ALE curve per feature on a shared grid.
3. At every grid point, take the standard deviation of ALE values across
   the committee — the *disagreement profile* of the feature.
4. Return the feature subspace where the deviation exceeds ``T`` as a union
   of half-space systems ``∪ᵢ Aᵢx ≤ bᵢ`` (axis-aligned slabs here, since
   the analysis is per-feature), together with the averaged ALE curves and
   error bars as the human-readable explanation.

Two committee flavors (paper §3, "Algorithm variants"):

- **Within-ALE** — the members of a single AutoML ensemble;
- **Cross-ALE** — the ensembles of several independent AutoML runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state
from .ale import ALECurve, ale_curves_for_features, make_grid
from .subspace import Box, FeatureDomain, Interval, IntervalUnion, SubspaceUnion

__all__ = [
    "FeatureDisagreement",
    "FeedbackReport",
    "AleFeedback",
    "within_ale_committee",
    "cross_ale_committee",
    "median_threshold",
]


@dataclass
class FeatureDisagreement:
    """Committee disagreement profile for one feature.

    ``mean_curve``/``std_curve`` are what Figure 1 of the paper plots: the
    averaged ALE with its across-model standard deviation as error bars.
    """

    domain: FeatureDomain
    feature_index: int
    edges: np.ndarray
    mean_curve: np.ndarray  # (K, n_classes) committee mean
    std_by_class: np.ndarray  # (K, n_classes) committee std
    std_curve: np.ndarray  # (K,) class-aggregated committee std
    counts: np.ndarray
    curves: list[ALECurve] = field(repr=False, default_factory=list)

    @property
    def grid(self) -> np.ndarray:
        return self.edges[1:]

    @property
    def max_std(self) -> float:
        return float(self.std_curve.max())

    def high_variance_intervals(self, threshold: float) -> IntervalUnion:
        """Merge consecutive above-threshold bins into feature intervals.

        A bin covers ``[edges[k], edges[k+1]]``; its disagreement value sits
        at the right edge.  Runs of above-threshold bins coalesce into a
        single interval, yielding exactly the paper's
        ``x ≤ 45 ∪ x ≥ 99``-style output.
        """
        above = self.std_curve > threshold
        intervals = []
        k = 0
        while k < above.size:
            if above[k]:
                start = k
                while k + 1 < above.size and above[k + 1]:
                    k += 1
                intervals.append(Interval(float(self.edges[start]), float(self.edges[k + 1])))
            k += 1
        return IntervalUnion(intervals)


@dataclass
class FeedbackReport:
    """Everything the feedback algorithm returns to the operator.

    ``region`` is the sampling subspace ``∪ᵢ Aᵢx ≤ bᵢ``; ``profiles`` carry
    the per-feature explanation curves.  The report is self-contained: it
    can sample new candidate points, filter a fixed pool, and render its
    explanation without re-touching the committee.
    """

    profiles: list[FeatureDisagreement]
    threshold: float
    region: SubspaceUnion
    committee_size: int
    domains: tuple[FeatureDomain, ...]

    @property
    def flagged_features(self) -> list[FeatureDisagreement]:
        """Profiles that contributed at least one region."""
        return [p for p in self.profiles if p.high_variance_intervals(self.threshold)]

    def intervals_for(self, feature_name: str) -> IntervalUnion:
        for profile in self.profiles:
            if profile.domain.name == feature_name:
                return profile.high_variance_intervals(self.threshold)
        raise ValidationError(f"unknown feature {feature_name!r}")

    def suggest(self, n_points: int, random_state: RandomState = None) -> np.ndarray:
        """Sample ``n_points`` uniformly from the high-variance subspace.

        This is the paper's lower-bound usage: a domain expert would bias
        the sampling with their own knowledge instead.
        """
        if n_points < 1:
            raise ValidationError(f"n_points must be >= 1, got {n_points}")
        if not self.region:
            raise ValidationError(
                "no feature subspace exceeds the threshold; lower the threshold or collect a committee "
                "with more disagreement"
            )
        return self.region.sample(n_points, check_random_state(random_state))

    def filter_pool(self, pool_X, *, max_points: int | None = None, random_state: RandomState = None):
        """Select the rows of a fixed candidate pool inside the region.

        This is the pool-restricted variant evaluated in Table 1
        (Within-ALE-Pool / Cross-ALE-Pool): unlike :meth:`suggest`, the
        algorithm can only endorse points the pool already contains.
        Returns the selected row indices.
        """
        pool_X = np.asarray(pool_X, dtype=np.float64)
        mask = self.region.contains(pool_X) if self.region else np.zeros(pool_X.shape[0], dtype=bool)
        indices = np.flatnonzero(mask)
        if max_points is not None and indices.size > max_points:
            rng = check_random_state(random_state)
            indices = np.sort(rng.choice(indices, size=max_points, replace=False))
        return indices

    def restrict_to(self, feature_names: Sequence[str]) -> "FeedbackReport":
        """Drop regions for features the operator chose to ignore.

        This is the interpretability workflow of §4.2: the operator
        discards the noisy source-port bound and keeps the destination-port
        one, using domain knowledge the algorithm lacks.
        """
        keep = set(feature_names)
        known = {domain.name for domain in self.domains}
        unknown = keep - known
        if unknown:
            raise ValidationError(f"unknown features: {sorted(unknown)}")
        kept_profiles = [p for p in self.profiles if p.domain.name in keep]
        region = _region_from_profiles(kept_profiles, self.threshold, self.domains)
        return FeedbackReport(
            profiles=kept_profiles,
            threshold=self.threshold,
            region=region,
            committee_size=self.committee_size,
            domains=self.domains,
        )

    def summary(self) -> str:
        """Short operator-facing synopsis (full rendering lives in
        :mod:`repro.core.explanations`)."""
        lines = [
            f"ALE feedback over a committee of {self.committee_size} model(s), threshold T={self.threshold:.4g}:"
        ]
        flagged = self.flagged_features
        if not flagged:
            lines.append("  committee models agree everywhere; no additional data suggested")
        for profile in flagged:
            intervals = profile.high_variance_intervals(self.threshold)
            lines.append(
                f"  {profile.domain.name}: collect more data for values in {intervals} "
                f"(peak disagreement {profile.max_std:.3f})"
            )
        return "\n".join(lines)


def median_threshold(profiles: Sequence[FeatureDisagreement]) -> float:
    """The paper's default threshold: the median standard deviation.

    §4 "Setting the threshold": *"we used the median of the standard
    deviation across features"* — computed here as the median of the
    pooled per-grid-point deviations of every feature.  Grid points where
    the committee agrees exactly (zero deviation — common for features a
    whole committee ignores) carry no information about where "high"
    disagreement starts, so the median is taken over the strictly positive
    deviations; if every deviation is zero the committee is unanimous and
    the threshold is 0.
    """
    pooled = np.concatenate([profile.std_curve for profile in profiles])
    positive = pooled[pooled > 0.0]
    if positive.size == 0:
        return 0.0
    return float(np.median(positive))


def _region_from_profiles(
    profiles: Sequence[FeatureDisagreement],
    threshold: float,
    domains: Sequence[FeatureDomain],
) -> SubspaceUnion:
    """One slab (box constraining a single feature) per flagged interval."""
    region = SubspaceUnion(domains)
    for profile in profiles:
        for interval in profile.high_variance_intervals(threshold):
            region.add(Box(domains, {profile.feature_index: interval}))
    return region


class AleFeedback:
    """Configurable ALE-variance feedback analyzer (paper §3).

    Parameters
    ----------
    threshold:
        Explicit variance threshold ``T``, or ``None`` for the paper's
        median heuristic.
    grid_size, grid_strategy:
        Shared ALE grid construction (see :func:`repro.core.ale.make_grid`).
    class_aggregation:
        How per-class disagreement collapses to one value per grid point:
        ``'max'`` (default; a feature is confusing if any class is) or
        ``'mean'``.
    task_mapper:
        Optional callable ``(fn_name, payloads) -> results`` the
        per-feature committee curve computation is submitted through —
        in practice :meth:`repro.runtime.TaskRuntime.named_map`, which
        parallelizes and caches it.  Kept duck-typed on purpose: ``core``
        sits below ``runtime`` in the import DAG, so the runtime is
        injected, never imported.  ``None`` computes inline.
    """

    def __init__(
        self,
        *,
        threshold: float | None = None,
        grid_size: int = 32,
        grid_strategy: str = "quantile",
        class_aggregation: str = "max",
        interpreter: str = "ale",
        threshold_scale: float = 1.0,
        task_mapper=None,
    ):
        if threshold is not None and threshold < 0:
            raise ValidationError(f"threshold must be >= 0, got {threshold}")
        if threshold_scale <= 0:
            raise ValidationError(f"threshold_scale must be positive, got {threshold_scale}")
        if class_aggregation not in ("max", "mean"):
            raise ValidationError(f"class_aggregation must be 'max' or 'mean', got {class_aggregation!r}")
        if interpreter not in ("ale", "pdp"):
            raise ValidationError(f"interpreter must be 'ale' or 'pdp', got {interpreter!r}")
        self.threshold = threshold
        self.grid_size = grid_size
        self.grid_strategy = grid_strategy
        self.class_aggregation = class_aggregation
        self.interpreter = interpreter
        self.threshold_scale = threshold_scale
        self.task_mapper = task_mapper

    def analyze(
        self,
        committee: Sequence,
        X,
        domains: Sequence[FeatureDomain],
    ) -> FeedbackReport:
        """Run the feedback algorithm for one committee over dataset ``X``.

        ``committee`` is any sequence of fitted models with
        ``predict_proba`` — ensemble members (Within-ALE) or whole run
        ensembles (Cross-ALE).
        """
        committee = list(committee)
        if len(committee) < 2:
            raise ValidationError(
                f"disagreement needs a committee of >= 2 models, got {len(committee)}; "
                "use an AutoML configuration that returns an ensemble"
            )
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValidationError("X must be 2-dimensional")
        domains = tuple(domains)
        if len(domains) != X.shape[1]:
            raise ValidationError(f"{len(domains)} domains for {X.shape[1]} features")

        all_edges = [
            make_grid(
                X[:, index],
                grid_size=self.grid_size,
                strategy=self.grid_strategy,
                domain=(domain.low, domain.high),
            )
            for index, domain in enumerate(domains)
        ]
        curves_per_feature = self._committee_curves(committee, X, domains, all_edges)
        profiles: list[FeatureDisagreement] = []
        for index, domain in enumerate(domains):
            edges, curves = all_edges[index], curves_per_feature[index]
            stacked = np.stack([curve.values for curve in curves])  # (models, K, classes)
            std_by_class = stacked.std(axis=0)
            if self.class_aggregation == "max":
                std_curve = std_by_class.max(axis=1)
            else:
                std_curve = std_by_class.mean(axis=1)
            profiles.append(
                FeatureDisagreement(
                    domain=domain,
                    feature_index=index,
                    edges=edges,
                    mean_curve=stacked.mean(axis=0),
                    std_by_class=std_by_class,
                    std_curve=std_curve,
                    counts=curves[0].counts,
                    curves=curves,
                )
            )
        if self.threshold is not None:
            threshold = self.threshold
        else:
            # The paper's §4 guidance: scale the median heuristic up when
            # the sampling budget is small (focus on the boundary), down
            # when it is large (cover more of the space).
            threshold = self.threshold_scale * median_threshold(profiles)
        region = _region_from_profiles(profiles, threshold, domains)
        return FeedbackReport(
            profiles=profiles,
            threshold=threshold,
            region=region,
            committee_size=len(committee),
            domains=domains,
        )

    def _committee_curves(self, committee, X, domains, all_edges) -> list:
        """Per-feature committee curves, via the task mapper when one is set.

        Each feature's curve computation is independent of the others, so
        with a mapper the features fan out as ``ale.profile`` tasks; the
        inline path computes the identical thing — batching each model's
        (lo, hi) perturbed copies across *all* features into a handful of
        ``predict_proba`` calls (:func:`repro.core.ale.ale_curves_for_features`).
        Batch composition never changes a row's prediction, so both paths
        produce bitwise-equal curves.
        """
        if self.task_mapper is not None:
            payloads = [
                {
                    "committee": committee,
                    "X": X,
                    "feature_index": index,
                    "edges": all_edges[index],
                    "feature_name": domain.name,
                    "interpreter": self.interpreter,
                }
                for index, domain in enumerate(domains)
            ]
            return list(self.task_mapper("ale.profile", payloads))
        if self.interpreter == "pdp":
            from .pdp import pdp_curves_for_models

            return [
                pdp_curves_for_models(
                    committee, X, index, all_edges[index], feature_name=domain.name
                )
                for index, domain in enumerate(domains)
            ]
        indices = list(range(len(domains)))
        names = [domain.name for domain in domains]
        per_model = [
            ale_curves_for_features(model, X, indices, all_edges, feature_names=names)
            for model in committee
        ]
        return [[curves[index] for curves in per_model] for index in indices]


def within_ale_committee(automl) -> list:
    """The Within-ALE committee: the members of one AutoML ensemble."""
    members = getattr(automl, "ensemble_members_", None)
    if members is None:
        raise ValidationError(
            "the fitted AutoML object exposes no ensemble members; Within-ALE requires an "
            "ensemble-returning AutoML system (paper §5, limitations)"
        )
    return list(members)


def cross_ale_committee(automl_runs: Sequence) -> list:
    """The Cross-ALE committee: one ensemble per independent AutoML run.

    Each run's *whole ensemble* acts as a single committee member, which is
    how the variant extends to non-ensemble AutoML systems (paper §3).
    """
    runs = list(automl_runs)
    if len(runs) < 2:
        raise ValidationError(f"Cross-ALE needs >= 2 AutoML runs, got {len(runs)}")
    committee = []
    for run in runs:
        ensemble = getattr(run, "ensemble_", None)
        committee.append(ensemble if ensemble is not None else run)
    return committee
