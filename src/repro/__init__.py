"""repro — interpretable ALE-variance feedback for AutoML, for networking.

A from-scratch reproduction of *"Interpretable Feedback for AutoML and a
Proposal for Domain-customized AutoML for Networking"* (HotNets 2021),
including every substrate the paper depends on:

- :mod:`repro.core` — the feedback algorithm (ALE curves, disagreement
  profiles, half-space sampling regions, operator explanations);
- :mod:`repro.automl` — an AutoSklearn-style AutoML (random search +
  greedy ensemble selection) over
- :mod:`repro.ml` — a numpy-only model zoo (trees, forests, boosting,
  logistic regression, naive Bayes, kNN);
- :mod:`repro.netsim` — a network emulator (packet-level and fluid
  engines; SCReAM/Cubic/Reno/Vegas/BBR) standing in for Pantheon;
- :mod:`repro.datasets` — the Scream-vs-rest and synthetic-firewall
  datasets with the paper's split protocol;
- :mod:`repro.active` — active-learning baselines (uniform, confidence,
  QBC, upsampling/SMOTE);
- :mod:`repro.domain` — the domain-customization wrapper of §1 (priors,
  structured Gaussians, topology-implied independence);
- :mod:`repro.stats` / :mod:`repro.experiments` — Wilcoxon machinery and
  one runner per table/figure.

Quickstart::

    from repro.automl import AutoMLClassifier
    from repro.core import AleFeedback, within_ale_committee
    from repro.datasets import generate_scream_dataset, ScreamOracle

    data = generate_scream_dataset(400, random_state=0)
    automl = AutoMLClassifier(n_iterations=20, random_state=0).fit(data.X, data.y)
    report = AleFeedback().analyze(within_ale_committee(automl), data.X, data.domains)
    print(report.summary())
    new_points = report.suggest(50, random_state=0)
    new_labels = ScreamOracle().label(new_points)
"""

from .exceptions import (
    ConvergenceWarning,
    EmulationError,
    NotFittedError,
    ReproError,
    SearchBudgetError,
    SubspaceError,
    ValidationError,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "ReproError",
    "NotFittedError",
    "ValidationError",
    "ConvergenceWarning",
    "SearchBudgetError",
    "EmulationError",
    "SubspaceError",
]
