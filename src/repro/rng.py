"""Random-number-generator plumbing shared across the library.

Every stochastic component in this library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a fully constructed
:class:`numpy.random.Generator`.  :func:`check_random_state` normalizes the
three forms so that downstream code always works with a ``Generator``.

Child generators are derived with :func:`spawn` so that parallel or repeated
sub-tasks (e.g. the trees of a forest, or repeated AutoML runs) get
independent, reproducible streams.
"""

from __future__ import annotations

import warnings

import numpy as np

from .exceptions import ValidationError

RandomState = None | int | np.random.Generator

__all__ = ["RandomState", "check_random_state", "spawn"]

# One-time latch for the nondeterminism warning below.  Process-global on
# purpose: the point is a single audible nudge per run, not a warning storm
# from every estimator constructed with the default random_state.
_warned_nondeterministic_seed = False


def check_random_state(random_state: RandomState) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic seeding, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).

    .. warning::
       ``None`` draws entropy from the OS, so two runs will not agree —
       a benchmark seeded this way cannot back a reported number.  The
       first such call in a process emits a :class:`UserWarning`.
    """
    if random_state is None:
        global _warned_nondeterministic_seed
        if not _warned_nondeterministic_seed:
            _warned_nondeterministic_seed = True
            warnings.warn(
                "check_random_state(None) returns a nondeterministically seeded "
                "generator; results will differ between runs. Pass an int seed or "
                "a numpy Generator for reproducible benchmarks.",
                UserWarning,
                stacklevel=2,
            )
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValidationError(f"random_state must be >= 0, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise ValidationError(
        f"random_state must be None, an int, or a numpy Generator; got {type(random_state).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from ``rng``'s own stream, so the same parent
    seed always yields the same family of children.
    """
    if n < 0:
        raise ValidationError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
