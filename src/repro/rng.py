"""Random-number-generator plumbing shared across the library.

Every stochastic component in this library accepts a ``random_state``
argument that may be ``None``, an integer seed, or a fully constructed
:class:`numpy.random.Generator`.  :func:`check_random_state` normalizes the
three forms so that downstream code always works with a ``Generator``.

Child generators are derived with :func:`spawn` so that parallel or repeated
sub-tasks (e.g. the trees of a forest, or repeated AutoML runs) get
independent, reproducible streams.

For work that leaves the submitting process — :mod:`repro.runtime` tasks —
randomness is carried as an explicit *seed path*: a tuple of non-negative
integers ``(root, *spawn_key)`` materialized by :func:`generator_from_path`
into ``default_rng(SeedSequence(root, spawn_key=spawn_key))``.  A seed path
is plain data (picklable, hashable, cache-keyable), and the generator it
names is the same no matter where, when, or in what order it is built —
the contract the deterministic parallel executors rest on.  A one-element
path ``(seed,)`` is bitwise-equivalent to ``check_random_state(seed)``, so
seeds drawn with :func:`spawn_seeds` reproduce exactly what :func:`spawn`
would have produced in-process.
"""

from __future__ import annotations

import warnings

import numpy as np

from .exceptions import ValidationError

RandomState = None | int | np.random.Generator

#: A serializable address for a random stream: ``(root, *spawn_key)``.
SeedPath = tuple[int, ...]

__all__ = [
    "RandomState",
    "SeedPath",
    "check_random_state",
    "spawn",
    "spawn_seeds",
    "generator_from_path",
]

# One-time latch for the nondeterminism warning below.  Process-global on
# purpose: the point is a single audible nudge per run, not a warning storm
# from every estimator constructed with the default random_state.
_warned_nondeterministic_seed = False


def check_random_state(random_state: RandomState) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic seeding, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).

    .. warning::
       ``None`` draws entropy from the OS, so two runs will not agree —
       a benchmark seeded this way cannot back a reported number.  The
       first such call in a process emits a :class:`UserWarning`.
    """
    if random_state is None:
        global _warned_nondeterministic_seed
        if not _warned_nondeterministic_seed:
            _warned_nondeterministic_seed = True
            warnings.warn(
                "check_random_state(None) returns a nondeterministically seeded "
                "generator; results will differ between runs. Pass an int seed or "
                "a numpy Generator for reproducible benchmarks.",
                UserWarning,
                stacklevel=2,
            )
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        if random_state < 0:
            raise ValidationError(f"random_state must be >= 0, got {random_state}")
        return np.random.default_rng(int(random_state))
    raise ValidationError(
        f"random_state must be None, an int, or a numpy Generator; got {type(random_state).__name__}"
    )


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from ``rng``'s own stream, so the same parent
    seed always yields the same family of children.
    """
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, n)]


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Draw ``n`` child seeds from ``rng``'s stream without building generators.

    ``spawn(rng, n)`` is exactly ``[check_random_state(s) for s in
    spawn_seeds(rng, n)]``: the same stream consumption, the same child
    streams.  Use this form when the children must cross a process
    boundary — a seed is plain data, and ``generator_from_path((seed,))``
    rebuilds the identical generator anywhere.
    """
    if n < 0:
        raise ValidationError(f"cannot spawn a negative number of generators: {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [int(seed) for seed in seeds]


def generator_from_path(path: SeedPath) -> np.random.Generator:
    """Materialize the generator a seed path names.

    ``path`` is ``(root, *spawn_key)``; the result is
    ``default_rng(SeedSequence(root, spawn_key=spawn_key))``.  For a
    one-element path this is bitwise-identical to
    ``check_random_state(root)``.  Longer paths address derived streams
    (e.g. deterministic retry seeds) without touching the parent stream.
    """
    if not isinstance(path, tuple) or len(path) == 0:
        raise ValidationError(f"seed path must be a non-empty tuple of ints, got {path!r}")
    entries = []
    for entry in path:
        if not isinstance(entry, (int, np.integer)) or entry < 0:
            raise ValidationError(f"seed path entries must be ints >= 0, got {entry!r} in {path!r}")
        entries.append(int(entry))
    sequence = np.random.SeedSequence(entries[0], spawn_key=tuple(entries[1:]))
    return np.random.default_rng(sequence)
