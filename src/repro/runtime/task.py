"""The runtime's unit of work: a :class:`Task` plus a function registry.

A task is *plain data*: the name of a registered function, a picklable
payload, and a :data:`~repro.rng.SeedPath` addressing the random stream it
may draw from.  Nothing about a task depends on where or when it runs —
that is the whole determinism contract.  Executors ship ``(fn_name,
payload, seed_path, attempt)`` tuples across process boundaries; the
worker resolves ``fn_name`` against the registry (every worker imports
:mod:`repro.runtime.tasks`, which registers the built-ins) and materializes
the generator from the seed path locally.

Two naming schemes coexist in the registry:

- plain names (``"automl.fit"``) for the built-ins registered by
  :mod:`repro.runtime.tasks`;
- qualified ``"package.module:function"`` names for *plugin* task families
  that live above the runtime in the import DAG (e.g.
  :mod:`repro.experiments.tasks`).  A worker that has not imported the
  plugin module resolves the name by importing the module part on demand,
  so upper layers can submit their own task functions without the runtime
  ever importing them.

Retries extend the seed path instead of re-drawing from a parent stream:
attempt ``k`` of a task with path ``p`` runs with ``(*p, _RETRY_KEY, k)``
— fresh entropy, yet fully determined by the task identity, so a retried
run and a first-try run of the same schedule still agree bitwise whenever
they succeed on the same attempt number.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from ..exceptions import ReproError
from ..rng import SeedPath, generator_from_path

__all__ = [
    "Task",
    "TaskContext",
    "TaskError",
    "TaskTimeoutError",
    "task",
    "resolve_task",
    "registered_tasks",
    "execute_attempt",
]

#: Spawn-key dimension reserved for retry streams.  Any value would do —
#: it only has to be fixed so retry seeds are reproducible — but a
#: recognizable constant ("RETR" in ASCII) makes paths self-describing.
_RETRY_KEY = 0x52455452


class TaskError(ReproError):
    """A task failed on every allowed attempt."""

    def __init__(self, message: str, *, task_label: str = "", attempts: int = 0):
        super().__init__(message)
        self.task_label = task_label
        self.attempts = attempts


class TaskTimeoutError(TaskError):
    """A task exceeded its per-attempt time budget on every attempt."""


@dataclass(frozen=True)
class Task:
    """One deterministic unit of work.

    ``fn_name`` names a registered task function; ``payload`` is the
    picklable argument mapping; ``seed_path`` addresses the task's random
    stream (empty for purely deterministic tasks).  ``label`` is for
    humans: progress lines, error messages, benchmark output.
    """

    fn_name: str
    payload: Mapping[str, Any]
    seed_path: SeedPath = ()
    label: str = ""

    def describe(self) -> str:
        return self.label or f"{self.fn_name}{list(self.seed_path)}"


@dataclass(frozen=True)
class TaskContext:
    """What a task function may know about its own execution.

    ``rng`` is the generator the seed path names (``None`` for seedless
    tasks); ``attempt`` counts from 0 and only exceeds 0 on retries, where
    ``rng`` is already the derived retry stream.
    """

    rng: Any = None
    attempt: int = 0
    seed_path: SeedPath = ()


TaskFn = Callable[[Mapping[str, Any], TaskContext], Any]

_REGISTRY: dict[str, TaskFn] = {}


def task(name: str) -> Callable[[TaskFn], TaskFn]:
    """Register a task function under ``name``.

    Task functions must live at module level in a module every worker
    imports (the built-ins live in :mod:`repro.runtime.tasks`); a worker
    process resolves tasks by name, so closures cannot cross the boundary.
    Qualified ``"module:function"`` names must be registered in exactly the
    module they point at — that is what lets :func:`resolve_task` import
    the module on demand in a worker that has never seen it.
    """

    def decorator(fn: TaskFn) -> TaskFn:
        if ":" in name:
            module_name = name.partition(":")[0]
            if module_name != getattr(fn, "__module__", None):
                raise TaskError(
                    f"qualified task {name!r} must be registered in module "
                    f"{module_name!r}, not {fn.__module__!r} — workers resolve "
                    "it by importing the module the name points at"
                )
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not fn:
            raise TaskError(f"duplicate task name {name!r}")
        _REGISTRY[name] = fn
        return fn

    return decorator


def resolve_task(name: str) -> TaskFn:
    """Look up a registered task function; raises :class:`TaskError` if absent.

    A qualified ``"module:function"`` name that is not yet registered
    triggers an import of its module part — registration happens at import
    time, so after the import the name resolves like any other.  This is
    how plugin task families (e.g. the experiment grid cells) reach worker
    processes without the runtime layer importing them.
    """
    fn = _REGISTRY.get(name)
    if fn is None and ":" in name:
        module_name = name.partition(":")[0]
        try:
            importlib.import_module(module_name)
        except ImportError as error:
            raise TaskError(
                f"task {name!r} names module {module_name!r}, which cannot "
                f"be imported: {error}"
            ) from error
        fn = _REGISTRY.get(name)
    if fn is None:
        raise TaskError(
            f"unknown task {name!r}; registered: {sorted(_REGISTRY)} "
            "(task functions must be registered at import time in repro.runtime.tasks, "
            "or under a qualified 'module:function' name a worker can import on demand)"
        )
    return fn


def registered_tasks() -> list[str]:
    """Names of all registered task functions."""
    return sorted(_REGISTRY)


def attempt_seed_path(seed_path: SeedPath, attempt: int) -> SeedPath:
    """The seed path for attempt ``attempt`` (0 = first try) of a task."""
    if attempt == 0 or not seed_path:
        return seed_path
    return (*seed_path, _RETRY_KEY, attempt)


def execute_attempt(fn_name: str, payload: Mapping[str, Any], seed_path: SeedPath, attempt: int) -> Any:
    """Run one attempt of a task in the current process.

    This is the single entry point both executors use — the serial
    executor calls it inline, the process executor ships its arguments to
    a worker — so a task cannot behave differently depending on which
    executor ran it.
    """
    # Built-in tasks register on import; a spawned worker starts from a
    # blank registry, so make sure they are present before resolving.
    from . import tasks as _builtin_tasks  # noqa: F401

    fn = resolve_task(fn_name)
    path = attempt_seed_path(seed_path, attempt)
    rng = generator_from_path(path) if path else None
    return fn(payload, TaskContext(rng=rng, attempt=attempt, seed_path=path))
