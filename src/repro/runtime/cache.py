"""Content-addressed artifact cache for runtime tasks.

Cross-ALE's cost is repeated AutoML fits of *identical* work: the same
training matrix, the same search configuration, the same seed.  This cache
makes that work pay once.  Artifacts (fitted ensembles, ALE curve bundles
— anything picklable a task returns) are stored under a SHA-256 key of

    (cache-format salt, task function name, payload digest, seed path)

so a key names the *content* of a computation, never a position in some
run: two runs that would compute the same thing share an entry, and any
drift in inputs, seeds, or the cache format yields a different key.

Robustness rules:

- writes are atomic (temp file + ``os.replace``), so a crashed run never
  leaves a half-written artifact behind;
- a corrupt or unreadable entry is a *miss*, never a crash: the poisoned
  file is deleted and the task recomputes;
- the on-disk layout is flat ``<digest>.pkl`` files plus two-level fanout
  directories, all under ``~/.cache/repro-ale`` (``REPRO_CACHE_DIR``
  overrides, as does the ``directory`` argument).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator, Mapping

import numpy as np

from ..exceptions import ValidationError
from ..rng import SeedPath
from .task import Task

__all__ = [
    "ArtifactCache",
    "Provenance",
    "digest_payload",
    "task_key",
    "default_cache_dir",
    "CACHE_SALT",
    "PUBLISH_SALT",
]

#: Format/version salt mixed into every key.  Bump when task semantics or
#: the artifact encoding change: old entries become unreachable (and
#: prunable) instead of silently wrong.
CACHE_SALT = "repro-runtime-cache-v1"

#: Salt for *published* artifacts (model-registry bundles): published keys
#: address pickled bytes directly, not a task identity, so they version
#: independently of task semantics.
PUBLISH_SALT = "repro-publish-v1"

_ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-ale``."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "repro-ale"


@dataclasses.dataclass(frozen=True)
class Provenance:
    """A task output tagged with the key of the task that produced it.

    Complex artifacts (fitted ensembles, search states) do not pickle to
    canonical bytes — a freshly built object and its cache round-trip can
    serialize differently — so embedding one in a downstream payload would
    make that payload's digest depend on *how the object got here* rather
    than on what it is.  Wrapping it as ``Provenance(task_key(t), value)``
    digests by the producing task's content address instead: stable,
    O(1), and exactly the identity the cache already trusts.

    ``value`` rides along untouched (workers unwrap it); only ``key``
    enters the digest.
    """

    key: str
    value: Any


def _hash_update(h, *chunks: bytes) -> None:
    for chunk in chunks:
        h.update(chunk)
        h.update(b"\x00")


def digest_payload(obj: Any) -> str:
    """Stable SHA-256 hex digest of a task payload.

    Canonically encodes the JSON-ish core (None/bool/int/float/str/bytes,
    sequences, sorted mappings), numpy arrays by dtype+shape+buffer, and
    dataclasses/functions/classes by qualified name plus fields.  Anything
    else falls back to its pickle — stable for a fixed code version, and a
    wrong guess can only cost a cache miss, never a wrong hit.
    """
    h = hashlib.sha256()
    _digest_into(h, obj)
    return h.hexdigest()


def _digest_into(h, obj: Any) -> None:
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        _hash_update(h, b"prim", type(obj).__name__.encode(), repr(obj).encode())
    elif isinstance(obj, np.ndarray):
        array = np.ascontiguousarray(obj)
        _hash_update(h, b"ndarray", array.dtype.str.encode(), repr(array.shape).encode(), array.tobytes())
    elif isinstance(obj, np.generic):
        _digest_into(h, obj.item())
    elif isinstance(obj, (list, tuple)):
        _hash_update(h, b"seq", type(obj).__name__.encode(), str(len(obj)).encode())
        for item in obj:
            _digest_into(h, item)
    elif isinstance(obj, Provenance):
        # Before the generic dataclass branch: digest the content address,
        # never the (non-canonical) value bytes.
        _hash_update(h, b"provenance", obj.key.encode())
    elif isinstance(obj, Mapping):
        keys = sorted(obj, key=repr)
        _hash_update(h, b"map", str(len(keys)).encode())
        for key in keys:
            _digest_into(h, key)
            _digest_into(h, obj[key])
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        _hash_update(h, b"dataclass", _qualified_name(type(obj)).encode())
        for field in dataclasses.fields(obj):
            _hash_update(h, field.name.encode())
            _digest_into(h, getattr(obj, field.name))
    elif isinstance(obj, type) or callable(obj) and hasattr(obj, "__qualname__"):
        # Functions and classes hash by identity-in-code: the module path.
        # Their behaviour is covered by CACHE_SALT's code-version contract.
        _hash_update(h, b"callable", _qualified_name(obj).encode())
    else:
        _hash_update(h, b"pickle", pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _qualified_name(obj: Any) -> str:
    module = getattr(obj, "__module__", "?")
    qualname = getattr(obj, "__qualname__", type(obj).__qualname__)
    return f"{module}.{qualname}"


def task_key(task: Task, *, salt: str = CACHE_SALT) -> str:
    """The content address of one task's result."""
    h = hashlib.sha256()
    _hash_update(h, b"task", salt.encode(), task.fn_name.encode(), repr(tuple(task.seed_path)).encode())
    _hash_update(h, digest_payload(task.payload).encode())
    return h.hexdigest()


class ArtifactCache:
    """Persistent pickle store addressed by :func:`task_key` digests."""

    def __init__(self, directory: Path | str | None = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt_evictions = 0

    # -- addressing --------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """On-disk location for ``key`` (two-level fanout)."""
        if len(key) < 8 or any(c not in "0123456789abcdef" for c in key):
            raise ValidationError(f"cache keys are sha256 hex digests, got {key!r}")
        return self.directory / key[:2] / f"{key}.pkl"

    def _entries(self) -> Iterator[Path]:
        if not self.directory.is_dir():
            return
        yield from sorted(self.directory.glob("*/*.pkl"))

    # -- read/write --------------------------------------------------------

    def load(self, key: str) -> tuple[bool, Any]:
        """``(hit, value)``; a corrupt entry is evicted and reported as a miss."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except Exception:  # corrupt pickle, truncated file, perm change, ...
            self.corrupt_evictions += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return False, None
        self.hits += 1
        return True, value

    def store(self, key: str, value: Any) -> Path:
        """Atomically persist ``value`` under ``key``; returns the path."""
        path = self.path_for(key)
        self._write_atomic(path, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        self.stores += 1
        return path

    def _write_atomic(self, path: Path, blob: bytes) -> None:
        """Install ``blob`` at ``path`` via a unique temp file + ``os.replace``.

        The temp name comes from :func:`tempfile.mkstemp`, which is unique
        per *call* — not merely per process — so two threads (or a
        publish racing a concurrent install of the same key) can never
        scribble into one shared temp file and leave a torn blob behind;
        each writer renames its own complete bytes into place and the last
        rename wins whole.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # the normal case: os.replace already consumed it

    # -- publish/fetch (registry entry points) ----------------------------

    def publish(self, value: Any, *, salt: str = PUBLISH_SALT) -> str:
        """Persist ``value`` under the content address of its pickled bytes.

        The entry point the model registry builds on: unlike :meth:`store`
        (keyed by a task's identity), a published artifact is addressed by
        *what it is* — ``sha256(salt, pickle(value))`` — so re-publishing
        identical bytes is a no-op and a manifest holding the key can
        verify integrity on load.  Returns the key.
        """
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        h = hashlib.sha256()
        _hash_update(h, b"publish", salt.encode(), blob)
        key = h.hexdigest()
        path = self.path_for(key)
        if not path.exists():
            self._write_atomic(path, blob)
            self.stores += 1
        return key

    def fetch(self, key: str) -> Any:
        """Load a published artifact, raising ``KeyError`` when absent.

        The strict counterpart of :meth:`load`: a registry manifest that
        names a key *promises* the artifact exists, so a miss (including a
        corrupt entry, which :meth:`load` evicts) is an error, not a
        recomputable cache miss.
        """
        hit, value = self.load(key)
        if not hit:
            raise KeyError(key)
        return value

    # -- raw blob access (the network tier's entry points) -----------------

    def read_blob(self, key: str) -> bytes | None:
        """The exact on-disk bytes of one entry, or ``None`` when absent.

        What a network peer ships: the pickled artifact *as stored*, so a
        remote install is byte-for-byte the file a local execution would
        have written and content digests agree across machines.
        """
        try:
            with open(self.path_for(key), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def install_blob(self, key: str, blob: bytes) -> Path:
        """Atomically install raw artifact bytes under ``key``.

        The write-side counterpart of :meth:`read_blob`: callers that
        already hold serialized bytes (a verified remote fetch) land them
        without a pickle round-trip, via the same unique-temp atomic
        rename every other write path uses.
        """
        path = self.path_for(key)
        self._write_atomic(path, blob)
        self.stores += 1
        return path

    # -- maintenance -------------------------------------------------------

    def keys(self) -> list[str]:
        """The content-address keys of every entry on disk, sorted."""
        return [path.stem for path in self._entries()]

    def remove(self, key: str) -> bool:
        """Delete one entry by key; returns whether a file was removed."""
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def info(self) -> dict[str, Any]:
        """Entry count and total bytes on disk (plus session counters)."""
        entries = []
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue  # swept by a concurrent prune/remove between glob and stat
            entries.append(path)
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": int(total),
            "session": {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt_evictions": self.corrupt_evictions,
            },
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def prune(self, max_bytes: int) -> int:
        """Evict oldest-first until the cache fits ``max_bytes``; returns evictions."""
        if max_bytes < 0:
            raise ValidationError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        return removed
