"""Pluggable task executors: serial and process-pool, one contract.

Both executors implement ``run(tasks, timeout=..., retries=...)`` and
return results **in task order**, regardless of completion order.  Because
every task carries its randomness as an explicit seed path (see
:mod:`repro.runtime.task`), the two executors — and any submission order —
produce bitwise-identical results; the determinism suite pins this.

Failure policy (shared):

- an attempt that raises is retried up to ``retries`` times, each retry on
  a fresh-but-deterministic seed path derived from the task's own path;
- an attempt that exceeds ``timeout`` seconds counts as a failure and is
  retried the same way (the serial executor cannot preempt a running
  task, so it detects overruns after the fact; the process executor stops
  waiting at the deadline);
- exhausted tasks raise :class:`~repro.runtime.task.TaskError` (or
  :class:`~repro.runtime.task.TaskTimeoutError` when the last failure was
  a timeout) — unless ``propagate_errors=False``, in which case the
  exhaustion error is *returned* on the outcome's ``error`` field and the
  rest of the batch keeps running.  That is how a sharded experiment grid
  survives one poisoned cell without losing every other cell's work.

The process executor degrades gracefully: if the worker pool cannot start
(sandboxes without semaphores, fork bombsquad limits) or a payload cannot
be pickled, the affected work runs serially in-process instead of failing
— same results, just slower.
"""

from __future__ import annotations

import concurrent.futures
import pickle
import warnings
from dataclasses import dataclass
from typing import Any, Sequence

from ..exceptions import ValidationError
from .clock import Deadline, Stopwatch
from .task import Task, TaskError, TaskTimeoutError, execute_attempt

__all__ = ["TaskOutcome", "SerialExecutor", "ProcessExecutor"]


@dataclass(frozen=True)
class TaskOutcome:
    """One task's result plus execution bookkeeping.

    ``error`` is ``None`` for a successful task; under
    ``propagate_errors=False`` an exhausted task comes back with ``value
    None`` and its :class:`~repro.runtime.task.TaskError` here instead of
    raising.
    """

    value: Any
    attempts: int
    duration: float
    executor: str
    error: TaskError | None = None


def _validate_run_args(tasks: Sequence[Task], timeout: float | None, retries: int) -> list[Task]:
    tasks = list(tasks)
    if timeout is not None and timeout <= 0:
        raise ValidationError(f"timeout must be positive or None, got {timeout}")
    if retries < 0:
        raise ValidationError(f"retries must be >= 0, got {retries}")
    return tasks


def _is_transport_error(error: BaseException) -> bool:
    """True when ``error`` means the *payload could not travel*, not that
    the task failed: retrying over the same broken transport is pointless,
    but running in-process is exactly equivalent."""
    if isinstance(error, pickle.PicklingError):
        return True
    return isinstance(error, (TypeError, AttributeError)) and "pickle" in str(error).lower()


def _exhausted(task: Task, attempts: int, last_error: BaseException, timed_out: bool) -> TaskError:
    kind = TaskTimeoutError if timed_out else TaskError
    reason = "timed out" if timed_out else f"failed: {last_error!r}"
    return kind(
        f"task '{task.describe()}' {reason} after {attempts} attempt(s)",
        task_label=task.describe(),
        attempts=attempts,
    )


class SerialExecutor:
    """Run tasks one by one in the submitting process.

    The reference executor: zero pickling, zero processes, and the
    behaviour every other executor must reproduce bitwise.
    """

    name = "serial"

    def run(
        self,
        tasks: Sequence[Task],
        *,
        timeout: float | None = None,
        retries: int = 0,
        propagate_errors: bool = True,
    ) -> list[TaskOutcome]:
        tasks = _validate_run_args(tasks, timeout, retries)
        outcomes: list[TaskOutcome] = []
        for task in tasks:
            outcomes.append(self._run_one(task, timeout, retries, propagate_errors))
        return outcomes

    def _run_one(
        self, task: Task, timeout: float | None, retries: int, propagate_errors: bool = True
    ) -> TaskOutcome:
        watch = Stopwatch()
        last_error: BaseException = TaskError("no attempts made")
        timed_out = False
        for attempt in range(retries + 1):
            deadline = Deadline(timeout)
            try:
                value = execute_attempt(task.fn_name, task.payload, task.seed_path, attempt)
            except Exception as error:  # deliberate: any task failure is retryable
                last_error, timed_out = error, False
                continue
            if deadline.exceeded():
                # A serial executor cannot preempt; surface the overrun
                # with the same semantics the process pool would apply.
                last_error, timed_out = TaskTimeoutError(f"attempt exceeded {timeout}s"), True
                continue
            return TaskOutcome(value=value, attempts=attempt + 1, duration=watch.elapsed(), executor=self.name)
        failure = _exhausted(task, retries + 1, last_error, timed_out)
        if propagate_errors:
            raise failure
        return TaskOutcome(
            value=None, attempts=retries + 1, duration=watch.elapsed(), executor=self.name, error=failure
        )


class ProcessExecutor:
    """Run tasks on a ``ProcessPoolExecutor`` with ``max_workers`` workers.

    Results come back in task order.  Determinism needs no coordination:
    workers rebuild each task's generator from its seed path, so schedule,
    interleaving, and worker identity cannot leak into results.
    """

    def __init__(self, max_workers: int = 2):
        if max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers

    name = "process"

    def run(
        self,
        tasks: Sequence[Task],
        *,
        timeout: float | None = None,
        retries: int = 0,
        propagate_errors: bool = True,
    ) -> list[TaskOutcome]:
        tasks = _validate_run_args(tasks, timeout, retries)
        if not tasks:
            return []
        try:
            pool = concurrent.futures.ProcessPoolExecutor(max_workers=self.max_workers)
        except (OSError, PermissionError, ValueError) as error:
            warnings.warn(
                f"process pool unavailable ({error!r}); degrading to serial execution",
                UserWarning,
                stacklevel=2,
            )
            return SerialExecutor().run(
                tasks, timeout=timeout, retries=retries, propagate_errors=propagate_errors
            )
        try:
            return self._run_pooled(pool, tasks, timeout, retries, propagate_errors)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _run_pooled(
        self,
        pool: concurrent.futures.ProcessPoolExecutor,
        tasks: list[Task],
        timeout: float | None,
        retries: int,
        propagate_errors: bool = True,
    ) -> list[TaskOutcome]:
        serial = SerialExecutor()
        watches = [Stopwatch() for _ in tasks]
        pending = {index: 0 for index in range(len(tasks))}  # index -> next attempt
        futures: dict[int, concurrent.futures.Future] = {}
        outcomes: dict[int, TaskOutcome] = {}
        last_errors: dict[int, tuple[BaseException, bool]] = {}

        def submit(index: int, attempt: int) -> None:
            task = tasks[index]
            try:
                futures[index] = pool.submit(
                    execute_attempt, task.fn_name, task.payload, task.seed_path, attempt
                )
            except (pickle.PicklingError, TypeError, AttributeError, RuntimeError) as error:
                # Unpicklable payload (or a pool that died): this task
                # cannot travel — run it in-process with identical
                # semantics instead of failing the batch.
                warnings.warn(
                    f"task '{task.describe()}' cannot be submitted to the pool "
                    f"({error!r}); running it serially",
                    UserWarning,
                    stacklevel=2,
                )
                outcomes[index] = serial._run_one(task, timeout, retries, propagate_errors)
                futures.pop(index, None)
                pending.pop(index, None)

        for index in list(pending):
            submit(index, 0)

        while futures:
            for index in sorted(futures):
                future = futures.pop(index)
                task = tasks[index]
                attempt = pending[index]
                try:
                    value = future.result(timeout=timeout)
                except concurrent.futures.TimeoutError:
                    future.cancel()
                    last_errors[index] = (TaskTimeoutError(f"attempt exceeded {timeout}s"), True)
                except concurrent.futures.process.BrokenProcessPool as error:
                    # The pool is gone; everything still pending must
                    # finish serially (deterministically identical).
                    warnings.warn(
                        f"worker pool broke ({error!r}); finishing remaining tasks serially",
                        UserWarning,
                        stacklevel=2,
                    )
                    for fallback_index in sorted({index, *futures}):
                        futures.pop(fallback_index, None)
                        pending.pop(fallback_index, None)
                        outcomes[fallback_index] = serial._run_one(
                            tasks[fallback_index], timeout, retries, propagate_errors
                        )
                    break
                except Exception as error:  # deliberate: failures are retryable
                    if _is_transport_error(error):
                        warnings.warn(
                            f"task '{task.describe()}' payload cannot cross the process "
                            f"boundary ({error!r}); running it serially",
                            UserWarning,
                            stacklevel=2,
                        )
                        pending.pop(index, None)
                        outcomes[index] = serial._run_one(task, timeout, retries, propagate_errors)
                        continue
                    last_errors[index] = (error, False)
                else:
                    pending.pop(index, None)
                    outcomes[index] = TaskOutcome(
                        value=value,
                        attempts=attempt + 1,
                        duration=watches[index].elapsed(),
                        executor=self.name,
                    )
                    continue
                if index not in pending:
                    continue
                if attempt >= retries:
                    error, timed_out = last_errors[index]
                    failure = _exhausted(task, attempt + 1, error, timed_out)
                    if propagate_errors:
                        raise failure
                    pending.pop(index, None)
                    outcomes[index] = TaskOutcome(
                        value=None,
                        attempts=attempt + 1,
                        duration=watches[index].elapsed(),
                        executor=self.name,
                        error=failure,
                    )
                    continue
                pending[index] = attempt + 1
                submit(index, attempt + 1)

        return [outcomes[index] for index in range(len(tasks))]
