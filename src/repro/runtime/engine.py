"""The runtime façade: one entry point tying executor and cache together.

:class:`TaskRuntime` is what upper layers hold: ``run(tasks)`` answers
every task — from cache when the artifact exists, from the configured
executor otherwise — and returns values in task order.  ``named_map`` is
the same thing as a plain callable ``(fn_name, payloads) -> values``, the
duck-typed hook :class:`repro.core.feedback.AleFeedback` accepts so the
``core`` layer can submit work without importing this package (the import
DAG keeps ``core`` below ``runtime``).

Cache modes:

- ``"off"``  — every task executes (the default; no disk is touched);
- ``"on"``   — look up before executing, store after;
- ``"refresh"`` — ignore existing entries but overwrite them with fresh
  results (the escape hatch for a stale or distrusted cache).
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Sequence

from ..exceptions import ValidationError
from ..rng import SeedPath
from .cache import ArtifactCache, task_key
from .executors import ProcessExecutor, SerialExecutor, TaskOutcome
from .task import Task

__all__ = ["TaskRuntime", "default_runtime", "CACHE_MODES"]

CACHE_MODES = ("on", "off", "refresh")


class TaskRuntime:
    """Deterministic task execution with optional artifact caching.

    Parameters
    ----------
    executor:
        A :class:`SerialExecutor` (default) or :class:`ProcessExecutor`;
        anything with the same ``run(tasks, timeout=..., retries=...)``
        contract works.
    cache:
        An :class:`ArtifactCache`, or ``None`` for no caching.
    cache_mode:
        ``"on"``, ``"off"`` or ``"refresh"`` (see module docstring).
    timeout, retries:
        Per-task attempt budget in seconds (``None`` = unbounded) and the
        number of deterministic-seed retries after a failed attempt.
    store_url:
        Base URL of a :mod:`repro.store` artifact server.  When given
        (requires ``cache``), the local cache is wrapped in a
        ``RemoteCacheTier``: misses try the peer before executing and
        fresh results are pushed back.  The tier is resolved by module
        *name* — mirroring :func:`~repro.runtime.task.resolve_task` — so
        this layer never imports the ``store`` layer above it.
    """

    def __init__(
        self,
        executor=None,
        *,
        cache: ArtifactCache | None = None,
        cache_mode: str = "on",
        timeout: float | None = None,
        retries: int = 0,
        store_url: str | None = None,
    ):
        if cache_mode not in CACHE_MODES:
            raise ValidationError(f"cache_mode must be one of {CACHE_MODES}, got {cache_mode!r}")
        self.executor = executor if executor is not None else SerialExecutor()
        self.cache = cache
        self.cache_mode = cache_mode if cache is not None else "off"
        self.timeout = timeout
        self.retries = retries
        if store_url is not None:
            if cache is None:
                raise ValidationError("store_url requires a local cache (the remote tier installs into it)")
            tier_cls = importlib.import_module("repro.store.client").RemoteCacheTier
            self.cache = tier_cls(cache, store_url)
        self.reset_stats()

    # -- bookkeeping -------------------------------------------------------

    def reset_stats(self) -> None:
        self.stats: dict[str, Any] = {
            "executed": 0,
            "cache_hits": 0,
            "cache_stores": 0,
            "executed_by_fn": {},
            "attempts": 0,
            "task_seconds": 0.0,
            "failed": 0,
        }

    def _count_execution(self, task: Task, outcome: TaskOutcome) -> None:
        self.stats["executed"] += 1
        self.stats["attempts"] += outcome.attempts
        self.stats["task_seconds"] += outcome.duration
        by_fn = self.stats["executed_by_fn"]
        by_fn[task.fn_name] = by_fn.get(task.fn_name, 0) + 1

    def executions_of(self, fn_name: str) -> int:
        """How many tasks of ``fn_name`` actually executed (cache hits excluded)."""
        return int(self.stats["executed_by_fn"].get(fn_name, 0))

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[Task], *, return_failures: bool = False) -> list[Any]:
        """Answer every task; results in task order.

        Cache hits never execute; misses go to the executor in one batch
        (preserving whatever parallelism it offers) and are stored on the
        way out.

        With ``return_failures=True`` a task whose retries are exhausted
        does not abort the batch: its slot in the result list holds the
        :class:`~repro.runtime.task.TaskError` instead of a value (check
        with ``isinstance``), the failure is counted in ``stats["failed"]``,
        and — crucially — nothing is cached for it, so a rerun retries it.
        """
        tasks = list(tasks)
        values: list[Any] = [None] * len(tasks)
        to_run: list[int] = []
        keys: dict[int, str] = {}
        use_cache = self.cache is not None and self.cache_mode != "off"
        for index, task in enumerate(tasks):
            if not use_cache:
                to_run.append(index)
                continue
            keys[index] = task_key(task)
            if self.cache_mode == "on":
                hit, value = self.cache.load(keys[index])
                if hit:
                    self.stats["cache_hits"] += 1
                    values[index] = value
                    continue
            to_run.append(index)
        if to_run:
            run_kwargs: dict[str, Any] = {"timeout": self.timeout, "retries": self.retries}
            if return_failures:
                # Only passed when needed: any executor honouring the plain
                # run(tasks, timeout=..., retries=...) contract still works
                # on the default (propagating) path.
                run_kwargs["propagate_errors"] = False
            outcomes = self.executor.run([tasks[index] for index in to_run], **run_kwargs)
            for index, outcome in zip(to_run, outcomes):
                if outcome.error is not None:
                    values[index] = outcome.error
                    self.stats["failed"] += 1
                    self.stats["attempts"] += outcome.attempts
                    self.stats["task_seconds"] += outcome.duration
                    continue
                values[index] = outcome.value
                self._count_execution(tasks[index], outcome)
                if use_cache:
                    self.cache.store(keys[index], outcome.value)
                    self.stats["cache_stores"] += 1
        return values

    def run_one(self, task: Task) -> Any:
        """Convenience wrapper: ``run([task])[0]``."""
        return self.run([task])[0]

    def named_map(
        self,
        fn_name: str,
        payloads: Sequence[dict],
        seed_paths: Sequence[SeedPath] | None = None,
        label: str = "",
    ) -> list[Any]:
        """The duck-typed mapper upper/lower layers share.

        Builds one task per payload (all under ``fn_name``) and runs them.
        ``seed_paths`` defaults to seedless (deterministic) tasks.
        """
        payloads = list(payloads)
        if seed_paths is None:
            seed_paths = [()] * len(payloads)
        if len(seed_paths) != len(payloads):
            raise ValidationError(
                f"{len(payloads)} payloads but {len(seed_paths)} seed paths"
            )
        tasks = [
            Task(
                fn_name=fn_name,
                payload=payload,
                seed_path=tuple(path),
                label=f"{label or fn_name}[{index}]",
            )
            for index, (payload, path) in enumerate(zip(payloads, seed_paths))
        ]
        return self.run(tasks)


def default_runtime() -> TaskRuntime:
    """The implicit runtime: serial, uncached — today's behaviour, made explicit.

    A fresh instance per call: the default runtime is a semantic constant,
    not shared mutable state, so callers that count executions construct
    and hold their own :class:`TaskRuntime`.
    """
    return TaskRuntime(SerialExecutor())
