"""Deterministic parallel execution engine with a content-addressed cache.

The substrate the experiment harness schedules on (DESIGN.md §3,
"runtime" layer).  Three ideas, three modules:

- **tasks as data** (:mod:`~repro.runtime.task`): a :class:`Task` names a
  registered function, a picklable payload, and an explicit seed path —
  so a result is a pure function of the task, not of where/when it ran;
- **pluggable executors** (:mod:`~repro.runtime.executors`):
  :class:`SerialExecutor` and :class:`ProcessExecutor` share one
  ``run(tasks, timeout=..., retries=...)`` contract and produce bitwise
  identical results; the pool degrades gracefully to serial when it
  cannot start or a payload cannot travel;
- **content-addressed artifacts** (:mod:`~repro.runtime.cache`): fitted
  ensembles and ALE bundles persist under SHA-256 keys of (function,
  payload digest, seed path, format salt), with atomic writes and
  corruption-tolerant reads.

:class:`TaskRuntime` ties them together; ``python -m repro ... --workers N
--cache on`` and ``python -m repro cache`` expose it on the CLI.
"""

from .cache import (
    ArtifactCache,
    CACHE_SALT,
    PUBLISH_SALT,
    Provenance,
    default_cache_dir,
    digest_payload,
    task_key,
)
from .engine import CACHE_MODES, TaskRuntime, default_runtime
from .executors import ProcessExecutor, SerialExecutor, TaskOutcome
from .task import Task, TaskContext, TaskError, TaskTimeoutError, registered_tasks, task

__all__ = [
    "Task",
    "TaskContext",
    "TaskError",
    "TaskTimeoutError",
    "task",
    "registered_tasks",
    "SerialExecutor",
    "ProcessExecutor",
    "TaskOutcome",
    "TaskRuntime",
    "default_runtime",
    "CACHE_MODES",
    "ArtifactCache",
    "default_cache_dir",
    "digest_payload",
    "task_key",
    "Provenance",
    "CACHE_SALT",
    "PUBLISH_SALT",
]
