"""The runtime's single budget-owning clock (RL004 boundary).

Wall-clock reads make results depend on machine speed, so reprolint rule
RL004 confines them to modules that *own a time budget*.  The runtime
needs exactly two clock-shaped things — per-task timeouts and benchmark
durations — and both are budget logic, so they live behind this one
module's tiny surface instead of scattering ``time.monotonic()`` calls
through the executors.  Nothing here may influence a task's *result*;
timeouts abort work, they never change what completed work computes.
"""

from __future__ import annotations

import time

__all__ = ["monotonic", "Stopwatch", "Deadline"]


def monotonic() -> float:
    """Monotonic seconds; the only clock the runtime reads."""
    return time.monotonic()


class Stopwatch:
    """Measure an elapsed duration (executor bookkeeping, benchmarks)."""

    def __init__(self) -> None:
        self._start = monotonic()

    def elapsed(self) -> float:
        return monotonic() - self._start


class Deadline:
    """A per-task time budget; ``None`` seconds means unbounded."""

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._start = monotonic()

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` when unbounded; never below zero."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - (monotonic() - self._start))

    def exceeded(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0
