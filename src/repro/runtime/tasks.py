"""Built-in task functions every worker can resolve by name.

Task functions take ``(payload, ctx)`` — a picklable mapping plus a
:class:`~repro.runtime.task.TaskContext` carrying the generator the task's
seed path names — and return a picklable artifact.  They are registered at
import time; :func:`repro.runtime.task.execute_attempt` imports this
module, so a freshly spawned worker process sees the same registry as the
submitting process.

The ``probe.*`` family exists for diagnostics and fault-injection tests:
cheap, dependency-free tasks that exercise the seed-path, retry, and
timeout machinery without dragging an AutoML fit into every test.

Layers above the runtime contribute their own task families under
qualified ``"module:function"`` names (e.g. the experiment grid cells in
:mod:`repro.experiments.tasks`); those register when their module is
imported — on demand in a worker, via :func:`repro.runtime.task.resolve_task`
— and never appear here, keeping the import DAG acyclic.
"""

from __future__ import annotations

import time
from typing import Any, Mapping

import numpy as np

from ..core.ale import ale_curves_for_models
from ..exceptions import ValidationError
from .task import TaskContext, task

__all__ = ["automl_fit", "ale_profile", "loop_retrain"]


@task("automl.fit")
def automl_fit(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Fit one AutoML run: ``factory(rng).fit(X, y)``.

    ``factory`` must be a picklable callable taking a generator (e.g.
    :class:`repro.automl.spec.AutoMLSpec`; closures only work with the
    serial executor).  The generator comes exclusively from the task's
    seed path, so the fitted artifact is a pure function of the payload
    plus path — exactly what the artifact cache keys on.
    """
    if ctx.rng is None:
        raise ValidationError("automl.fit needs a seed path (AutoML search is stochastic)")
    factory = payload["factory"]
    return factory(ctx.rng).fit(payload["X"], payload["y"])


@task("ale.profile")
def ale_profile(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Compute one feature's committee interpretation curves.

    Payload: ``committee`` (fitted models), ``X``, ``feature_index``,
    ``edges``, ``feature_name``, and ``interpreter`` (``"ale"``/``"pdp"``).
    Deterministic — no seed path needed.  The ALE path stacks each
    model's (lo, hi) perturbed copies into one ``predict_proba`` call
    (:func:`repro.core.ale.ale_curves_for_models` batches internally),
    bitwise-equal to the historical two-pass computation.
    """
    interpreter = payload.get("interpreter", "ale")
    if interpreter == "pdp":
        from ..core.pdp import pdp_curves_for_models

        compute = pdp_curves_for_models
    elif interpreter == "ale":
        compute = ale_curves_for_models
    else:
        raise ValidationError(f"interpreter must be 'ale' or 'pdp', got {interpreter!r}")
    return compute(
        payload["committee"],
        payload["X"],
        payload["feature_index"],
        payload["edges"],
        feature_name=payload["feature_name"],
    )


@task("loop.retrain")
def loop_retrain(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Refit on an augmented training set and score the result.

    The retraining loop's one expensive step, shaped for the cache: the
    payload carries the *merged* training set (base data plus drained
    labels, merged deterministically upstream), an evaluation holdout,
    and a picklable ``factory``.  Because the loop submits this under a
    fixed seed path, the cache key varies only with the payload — a
    re-triggered retrain over identical queue contents is a pure cache
    hit, and the returned model is bitwise-identical.

    Returns ``{"model": fitted, "score": float}`` where ``score`` is
    mean accuracy on the holdout (the incumbent is scored on the same
    holdout by the promotion gate, so the comparison is apples-to-apples).
    """
    if ctx.rng is None:
        raise ValidationError("loop.retrain needs a seed path (AutoML search is stochastic)")
    factory = payload["factory"]
    fitted = factory(ctx.rng).fit(payload["X"], payload["y"])
    predictions = np.asarray(fitted.predict(payload["X_eval"]))
    score = float(np.mean(predictions == np.asarray(payload["y_eval"])))
    return {"model": fitted, "score": score}


# -- probes (diagnostics & fault injection) --------------------------------


@task("probe.draw")
def probe_draw(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Draw ``n`` integers below ``high`` from the task's stream.

    The canonical determinism probe: identical seed paths must yield
    identical draws on any executor, any worker, any schedule.
    """
    if ctx.rng is None:
        raise ValidationError("probe.draw needs a seed path")
    return ctx.rng.integers(0, int(payload.get("high", 1_000_000)), size=int(payload["n"])).tolist()


@task("probe.sleep")
def probe_sleep(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Sleep ``seconds`` then return ``value`` (timeout-path probe)."""
    time.sleep(float(payload["seconds"]))
    return payload.get("value")


@task("probe.fail")
def probe_fail(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Fail until attempt ``succeed_on_attempt`` (retry-path probe).

    With ``succeed_on_attempt`` beyond the retry budget this is a
    guaranteed-exhaustion task; otherwise it deterministically succeeds on
    the configured attempt and returns that attempt number.
    """
    succeed_on = int(payload.get("succeed_on_attempt", 0))
    if ctx.attempt < succeed_on:
        raise RuntimeError(f"injected failure on attempt {ctx.attempt}")
    return ctx.attempt
