"""Domain-knowledge priors an operator can hand to AutoML (paper §1).

The paper's vision: operators cannot write ML code, but they *can* state
facts about their network — "these features are independent", "latency can
only increase with queue depth", "this counter is noise".  A
:class:`DomainSpec` captures exactly those three kinds of statement:

- **independence groups** — features in different groups are conditionally
  independent given the class (the straw-man of §1: remove Bayes-net edges
  / zero covariance entries);
- **monotonicity** — the label's likelihood moves monotonically with a
  feature (checked against candidate models' ALE curves);
- **irrelevant features** — drop before searching.

:class:`repro.domain.wrapper.DomainCustomizedAutoML` consumes the spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import ValidationError

__all__ = ["DomainSpec", "INCREASING", "DECREASING"]

INCREASING = 1
DECREASING = -1


@dataclass
class DomainSpec:
    """Operator-provided domain knowledge over named features.

    Parameters
    ----------
    feature_names:
        The dataset's feature names, in column order.
    independence_groups:
        Partition (possibly partial) of feature names; features in
        different groups are treated as class-conditionally independent.
        Unlisted features form implicit singleton groups.
    monotone:
        ``{feature: INCREASING | DECREASING}`` — the expected direction of
        the feature's effect on the positive class.
    irrelevant:
        Features to exclude from modeling entirely.
    """

    feature_names: list[str]
    independence_groups: list[set[str]] = field(default_factory=list)
    monotone: dict[str, int] = field(default_factory=dict)
    irrelevant: list[str] = field(default_factory=list)

    def __post_init__(self):
        known = set(self.feature_names)
        if len(known) != len(self.feature_names):
            raise ValidationError(f"duplicate feature names: {self.feature_names}")
        seen: set[str] = set()
        for group in self.independence_groups:
            unknown = set(group) - known
            if unknown:
                raise ValidationError(f"independence group references unknown features: {sorted(unknown)}")
            overlap = set(group) & seen
            if overlap:
                raise ValidationError(f"features appear in multiple independence groups: {sorted(overlap)}")
            seen |= set(group)
        for name, direction in self.monotone.items():
            if name not in known:
                raise ValidationError(f"monotone constraint on unknown feature {name!r}")
            if direction not in (INCREASING, DECREASING):
                raise ValidationError(f"monotone direction must be ±1, got {direction} for {name!r}")
        unknown = set(self.irrelevant) - known
        if unknown:
            raise ValidationError(f"irrelevant list references unknown features: {sorted(unknown)}")
        if set(self.irrelevant) & set(self.monotone):
            raise ValidationError("a feature cannot be both irrelevant and monotonicity-constrained")

    # -- derived views ----------------------------------------------------
    def kept_features(self) -> list[str]:
        """Feature names surviving the irrelevance filter, in order."""
        dropped = set(self.irrelevant)
        return [name for name in self.feature_names if name not in dropped]

    def kept_indices(self) -> list[int]:
        dropped = set(self.irrelevant)
        return [i for i, name in enumerate(self.feature_names) if name not in dropped]

    def group_of(self, feature: str) -> frozenset[str]:
        """The independence group containing ``feature`` (singleton if unlisted)."""
        if feature not in self.feature_names:
            raise ValidationError(f"unknown feature {feature!r}")
        for group in self.independence_groups:
            if feature in group:
                return frozenset(group)
        return frozenset({feature})

    def covariance_mask(self) -> list[list[bool]]:
        """Boolean mask over kept features: may feature i covary with j?

        ``True`` entries are free covariance parameters; ``False`` entries
        are pinned to zero — the §1 straw-man applied to a Gaussian MLE.
        """
        kept = self.kept_features()
        mask = []
        for a in kept:
            row = []
            group_a = self.group_of(a)
            for b in kept:
                row.append(a == b or b in group_a)
            mask.append(row)
        return mask

    def describe(self) -> str:
        lines = [f"DomainSpec over {len(self.feature_names)} features:"]
        if self.irrelevant:
            lines.append(f"  irrelevant: {sorted(self.irrelevant)}")
        for group in self.independence_groups:
            lines.append(f"  dependent group: {sorted(group)}")
        for name, direction in sorted(self.monotone.items()):
            arrow = "increasing" if direction == INCREASING else "decreasing"
            lines.append(f"  monotone: {name} ({arrow})")
        if len(lines) == 1:
            lines.append("  (no constraints)")
        return "\n".join(lines)
