"""Inferring feature-independence priors from network topology (paper §1).

The paper suggests the network's logical/physical topology is an *implicit*
indicator of feature relationships: measurements taken at entities that
share no path cannot causally influence one another, so they are a
reasonable candidate for a class-conditional independence prior.

:class:`TopologyPriorBuilder` maps features onto the entities (nodes) of a
:class:`networkx.Graph` and derives independence groups from graph
structure: features land in the same dependence group when their entities
are within ``radius`` hops of each other (``radius=None`` uses connected
components).
"""

from __future__ import annotations

import networkx as nx

from ..exceptions import ValidationError
from .priors import DomainSpec

__all__ = ["TopologyPriorBuilder"]


class TopologyPriorBuilder:
    """Builds a :class:`DomainSpec` from a topology graph.

    Parameters
    ----------
    topology:
        Any networkx graph whose nodes are network entities (switches,
        links, hosts...).
    feature_entity:
        ``{feature_name: node}`` — where each measurement is taken.
        Features may share a node (e.g. multiple counters of one switch).
    """

    def __init__(self, topology: nx.Graph, feature_entity: dict[str, object]):
        if topology.number_of_nodes() == 0:
            raise ValidationError("topology graph is empty")
        missing = [name for name, node in feature_entity.items() if node not in topology]
        if missing:
            raise ValidationError(f"features mapped to nodes absent from the topology: {missing}")
        self.topology = topology
        self.feature_entity = dict(feature_entity)

    def dependence_groups(self, *, radius: int | None = None) -> list[set[str]]:
        """Group features whose entities are topologically close.

        With ``radius=None`` two features are dependent iff their entities
        share a connected component; with an integer radius, iff their
        entities are within ``radius`` hops.
        """
        if radius is not None and radius < 0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        names = list(self.feature_entity)
        parent = {name: name for name in names}

        def find(a: str) -> str:
            while parent[a] != a:
                parent[a] = parent[parent[a]]
                a = parent[a]
            return a

        def union(a: str, b: str) -> None:
            parent[find(a)] = find(b)

        if radius is None:
            component_of = {}
            for i, component in enumerate(nx.connected_components(self.topology.to_undirected())):
                for node in component:
                    component_of[node] = i
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    if component_of[self.feature_entity[a]] == component_of[self.feature_entity[b]]:
                        union(a, b)
        else:
            undirected = self.topology.to_undirected()
            for i, a in enumerate(names):
                for b in names[i + 1 :]:
                    node_a, node_b = self.feature_entity[a], self.feature_entity[b]
                    if node_a == node_b:
                        union(a, b)
                        continue
                    try:
                        distance = nx.shortest_path_length(undirected, node_a, node_b)
                    except nx.NetworkXNoPath:
                        continue
                    if distance <= radius:
                        union(a, b)

        groups: dict[str, set[str]] = {}
        for name in names:
            groups.setdefault(find(name), set()).add(name)
        return [group for group in groups.values()]

    def build_spec(
        self,
        feature_names: list[str],
        *,
        radius: int | None = None,
        monotone: dict[str, int] | None = None,
        irrelevant: list[str] | None = None,
    ) -> DomainSpec:
        """Assemble the full :class:`DomainSpec` (topology + extra priors).

        ``feature_names`` fixes column order; features without an entity
        mapping become singleton groups (no assumed dependence).
        """
        unknown = set(self.feature_entity) - set(feature_names)
        if unknown:
            raise ValidationError(f"feature_entity maps unknown features: {sorted(unknown)}")
        groups = [group for group in self.dependence_groups(radius=radius) if len(group) > 1]
        return DomainSpec(
            feature_names=list(feature_names),
            independence_groups=groups,
            monotone=dict(monotone or {}),
            irrelevant=list(irrelevant or []),
        )
