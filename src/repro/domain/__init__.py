"""Domain customization for AutoML (the paper's §1 vision).

- :class:`DomainSpec` — operator priors (independence, monotonicity,
  irrelevance);
- :class:`StructuredGaussianClassifier` — Gaussian MLE with operator-masked
  covariance (the §1 straw-man);
- :class:`TopologyPriorBuilder` — independence groups implied by network
  topology;
- :class:`DomainCustomizedAutoML` — the wrapper applying all of it to the
  AutoML search.
"""

from .gaussian import StructuredGaussianClassifier
from .priors import DECREASING, INCREASING, DomainSpec
from .topology import TopologyPriorBuilder
from .wrapper import DomainCustomizedAutoML

__all__ = [
    "DomainSpec",
    "INCREASING",
    "DECREASING",
    "StructuredGaussianClassifier",
    "TopologyPriorBuilder",
    "DomainCustomizedAutoML",
]
