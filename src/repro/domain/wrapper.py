"""Domain-customized AutoML: applying operator priors to the search.

The wrapper the paper's §1 envisions, built from the pieces this library
already has:

1. **irrelevant features** are dropped before the search;
2. **independence groups** become the covariance mask of a
   :class:`StructuredGaussianClassifier` family added to the search space
   (the "modified models the AutoML framework can then include in its
   search");
3. **monotonicity priors** are enforced *after* the search by checking each
   ensemble member's ALE curve for the constrained feature and evicting
   members that learned the wrong direction — interpretation machinery
   reused as a model-validation tool.

The wrapper exposes the same classifier protocol as
:class:`repro.automl.AutoMLClassifier`, including ``ensemble_members_`` so
the feedback algorithm composes with it unchanged.
"""

from __future__ import annotations

import numpy as np

from ..automl.automl import AutoMLClassifier
from ..automl.ensemble import EnsembleClassifier
from ..automl.spaces import FloatRange, ModelFamily, default_model_families
from ..core.ale import ale_curve, make_grid
from ..exceptions import ValidationError
from ..ml.base import check_is_fitted, check_X_y
from ..rng import RandomState
from .gaussian import StructuredGaussianClassifier
from .priors import INCREASING, DomainSpec

__all__ = ["DomainCustomizedAutoML"]


class _ColumnSubsetModel:
    """Adapter exposing a model fit on selected columns as a full-width one."""

    def __init__(self, model, columns: np.ndarray):
        self._model = model
        self._columns = columns

    @property
    def classes_(self):
        return self._model.classes_

    def predict(self, X):
        return self._model.predict(np.asarray(X, dtype=np.float64)[:, self._columns])

    def predict_proba(self, X):
        return self._model.predict_proba(np.asarray(X, dtype=np.float64)[:, self._columns])


class DomainCustomizedAutoML:
    """AutoML constrained by a :class:`DomainSpec`.

    Accepts the same budget arguments as :class:`AutoMLClassifier` plus the
    spec.  ``ale_grid_size`` controls the resolution of the monotonicity
    check; ``monotonicity_tolerance`` is the fraction of wrong-direction
    movement tolerated before a member is evicted.
    """

    def __init__(
        self,
        spec: DomainSpec,
        *,
        n_iterations: int = 30,
        time_budget: float | None = None,
        ensemble_size: int = 10,
        min_distinct_members: int = 4,
        include_structured_gaussian: bool = True,
        ale_grid_size: int = 16,
        monotonicity_tolerance: float = 0.2,
        random_state: RandomState = None,
    ):
        if not 0.0 <= monotonicity_tolerance <= 1.0:
            raise ValidationError(f"monotonicity_tolerance must be in [0, 1], got {monotonicity_tolerance}")
        self.spec = spec
        self.n_iterations = n_iterations
        self.time_budget = time_budget
        self.ensemble_size = ensemble_size
        self.min_distinct_members = min_distinct_members
        self.include_structured_gaussian = include_structured_gaussian
        self.ale_grid_size = ale_grid_size
        self.monotonicity_tolerance = monotonicity_tolerance
        self.random_state = random_state

    # -- search-space assembly ---------------------------------------------
    def _families(self) -> list[ModelFamily]:
        families = default_model_families()
        if self.include_structured_gaussian:
            mask = np.asarray(self.spec.covariance_mask(), dtype=bool)

            def factory(regularization: float = 1e-3) -> StructuredGaussianClassifier:
                return StructuredGaussianClassifier(
                    covariance_mask=mask, regularization=regularization
                )

            families.append(
                ModelFamily(
                    "structured_gaussian",
                    factory,
                    {"regularization": FloatRange(1e-4, 1e-1, log=True)},
                    stochastic=False,
                )
            )
        return families

    # -- fitting ---------------------------------------------------------
    def fit(self, X, y) -> "DomainCustomizedAutoML":
        X, y = check_X_y(X, y)
        if X.shape[1] != len(self.spec.feature_names):
            raise ValidationError(
                f"X has {X.shape[1]} columns but the spec names {len(self.spec.feature_names)} features"
            )
        self._columns = np.asarray(self.spec.kept_indices(), dtype=np.int64)
        X_kept = X[:, self._columns]
        automl = AutoMLClassifier(
            n_iterations=self.n_iterations,
            time_budget=self.time_budget,
            ensemble_size=self.ensemble_size,
            min_distinct_members=self.min_distinct_members,
            families=self._families(),
            random_state=self.random_state,
        )
        automl.fit(X_kept, y)
        self.base_automl_ = automl
        self.evicted_members_: list[tuple[object, str]] = []
        ensemble = self._apply_monotonicity(automl.ensemble_, X_kept)
        self.ensemble_ = EnsembleClassifier(
            [_ColumnSubsetModel(member, self._columns) for member in ensemble.members],
            ensemble.weights,
            ensemble.classes_,
        )
        self.classes_ = ensemble.classes_
        return self

    def _monotonicity_violation(self, member, X_kept: np.ndarray, feature: str, direction: int) -> float:
        """Fraction of the member's ALE movement going the wrong way."""
        kept_names = self.spec.kept_features()
        index = kept_names.index(feature)
        edges = make_grid(X_kept[:, index], grid_size=self.ale_grid_size)
        curve = ale_curve(member, X_kept, index, edges, feature_name=feature)
        # Use the last class's curve as "the positive direction" for binary
        # problems; for multi-class, monotonicity refers to that class too.
        values = curve.values[:, -1]
        steps = np.diff(values)
        movement = np.abs(steps).sum()
        if movement == 0:
            return 0.0
        wrong = steps < 0 if direction == INCREASING else steps > 0
        return float(np.abs(steps[wrong]).sum() / movement)

    def _apply_monotonicity(self, ensemble: EnsembleClassifier, X_kept: np.ndarray) -> EnsembleClassifier:
        if not self.spec.monotone:
            return ensemble
        kept_names = set(self.spec.kept_features())
        survivors, weights = [], []
        for member, weight in zip(ensemble.members, ensemble.weights):
            worst = 0.0
            worst_feature = None
            for feature, direction in self.spec.monotone.items():
                if feature not in kept_names:
                    continue
                violation = self._monotonicity_violation(member, X_kept, feature, direction)
                if violation > worst:
                    worst, worst_feature = violation, feature
            if worst > self.monotonicity_tolerance:
                self.evicted_members_.append(
                    (member, f"violates monotone({worst_feature}) by {worst:.0%}")
                )
            else:
                survivors.append(member)
                weights.append(weight)
        if not survivors:
            # All members violate: keep the least-bad ensemble rather than
            # returning nothing, but record the situation.
            self.evicted_members_.append((None, "all members violated priors; ensemble kept as-is"))
            return ensemble
        return EnsembleClassifier(survivors, weights, ensemble.classes_)

    # -- classifier protocol ----------------------------------------------
    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.predict(np.asarray(X, dtype=np.float64))

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.predict_proba(np.asarray(X, dtype=np.float64))

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    @property
    def ensemble_members_(self) -> list:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.members

    def describe(self) -> str:
        check_is_fitted(self, "ensemble_")
        lines = [self.spec.describe(), f"ensemble of {len(self.ensemble_)} member(s) after prior enforcement"]
        for _, reason in self.evicted_members_:
            lines.append(f"  evicted: {reason}")
        return "\n".join(lines)
