"""Gaussian classifier with a structured (masked) covariance.

The concrete realization of the paper's §1 straw-man: *"add zeros in the
covariance matrix for maximum likelihood estimators with Gaussian priors"*.
Each class gets a full-covariance Gaussian MLE (quadratic discriminant
analysis), then the operator's independence mask zeroes the forbidden
off-diagonal entries; eigenvalue clipping restores positive definiteness
after masking.

With an all-``True`` mask this is plain QDA; with a diagonal mask it
reduces to Gaussian naive Bayes — the two extremes the operator's partial
knowledge interpolates between.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..ml.base import BaseEstimator, ClassifierMixin, check_array, check_is_fitted, check_X_y

__all__ = ["StructuredGaussianClassifier"]


class StructuredGaussianClassifier(BaseEstimator, ClassifierMixin):
    """QDA with operator-specified zero structure in the covariance.

    Parameters
    ----------
    covariance_mask:
        Square boolean matrix; ``False`` entries of each class covariance
        are forced to zero.  ``None`` keeps the full covariance (plain QDA).
    regularization:
        Ridge added to the diagonal (fraction of mean variance), keeping
        the masked matrices well-conditioned.
    """

    def __init__(self, *, covariance_mask=None, regularization: float = 1e-3):
        if regularization < 0:
            raise ValidationError(f"regularization must be >= 0, got {regularization}")
        self.covariance_mask = covariance_mask
        self.regularization = regularization

    def _resolve_mask(self, d: int) -> np.ndarray:
        if self.covariance_mask is None:
            return np.ones((d, d), dtype=bool)
        mask = np.asarray(self.covariance_mask, dtype=bool)
        if mask.shape != (d, d):
            raise ValidationError(f"covariance_mask shape {mask.shape} does not match {d} features")
        if not np.array_equal(mask, mask.T):
            raise ValidationError("covariance_mask must be symmetric")
        if not mask.diagonal().all():
            raise ValidationError("covariance_mask diagonal must be all True (variances are always free)")
        return mask

    @staticmethod
    def _nearest_psd(matrix: np.ndarray, floor: float) -> np.ndarray:
        """Clip eigenvalues from below; masking can break definiteness."""
        eigenvalues, eigenvectors = np.linalg.eigh(matrix)
        clipped = np.maximum(eigenvalues, floor)
        return (eigenvectors * clipped) @ eigenvectors.T

    def fit(self, X, y) -> "StructuredGaussianClassifier":
        X, y = check_X_y(X, y)
        encoded = self._encode_labels(y)
        d = X.shape[1]
        mask = self._resolve_mask(d)
        k = self.n_classes_
        self.means_ = np.zeros((k, d))
        self.precisions_ = np.zeros((k, d, d))
        self.log_dets_ = np.zeros(k)
        self.log_priors_ = np.zeros(k)
        ridge = self.regularization * max(float(X.var(axis=0).mean()), 1e-12)
        for c in range(k):
            members = X[encoded == c]
            if members.shape[0] < 2:
                raise ValidationError(f"class {self.classes_[c]!r} has fewer than 2 samples")
            self.means_[c] = members.mean(axis=0)
            covariance = np.cov(members, rowvar=False, bias=True)
            covariance = np.atleast_2d(covariance)
            covariance = np.where(mask, covariance, 0.0)
            covariance[np.diag_indices(d)] += ridge
            covariance = self._nearest_psd(covariance, floor=ridge)
            self.precisions_[c] = np.linalg.inv(covariance)
            sign, log_det = np.linalg.slogdet(covariance)
            if sign <= 0:
                raise ValidationError("covariance became singular despite regularization")
            self.log_dets_[c] = log_det
            self.log_priors_[c] = np.log(members.shape[0] / X.shape[0])
        self.n_features_ = d
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "means_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValidationError(f"expected {self.n_features_} features, got {X.shape[1]}")
        log_likelihood = np.zeros((X.shape[0], self.n_classes_))
        for c in range(self.n_classes_):
            centered = X - self.means_[c]
            mahalanobis = np.einsum("ij,jk,ik->i", centered, self.precisions_[c], centered)
            log_likelihood[:, c] = self.log_priors_[c] - 0.5 * (self.log_dets_[c] + mahalanobis)
        log_likelihood -= log_likelihood.max(axis=1, keepdims=True)
        likelihood = np.exp(log_likelihood)
        return likelihood / likelihood.sum(axis=1, keepdims=True)
