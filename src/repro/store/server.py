"""HTTP semantics and the threaded transport for the artifact store.

:class:`StoreDispatcher` is the store's analogue of
:class:`~repro.serve.router.RequestDispatcher`: route parsing, header
handling, and the typed-error → status contract (400 validation or
integrity mismatch, 404 unknown key/route, 413 oversize, 503 shut down)
live here, sans sockets, so the threaded and event-loop transports
cannot drift — the same request produces byte-identical status+body on
both.

:class:`StoreHTTPServer` is the threaded transport
(:class:`http.server.ThreadingHTTPServer`, mirroring
:class:`~repro.serve.http.ServeHTTPServer`) with *streamed* artifact
bodies: a PUT hashes chunks into a unique temp file and only installs on
digest match (:meth:`StoreService.put_stream`), and a GET streams from
an open handle that was hashed through that same handle, so a
concurrent prune can never tear a response.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterator

from ..exceptions import (
    PayloadTooLargeError,
    StoreError,
    StoreIntegrityError,
    StoreUnavailableError,
    ValidationError,
)
from .service import CHUNK_BYTES, StoreService

__all__ = [
    "StoreDispatcher",
    "StoreHTTPServer",
    "serve_store_http",
    "BLOB_DIGEST_HEADER",
    "BLOB_SIZE_HEADER",
]

#: Wire-integrity header: sha256 of the raw body, verified on both ends.
BLOB_DIGEST_HEADER = "X-Repro-Blob-SHA256"

#: Blob size header (set on GET/HEAD so HEAD needs no body).
BLOB_SIZE_HEADER = "X-Repro-Blob-Bytes"

#: Typed-error → HTTP status, most specific first (the response contract).
_ERROR_STATUS = (
    (StoreIntegrityError, 400),
    (PayloadTooLargeError, 413),
    (StoreUnavailableError, 503),
    (ValidationError, 400),
    (StoreError, 500),
)

#: A rendered response: ``(status, body, content_type, extra_headers)``.
StoreResponse = tuple[int, bytes, str, dict[str, str]]


class StoreDispatcher:
    """Store HTTP semantics shared by both transports.

    Routes::

        GET/HEAD /artifacts/<key>   blob bytes + digest/size headers
        PUT      /artifacts/<key>   verify X-Repro-Blob-SHA256, install
        GET      /stat[/<key>]      store totals / one entry's size+digest
        GET      /healthz           liveness + role
        GET      /metrics           counters and histograms (JSON)
    """

    def __init__(self, service: StoreService):
        self.service = service

    # -- rendering ---------------------------------------------------------

    @staticmethod
    def json_response(status: int, payload: dict) -> StoreResponse:
        return status, json.dumps(payload).encode("utf-8"), "application/json", {}

    def not_found(self, message: str) -> StoreResponse:
        return self.json_response(404, {"error": message, "type": "NotFound"})

    def error_response(self, error: BaseException) -> StoreResponse:
        for kind, status in _ERROR_STATUS:
            if isinstance(error, kind):
                return self.json_response(status, {"error": str(error), "type": type(error).__name__})
        raise error

    # -- routing -----------------------------------------------------------

    @staticmethod
    def artifact_key(path: str) -> str | None:
        """``/artifacts/<key>`` → ``key``, anything else → ``None``."""
        parts = path.rstrip("/").split("/")
        if len(parts) == 3 and parts[1] == "artifacts" and parts[2]:
            return parts[2]
        return None

    def handle(
        self, method: str, path: str, body: bytes = b"", headers: dict[str, str] | None = None
    ) -> StoreResponse:
        """One fully-buffered request in, one rendered response out."""
        lowered = {name.lower(): value for name, value in (headers or {}).items()}
        try:
            if method in ("GET", "HEAD"):
                return self._get(method, path)
            if method == "PUT":
                return self._put(path, body, lowered)
            return self.not_found(f"no route {method} {path!r}")
        except KeyError as error:
            return self.not_found(f"no artifact {error.args[0]!r} in this store")
        except (ValidationError, StoreError) as error:
            return self.error_response(error)

    def _get(self, method: str, path: str) -> StoreResponse:
        key = self.artifact_key(path)
        if key is not None:
            blob, digest = self.service.get_blob(key)
            headers = {BLOB_DIGEST_HEADER: digest, BLOB_SIZE_HEADER: str(len(blob))}
            body = b"" if method == "HEAD" else blob
            return 200, body, "application/octet-stream", headers
        if path == "/healthz":
            return self.json_response(200, self.service.healthz())
        if path == "/metrics":
            return self.json_response(200, self.service.metrics())
        if path == "/stat":
            return self.json_response(200, self.service.stat())
        parts = path.rstrip("/").split("/")
        if len(parts) == 3 and parts[1] == "stat" and parts[2]:
            return self.json_response(200, self.service.stat_key(parts[2]))
        return self.not_found(f"no route {path!r}")

    def _put(self, path: str, body: bytes, headers: dict[str, str]) -> StoreResponse:
        key = self.artifact_key(path)
        if key is None:
            return self.not_found(f"no route {path!r}")
        result = self.service.put_blob(key, body, headers.get(BLOB_DIGEST_HEADER.lower()))
        return self.json_response(200, result)


class _Handler(BaseHTTPRequestHandler):
    """Socket plumbing; semantics live in the dispatcher/service."""

    server: "StoreHTTPServer"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # /metrics covers observability; no per-request stderr lines

    def _send(self, response: StoreResponse) -> None:
        status, body, content_type, extra = response
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        if body:
            self.wfile.write(body)

    # -- streamed artifact GET ---------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        key = StoreDispatcher.artifact_key(self.path)
        if key is None:
            self._send(self.server.dispatcher.handle("GET", self.path))
            return
        try:
            handle, size, digest = self.server.service.open_blob(key)
        except KeyError:
            self._send(self.server.dispatcher.not_found(f"no artifact {key!r} in this store"))
            return
        except (ValidationError, StoreError) as error:
            self._send(self.server.dispatcher.error_response(error))
            return
        with handle:
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(size))
            self.send_header(BLOB_DIGEST_HEADER, digest)
            self.send_header(BLOB_SIZE_HEADER, str(size))
            self.end_headers()
            while True:
                chunk = handle.read(CHUNK_BYTES)
                if not chunk:
                    break
                self.wfile.write(chunk)

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib dispatch name
        self._send(self.server.dispatcher.handle("HEAD", self.path))

    # -- streamed artifact PUT ---------------------------------------------

    def _body_chunks(self, remaining: int) -> Iterator[bytes]:
        while remaining > 0:
            chunk = self.rfile.read(min(CHUNK_BYTES, remaining))
            if not chunk:
                return  # client hung up mid-body; the digest check rejects
            remaining -= len(chunk)
            yield chunk

    def do_PUT(self) -> None:  # noqa: N802 - stdlib dispatch name
        dispatcher = self.server.dispatcher
        key = StoreDispatcher.artifact_key(self.path)
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = -1
        if key is None or length < 0:
            # Body unread: this connection's framing is lost, so close it.
            self.close_connection = True
            if key is None:
                self._send(dispatcher.not_found(f"no route {self.path!r}"))
            else:
                self._send(
                    dispatcher.error_response(ValidationError("invalid Content-Length"))
                )
            return
        claimed = self.headers.get(BLOB_DIGEST_HEADER)
        try:
            result = self.server.service.put_stream(
                key, self._body_chunks(length), claimed, declared_length=length
            )
            response = dispatcher.json_response(200, result)
        except (ValidationError, StoreError) as error:
            # An error mid-stream leaves body bytes unread on the socket;
            # close rather than let the next request misparse them.
            self.close_connection = True
            response = dispatcher.error_response(error)
        self._send(response)


class StoreHTTPServer(ThreadingHTTPServer):
    """Threaded artifact-store transport over one :class:`StoreService`."""

    daemon_threads = True

    def __init__(self, service: StoreService, host: str = "127.0.0.1", port: int = 0):
        super().__init__((host, port), _Handler)
        self.service = service
        self.dispatcher = StoreDispatcher(service)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def serve_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns it (caller keeps the server)."""
        thread = threading.Thread(target=self.serve_forever, name="repro-store-http", daemon=True)
        thread.start()
        return thread

    def close(self) -> None:
        """Stop accepting, then mark the service unavailable (503s)."""
        self.shutdown()
        self.server_close()
        self.service.close()


def serve_store_http(
    service: StoreService, host: str = "127.0.0.1", port: int = 0
) -> StoreHTTPServer:
    """Bind and background-start the threaded store server.

    ``port=0`` lets the OS pick (read it back from ``server.url``) —
    what tests and single-machine grids want.
    """
    server = StoreHTTPServer(service, host, port)
    server.serve_background()
    return server
