"""The artifact store's service core: validated blob I/O over a cache dir.

:class:`StoreService` is everything the store does minus sockets: it
owns an :class:`~repro.runtime.cache.ArtifactCache` directory, a
:class:`~repro.serve.metrics.MetricsRegistry`, and the size/integrity
rules every transport must enforce identically.  Both HTTP transports
(threaded and event-loop) call into this one object, so a request is
accepted or rejected by the same code whichever server received it.

Integrity contract: store keys are *task identities* (seed-path content
addresses), not hashes of the stored bytes — so wire integrity rides a
separate digest of the raw blob (:func:`blob_digest`).  A PUT declares
its digest up front and the service verifies before installing; a GET
reports the digest it hashed so the client can verify after reading.
Bytes that fail verification are never installed and never trusted.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Any, BinaryIO, Iterable

from ..exceptions import (
    PayloadTooLargeError,
    StoreIntegrityError,
    StoreUnavailableError,
    ValidationError,
)
from ..runtime.cache import ArtifactCache
from ..serve.metrics import MetricsRegistry

__all__ = ["StoreService", "blob_digest", "DEFAULT_MAX_BLOB_BYTES"]

#: Default per-blob size bound.  Fitted ensembles are bigger than serve's
#: JSON requests, so this is generous; it exists to bound one request's
#: disk/memory cost, not to ration the store.
DEFAULT_MAX_BLOB_BYTES = 64 * 1024 * 1024

#: Read/write granularity for streamed bodies.
CHUNK_BYTES = 1024 * 1024

_HEX = set("0123456789abcdef")


def blob_digest(blob: bytes) -> str:
    """Plain ``sha256(blob)`` hex — the wire-integrity digest.

    Deliberately unsalted and byte-exact (unlike the cache's salted task
    keys): both ends of the wire must be able to recompute it from the
    raw bytes alone.
    """
    return hashlib.sha256(blob).hexdigest()


def _require_hex_digest(value: str, what: str) -> str:
    value = str(value).lower()
    if len(value) != 64 or any(c not in _HEX for c in value):
        raise ValidationError(f"{what} must be a 64-char sha256 hex digest, got {value!r}")
    return value


class StoreService:
    """Blob get/put/stat over one cache directory, with shared validation.

    Parameters
    ----------
    directory:
        Cache directory the store serves (``None`` = the default cache
        dir).  The on-disk layout is exactly :class:`ArtifactCache`'s, so
        a store can be pointed at any existing cache and vice versa.
    max_blob_bytes:
        Hard per-blob size bound; oversize requests get a typed 413.
    metrics:
        Optional shared :class:`MetricsRegistry` (one is created if
        omitted); its snapshot is the ``/metrics`` payload.
    """

    def __init__(
        self,
        directory: Path | str | None = None,
        *,
        max_blob_bytes: int = DEFAULT_MAX_BLOB_BYTES,
        metrics: MetricsRegistry | None = None,
    ):
        if max_blob_bytes < 1:
            raise ValidationError(f"max_blob_bytes must be >= 1, got {max_blob_bytes}")
        self.cache = ArtifactCache(directory)
        self.max_blob_bytes = int(max_blob_bytes)
        self.metrics_registry = metrics if metrics is not None else MetricsRegistry()
        self._closed = False

    # -- validation --------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise StoreUnavailableError("artifact store is shut down")

    def validate_key(self, key: str) -> str:
        """Wire keys are *full* sha256 digests (stricter than path_for's >= 8)."""
        return _require_hex_digest(key, "store keys")

    def oversized_error(self, length: int) -> PayloadTooLargeError:
        """The canonical 413, so every rejection path words it identically."""
        return PayloadTooLargeError(
            f"blob of {length} bytes exceeds the store bound ({self.max_blob_bytes} bytes)"
        )

    # -- reads -------------------------------------------------------------

    def open_blob(self, key: str) -> tuple[BinaryIO, int, str]:
        """``(handle, size, sha256)`` for streaming one blob out.

        The handle is open and rewound; the digest was computed over it
        *through that same handle*, so even if the entry is concurrently
        replaced or pruned, the caller streams exactly the bytes that
        were hashed (POSIX keeps an open file alive past unlink).
        Raises ``KeyError`` when absent.
        """
        self._check_open()
        self.validate_key(key)
        try:
            handle = open(self.cache.path_for(key), "rb")
        except OSError:
            self.metrics_registry.counter("fetch_misses").inc()
            raise KeyError(key) from None
        h = hashlib.sha256()
        size = 0
        while True:
            chunk = handle.read(CHUNK_BYTES)
            if not chunk:
                break
            h.update(chunk)
            size += len(chunk)
        handle.seek(0)
        self.metrics_registry.counter("fetches").inc()
        self.metrics_registry.histogram("fetch_bytes").observe(size)
        return handle, size, h.hexdigest()

    def get_blob(self, key: str) -> tuple[bytes, str]:
        """``(blob, sha256)`` in one buffer — the non-streaming read."""
        handle, _size, digest = self.open_blob(key)
        with handle:
            return handle.read(), digest

    def stat_key(self, key: str) -> dict[str, Any]:
        """Size and digest of one entry without counting a fetch."""
        self._check_open()
        self.validate_key(key)
        blob = self.cache.read_blob(key)
        if blob is None:
            raise KeyError(key)
        return {"key": key, "bytes": len(blob), "sha256": blob_digest(blob)}

    # -- writes ------------------------------------------------------------

    def put_blob(self, key: str, blob: bytes, claimed_sha256: str | None) -> dict[str, Any]:
        """Verify-then-install one in-memory blob (the event-loop path)."""
        return self.put_stream(key, (blob,), claimed_sha256, declared_length=len(blob))

    def put_stream(
        self,
        key: str,
        chunks: Iterable[bytes],
        claimed_sha256: str | None,
        declared_length: int | None = None,
    ) -> dict[str, Any]:
        """Stream chunks to a temp file, verify the digest, atomically install.

        The integrity gate: bytes land in a unique temp file while the
        hash accumulates, and only a digest match renames them into the
        cache — a mismatch (or an oversize body) leaves the store
        untouched.  Raises the typed errors the transports map to
        400/413/503.
        """
        self._check_open()
        self.validate_key(key)
        if claimed_sha256 is None:
            raise ValidationError(
                "PUT requires an X-Repro-Blob-SHA256 header (integrity is verified before install)"
            )
        claimed = _require_hex_digest(claimed_sha256, "X-Repro-Blob-SHA256")
        if declared_length is not None and declared_length > self.max_blob_bytes:
            self.metrics_registry.counter("oversized_rejections").inc()
            raise self.oversized_error(declared_length)
        path = self.cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(prefix=f".{path.name}.", suffix=".tmp", dir=path.parent)
        h = hashlib.sha256()
        size = 0
        try:
            with os.fdopen(fd, "wb") as handle:
                for chunk in chunks:
                    size += len(chunk)
                    if size > self.max_blob_bytes:
                        self.metrics_registry.counter("oversized_rejections").inc()
                        raise self.oversized_error(size)
                    h.update(chunk)
                    handle.write(chunk)
            digest = h.hexdigest()
            if digest != claimed:
                self.metrics_registry.counter("integrity_rejections").inc()
                raise StoreIntegrityError(
                    f"uploaded bytes hash to {digest} but the client claimed {claimed}; not installing"
                )
            os.replace(tmp_name, path)
        finally:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass  # consumed by os.replace on the success path
        self.metrics_registry.counter("pushes").inc()
        self.metrics_registry.histogram("push_bytes").observe(size)
        return {"key": key, "bytes": size, "sha256": digest, "installed": True}

    # -- admin surface -----------------------------------------------------

    def stat(self) -> dict[str, Any]:
        self._check_open()
        info = self.cache.info()
        return {
            "directory": info["directory"],
            "entries": info["entries"],
            "total_bytes": info["total_bytes"],
            "max_blob_bytes": self.max_blob_bytes,
            "metrics": self.metrics_registry.snapshot(),
        }

    def healthz(self) -> dict[str, Any]:
        self._check_open()
        return {"status": "ok", "role": "artifact-store", "directory": str(self.cache.directory)}

    def metrics(self) -> dict[str, Any]:
        return self.metrics_registry.snapshot()

    # -- lifecycle (the transport-owner contract) --------------------------

    def quiesce(self, timeout: float | None = None) -> bool:
        """Nothing queues inside the service (writes are synchronous)."""
        return True

    def close(self) -> None:
        self._closed = True
