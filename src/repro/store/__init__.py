"""Distributed artifact store for the task grid (DESIGN.md §store).

The grid's determinism contract makes every cell a pure function of its
content-addressed key — so warming a cache is location-independent.
This package is the network tier that exploits that: an HTTP blob
server over an :class:`~repro.runtime.cache.ArtifactCache` directory,
and a client tier that lets one machine's grid answer from another
machine's cache with the records provably unchanged.  Four pieces:

- :mod:`~repro.store.service` — :class:`StoreService`: validated blob
  get/put/stat with SHA-256 wire integrity and a typed 400/404/413/503
  error contract, shared by every transport;
- :mod:`~repro.store.server` — :class:`StoreDispatcher` (HTTP semantics
  sans sockets) plus the threaded transport with streamed bodies;
- :mod:`~repro.store.async_server` — the same API from the serve
  layer's single-thread selectors event loop;
- :mod:`~repro.store.client` — :class:`StoreClient` (urllib wire
  client) and :class:`RemoteCacheTier`, the read-through/write-through
  peer :class:`~repro.runtime.TaskRuntime` wires in via ``store_url``.

``python -m repro store serve|stat`` exposes the package on the CLI;
``--store URL`` on the experiment commands attaches the remote tier.
"""

from .async_server import AsyncStoreServer, serve_store_async
from .client import RemoteCacheTier, StoreClient
from .server import BLOB_DIGEST_HEADER, StoreDispatcher, StoreHTTPServer, serve_store_http
from .service import DEFAULT_MAX_BLOB_BYTES, StoreService, blob_digest

__all__ = [
    "StoreService",
    "StoreDispatcher",
    "StoreHTTPServer",
    "serve_store_http",
    "AsyncStoreServer",
    "serve_store_async",
    "StoreClient",
    "RemoteCacheTier",
    "blob_digest",
    "BLOB_DIGEST_HEADER",
    "DEFAULT_MAX_BLOB_BYTES",
]
