"""Event-loop transport for the artifact store.

:class:`AsyncStoreServer` reuses the serve layer's selectors event loop
(:class:`~repro.serve.async_http.AsyncHTTPServer`) wholesale — accept,
incremental parsing, write backpressure, idle reaping, drain-on-close —
and overrides exactly two hooks: request handling routes into the shared
:class:`~repro.store.server.StoreDispatcher` (so responses are
byte-identical to the threaded transport's), and the oversize-body guard
renders the store's typed 413 instead of serve's 400.  Bodies are
buffered by the loop's parser (bounded at ``max_blob_bytes``), verified,
and installed atomically by :meth:`StoreService.put_blob`.
"""

from __future__ import annotations

import json

from ..serve.async_http import AsyncHTTPServer
from .server import StoreDispatcher
from .service import StoreService

__all__ = ["AsyncStoreServer", "serve_store_async"]


class AsyncStoreServer(AsyncHTTPServer):
    """Single-thread, selectors-based artifact-store server."""

    def __init__(
        self,
        service: StoreService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        idle_timeout: float | None = 30.0,
        max_connections: int = 1024,
    ):
        super().__init__(service, host, port, idle_timeout=idle_timeout, max_connections=max_connections)
        self.store_dispatcher = StoreDispatcher(service)
        # Blobs are legitimately large; the parser's cap is the store's.
        self.max_body_bytes = service.max_blob_bytes

    def _oversized_body(self, length: int) -> tuple[int, dict]:
        self.service.metrics_registry.counter("oversized_rejections").inc()
        error = self.service.oversized_error(length)
        status, body, _content_type, _headers = self.store_dispatcher.error_response(error)
        return status, json.loads(body)

    def _handle(self, conn, method, path, body, close_requested, headers) -> None:
        status, out, content_type, extra = self.store_dispatcher.handle(method, path, body, headers)
        self._respond_bytes(
            conn, status, out, content_type, extra_headers=extra, close=close_requested
        )


def serve_store_async(
    service: StoreService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    idle_timeout: float | None = 30.0,
    max_connections: int = 1024,
) -> AsyncStoreServer:
    """Bind and background-start the event-loop store server."""
    server = AsyncStoreServer(
        service, host, port, idle_timeout=idle_timeout, max_connections=max_connections
    )
    server.serve_background()
    return server
