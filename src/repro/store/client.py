"""Store clients: the raw HTTP client and the remote cache tier.

:class:`StoreClient` speaks the store wire protocol with stdlib urllib,
translating the typed status contract back into exceptions (404 → a
``None``/``KeyError`` miss, 413 → :class:`PayloadTooLargeError`, 503 and
raw socket failures → :class:`StoreUnavailableError`) and verifying the
``X-Repro-Blob-SHA256`` digest of every fetched body before trusting it.

:class:`RemoteCacheTier` is what the runtime actually holds: a
duck-typed :class:`~repro.runtime.cache.ArtifactCache` peer layered over
the local cache.  ``load`` is read-through — local miss → remote fetch →
digest verify → atomic local install → unpickle from disk, so a remote
hit is *byte-identical* to what a local execution would have written.
``store`` is write-through — local install first (tasks never wait on
the network), then a background push with deterministic bounded retries
(no sleeps, no clocks: ``retries + 1`` immediate attempts).  A run of
consecutive transport failures trips a circuit breaker into *degraded*
local-only mode: the peer being down can slow a grid, never fail it.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from collections import deque
from typing import Any

from ..exceptions import (
    PayloadTooLargeError,
    StoreError,
    StoreIntegrityError,
    StoreUnavailableError,
    ValidationError,
)
from ..runtime.cache import ArtifactCache
from .server import BLOB_DIGEST_HEADER, BLOB_SIZE_HEADER
from .service import blob_digest

__all__ = ["StoreClient", "RemoteCacheTier"]


class StoreClient:
    """Stdlib-urllib client for a running artifact-store server."""

    def __init__(self, url: str, *, timeout: float = 10.0):
        self.url = str(url).rstrip("/")
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _open(self, request: urllib.request.Request):
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError:
            raise  # typed statuses are translated by the caller
        except (urllib.error.URLError, OSError) as error:
            raise StoreUnavailableError(
                f"artifact store unreachable at {self.url}: {error}"
            ) from None

    def _translate(self, error: urllib.error.HTTPError) -> Exception:
        try:
            payload = json.loads(error.read().decode("utf-8"))
            message = str(payload.get("error", payload))
            type_name = str(payload.get("type", ""))
        except Exception:
            message, type_name = f"HTTP {error.code}", ""
        if error.code == 404:
            return KeyError(message)
        if error.code == 413:
            return PayloadTooLargeError(message)
        if error.code == 503:
            return StoreUnavailableError(message)
        if type_name == "StoreIntegrityError":
            return StoreIntegrityError(message)
        if error.code == 400:
            return ValidationError(message)
        return StoreError(message)

    def _json(self, path: str) -> dict[str, Any]:
        request = urllib.request.Request(self.url + path, method="GET")
        try:
            with self._open(request) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._translate(error) from None

    # -- blob operations ---------------------------------------------------

    def fetch(self, key: str) -> bytes | None:
        """Blob bytes for ``key``, or ``None`` on a remote miss.

        The client-side half of the integrity contract: the body must
        hash to the digest the server declared, else
        :class:`StoreIntegrityError` — a corrupted or tampered transfer
        is never returned as data.
        """
        request = urllib.request.Request(f"{self.url}/artifacts/{key}", method="GET")
        try:
            with self._open(request) as response:
                blob = response.read()
                claimed = response.headers.get(BLOB_DIGEST_HEADER)
        except urllib.error.HTTPError as error:
            translated = self._translate(error)
            if isinstance(translated, KeyError):
                return None
            raise translated from None
        actual = blob_digest(blob)
        if claimed is None or actual != claimed.lower():
            raise StoreIntegrityError(
                f"fetched bytes for {key} hash to {actual} but the server claimed {claimed!r}"
            )
        return blob

    def push(self, key: str, blob: bytes) -> dict[str, Any]:
        """Upload one blob under ``key``, declaring its digest up front."""
        request = urllib.request.Request(
            f"{self.url}/artifacts/{key}",
            data=blob,
            method="PUT",
            headers={
                "Content-Type": "application/octet-stream",
                BLOB_DIGEST_HEADER: blob_digest(blob),
            },
        )
        try:
            with self._open(request) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raise self._translate(error) from None

    def head(self, key: str) -> dict[str, Any] | None:
        """Size and digest of a remote entry without its body, or ``None``."""
        request = urllib.request.Request(f"{self.url}/artifacts/{key}", method="HEAD")
        try:
            with self._open(request) as response:
                return {
                    "key": key,
                    "bytes": int(response.headers.get(BLOB_SIZE_HEADER, 0)),
                    "sha256": response.headers.get(BLOB_DIGEST_HEADER, ""),
                }
        except urllib.error.HTTPError as error:
            translated = self._translate(error)
            if isinstance(translated, KeyError):
                return None
            raise translated from None

    # -- admin -------------------------------------------------------------

    def stat(self) -> dict[str, Any]:
        return self._json("/stat")

    def healthz(self) -> dict[str, Any]:
        return self._json("/healthz")


class RemoteCacheTier:
    """Read-through/write-through remote peer over a local cache.

    Implements the two-method cache contract the runtime calls
    (``load``/``store``) and transparently forwards everything else to
    the wrapped local :class:`ArtifactCache`, so it drops in anywhere a
    cache is accepted.

    Parameters
    ----------
    local:
        The local cache; always consulted first and always written — the
        remote peer is an accelerator, never the source of truth.
    url:
        Base URL of the artifact server.
    retries:
        Extra attempts after a failed transport call (``retries + 1``
        total), back-to-back — bounded and deterministic, no sleeps.
    failure_threshold:
        Consecutive transport failures that trip the breaker into
        degraded (local-only) mode.
    max_pending_pushes:
        Bound on the background push queue; overflow drops pushes (and
        counts them) rather than blocking task completion.
    background_push:
        ``False`` pushes synchronously inside ``store`` — deterministic
        ordering for tests and benchmarks.
    client:
        Injectable :class:`StoreClient` stand-in for tests.
    """

    def __init__(
        self,
        local: ArtifactCache,
        url: str,
        *,
        timeout: float = 10.0,
        retries: int = 2,
        failure_threshold: int = 3,
        max_pending_pushes: int = 256,
        background_push: bool = True,
        client: StoreClient | None = None,
    ):
        self.local = local
        if retries < 0:
            raise ValidationError(f"retries must be >= 0, got {retries}")
        if failure_threshold < 1:
            raise ValidationError(f"failure_threshold must be >= 1, got {failure_threshold}")
        self.url = str(url).rstrip("/")
        self.client = client if client is not None else StoreClient(self.url, timeout=timeout)
        self.retries = int(retries)
        self.failure_threshold = int(failure_threshold)
        self.max_pending_pushes = int(max_pending_pushes)
        self.background_push = bool(background_push)
        self.degraded = False
        self._consecutive_failures = 0
        self._pending: deque[tuple[str, bytes]] = deque()
        self._inflight = False
        self._closed = False
        self._worker: threading.Thread | None = None
        self._cond = threading.Condition()
        self.counters = {
            "remote_hits": 0,
            "remote_misses": 0,
            "remote_fetch_failures": 0,
            "integrity_rejections": 0,
            "pushes": 0,
            "push_failures": 0,
            "push_drops": 0,
            "degradations": 0,
        }

    # -- the cache contract the runtime calls ------------------------------

    def load(self, key: str) -> tuple[bool, Any]:
        """Local first; on a miss, fetch/verify/install from the peer."""
        hit, value = self.local.load(key)
        if hit:
            return True, value
        blob = self._fetch(key)
        if blob is None:
            return False, None
        self.local.install_blob(key, blob)
        hit, value = self.local.load(key)
        if not hit:
            return False, None  # remote blob unpicklable; local load evicted it
        with self._cond:
            self.counters["remote_hits"] += 1
        return True, value

    def store(self, key: str, value: Any):
        """Local install (tasks never wait on the wire), then push."""
        path = self.local.store(key, value)
        blob = self.local.read_blob(key)
        if blob is not None:
            self._submit_push(key, blob)
        return path

    def __getattr__(self, name: str):
        if name == "local":  # guard pre-__init__ lookups (unpickling, copy)
            raise AttributeError(name)
        return getattr(self.local, name)

    # -- breaker bookkeeping -----------------------------------------------

    def _note_success(self) -> None:
        with self._cond:
            self._consecutive_failures = 0

    def _note_failure(self) -> None:
        with self._cond:
            self._consecutive_failures += 1
            if not self.degraded and self._consecutive_failures >= self.failure_threshold:
                self.degraded = True
                self.counters["degradations"] += 1

    # -- fetch path --------------------------------------------------------

    def _fetch(self, key: str) -> bytes | None:
        if self.degraded:
            return None
        for _attempt in range(self.retries + 1):
            try:
                blob = self.client.fetch(key)
            except StoreIntegrityError:
                with self._cond:
                    self.counters["integrity_rejections"] += 1
                return None  # never trust or retry bytes that failed the digest
            except StoreUnavailableError:
                continue
            except (ValidationError, StoreError):
                with self._cond:
                    self.counters["remote_fetch_failures"] += 1
                return None
            self._note_success()
            if blob is None:
                with self._cond:
                    self.counters["remote_misses"] += 1
            return blob
        self._note_failure()
        with self._cond:
            self.counters["remote_fetch_failures"] += 1
        return None

    # -- push path ---------------------------------------------------------

    def _submit_push(self, key: str, blob: bytes) -> None:
        if self.degraded or self._closed:
            with self._cond:
                self.counters["push_drops"] += 1
            return
        if not self.background_push:
            self._push_now(key, blob)
            return
        with self._cond:
            if len(self._pending) >= self.max_pending_pushes:
                self.counters["push_drops"] += 1
                return
            self._pending.append((key, blob))
            if self._worker is None:
                self._worker = threading.Thread(
                    target=self._push_worker, name="repro-store-push", daemon=True
                )
                self._worker.start()
            self._cond.notify_all()

    def _push_worker(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    self._cond.wait()
                if not self._pending:
                    return  # closed and drained
                key, blob = self._pending.popleft()
                self._inflight = True
            try:
                self._push_now(key, blob)
            finally:
                with self._cond:
                    self._inflight = False
                    self._cond.notify_all()

    def _push_now(self, key: str, blob: bytes) -> None:
        if self.degraded:
            with self._cond:
                self.counters["push_drops"] += 1
            return
        for _attempt in range(self.retries + 1):
            try:
                self.client.push(key, blob)
            except StoreUnavailableError:
                continue
            except (ValidationError, StoreError):
                # Typed rejection (oversize, integrity): permanent for these
                # bytes — count it, don't touch the availability breaker.
                with self._cond:
                    self.counters["push_failures"] += 1
                return
            self._note_success()
            with self._cond:
                self.counters["pushes"] += 1
            return
        self._note_failure()
        with self._cond:
            self.counters["push_failures"] += 1

    # -- lifecycle / observability -----------------------------------------

    def flush(self, timeout: float | None = None) -> bool:
        """Wait until queued pushes are done; ``True`` when drained."""
        with self._cond:
            while self._pending or self._inflight:
                if not self._cond.wait(timeout):
                    return not (self._pending or self._inflight)
            return True

    def close(self, timeout: float = 5.0) -> None:
        """Stop accepting pushes, let the worker drain, join it."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join(timeout)

    def remote_stats(self) -> dict[str, Any]:
        """The ``record.metadata["grid"]["store"]`` payload."""
        with self._cond:
            return {
                "url": self.url,
                "degraded": self.degraded,
                "pending_pushes": len(self._pending),
                **dict(self.counters),
            }
