"""Command-line interface: ``python -m repro <command>``.

One subcommand per reproducible artifact, so a user can regenerate any
table or figure without touching Python:

- ``table1``   — Table 1 (Scream-vs-rest, nine algorithms, Wilcoxon);
- ``ucl``      — the §4.2 firewall results;
- ``figure1``  — the link-rate ALE plot;
- ``figure2``  — the firewall port ALE plots;
- ``sweep``    — the §4 threshold sensitivity analysis;
- ``emulate``  — run one network scenario through every protocol;
- ``lint``     — run reprolint (RL001-RL007) over the source tree;
- ``cache``    — inspect/clear/prune the artifact cache;
- ``registry`` — inspect/promote/rollback/gc served model versions;
- ``serve``    — serve a registered model over the JSON HTTP API;
- ``loadtest`` — replay a seeded workload shape (open/closed loop,
  retry storm, flash crowd, slow client, connection churn) against the
  in-process service or a real HTTP transport and print the LoadReport;
- ``loop``     — run the online retraining-loop demo, or report loop
  status (promotion decisions, labeling journals) from a registry;
- ``store``    — serve a cache directory as a content-addressed artifact
  server (``store serve``), or report store totals (``store stat``,
  local ``--dir`` or remote ``--url``).

``table1``, ``ucl`` and ``sweep`` accept ``--store URL``: the runtime's
cache gains a remote read-through/write-through tier against that
artifact server, so a grid with an empty local cache warms itself from a
peer's artifacts (bitwise-identical results, zero task executions when
fully warm) and pushes fresh artifacts back.  A dead store degrades the
run to local-only instead of failing it.

``table1`` and ``ucl`` accept ``--workers N`` and ``--cache
{on,off,refresh}``.  The whole experiment grid is sharded through the
runtime — dataset generation, per-repeat initial fits, and every
(repeat, strategy) cell are independent tasks — so ``--workers`` runs
grid cells in parallel end-to-end and ``--cache`` (content-addressed,
under ``~/.cache/repro-ale``; override with ``--cache-dir`` or
``$REPRO_CACHE_DIR``) answers a warm rerun per cell without touching the
network emulator or AutoML at all.  Results are bitwise-identical
whatever the worker count or cache state; a failed cell is dropped and
reported instead of crashing the run.  Because failed cells are never
cached, ``--resume`` (which forces ``--cache on``) re-executes exactly
the failed/missing cells of a previous degraded run and replays the rest
from disk, reporting the resumed counts in the record's grid metadata.

Results print to stdout; ``--output DIR`` additionally writes the JSON/CSV
record bundle.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=None, help="override the experiment seed")
    parser.add_argument("--output", type=Path, default=None, help="directory for the JSON/CSV record")
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's dataset/budget sizes (hours, not minutes)",
    )


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="run grid cells / AutoML fits on N worker processes (0 = in-process serial)",
    )
    parser.add_argument(
        "--cache",
        choices=("on", "off", "refresh"),
        default="off",
        help="artifact cache mode: reuse (on), ignore (off), or overwrite (refresh)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro-ale)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume a degraded run from its partial cache: forces --cache on, so only "
            "failed/missing cells re-execute (counts land in the record's grid metadata)"
        ),
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="URL",
        help=(
            "artifact-store server to warm from / push to (forces --cache on; "
            "a dead or unreachable store degrades to local-only, never fails the run)"
        ),
    )


def _runtime_from_args(args: argparse.Namespace):
    """Build the TaskRuntime the flags describe, or ``None`` for the implicit path."""
    if args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if getattr(args, "resume", False):
        if args.cache == "refresh":
            raise SystemExit("--resume re-uses cached cells; it cannot be combined with --cache refresh")
        args.cache = "on"  # a resume is exactly a warm rerun against the partial cache
    store_url = getattr(args, "store", None)
    if store_url is not None and args.cache == "off":
        args.cache = "on"  # the remote tier layers onto a local cache
    if args.workers == 0 and args.cache == "off":
        return None
    from .runtime import ArtifactCache, ProcessExecutor, SerialExecutor, TaskRuntime

    executor = ProcessExecutor(max_workers=args.workers) if args.workers > 1 else SerialExecutor()
    cache = ArtifactCache(args.cache_dir) if args.cache != "off" else None
    return TaskRuntime(executor, cache=cache, cache_mode=args.cache, store_url=store_url)


def _report_runtime(runtime) -> None:
    if runtime is None:
        return
    stats = runtime.stats
    failed = f", {stats['failed']} failed" if stats.get("failed") else ""
    print(
        f"runtime: {stats['executed']} task(s) executed, "
        f"{stats['cache_hits']} cache hit(s), {stats['cache_stores']} stored{failed}",
        file=sys.stderr,
    )
    if runtime.cache is not None and hasattr(type(runtime.cache), "remote_stats"):
        runtime.cache.flush(timeout=10.0)
        remote = runtime.cache.remote_stats()
        degraded = "; DEGRADED to local-only" if remote["degraded"] else ""
        print(
            f"store: {remote['url']} — {remote['remote_hits']} remote hit(s), "
            f"{remote['pushes']} push(es), {remote['push_failures']} push failure(s){degraded}",
            file=sys.stderr,
        )


def _maybe_save(record, output: Path | None) -> None:
    if output is None:
        return
    from .experiments import save_record

    path = save_record(record, output)
    print(f"\nrecord written to {path}")


def _cmd_table1(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments import PAPER_SCALE, Table1Config, run_table1

    config = PAPER_SCALE if args.paper_scale else Table1Config()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    runtime = _runtime_from_args(args)
    table, record = run_table1(
        config, progress=lambda message: print(message, file=sys.stderr), runtime=runtime
    )
    _report_runtime(runtime)
    print(record.tables["table1"])
    _maybe_save(record, args.output)
    return 0


def _cmd_ucl(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments import PAPER_SCALE_UCL, UCLConfig, run_ucl

    config = PAPER_SCALE_UCL if args.paper_scale else UCLConfig()
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    runtime = _runtime_from_args(args)
    table, record = run_ucl(
        config, progress=lambda message: print(message, file=sys.stderr), runtime=runtime
    )
    _report_runtime(runtime)
    print(record.tables["ucl"])
    for name in ("within_ale_pool", "cross_ale_pool"):
        print(f"P(no_feedback, {name}) = {table.p_value('no_feedback', name):.3g}")
    _maybe_save(record, args.output)
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments import FigureConfig, run_figure1

    config = FigureConfig()
    if args.paper_scale:
        config = replace(config, n_train=1161, automl_iterations=120, ensemble_size=16)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    artifact = run_figure1(config)
    print(artifact.ascii_plot)
    print(f"\nthreshold T = {artifact.threshold:.4g}")
    print(f"feedback:    {artifact.flagged_intervals}")
    _maybe_save(artifact.to_record(), args.output)
    return 0


def _cmd_figure2(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .experiments import FigureConfig, run_figure2

    config = FigureConfig(grid_strategy="quantile", grid_size=48, n_train=2500)
    if args.paper_scale:
        config = replace(config, n_train=65532, automl_iterations=120, ensemble_size=16)
    if args.seed is not None:
        config = replace(config, seed=args.seed)
    fig2a, fig2b = run_figure2(config)
    for artifact in (fig2a, fig2b):
        print(artifact.ascii_plot)
        print(f"feedback: {artifact.flagged_intervals}\n")
        _maybe_save(artifact.to_record(), args.output)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .automl import AutoMLClassifier
    from .experiments import sweep_thresholds, sweep_to_csv
    from .experiments.grid import fetch_datasets
    from .experiments.tasks import scream_dataset_task
    from .runtime import default_runtime

    seed = args.seed if args.seed is not None else 2021
    n = 1161 if args.paper_scale else 300
    # The canonical dataset task: a sweep asking for the same (n, seed)
    # as a table1/ucl run shares their cached artifact — locally or
    # through --store — instead of regenerating it.
    runtime = _runtime_from_args(args)
    rt = runtime if runtime is not None else default_runtime()
    [dataset] = fetch_datasets(rt, [scream_dataset_task(n, seed)])
    automl = AutoMLClassifier(
        n_iterations=120 if args.paper_scale else 14,
        ensemble_size=8,
        min_distinct_members=5,
        random_state=seed,
    ).fit(dataset.X, dataset.y)
    rows = sweep_thresholds(
        automl.ensemble_members_, dataset.X, dataset.domains, grid_size=24
    )
    _report_runtime(runtime)
    print(sweep_to_csv(rows))
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    import json

    if args.action == "stat":
        if args.url is not None:
            from .store import StoreClient

            print(json.dumps(StoreClient(args.url).stat(), indent=2, sort_keys=True))
            return 0
        from .store import StoreService

        print(json.dumps(StoreService(args.dir).stat(), indent=2, sort_keys=True))
        return 0

    from .store import StoreService, serve_store_async, serve_store_http

    service = StoreService(args.dir, max_blob_bytes=int(args.max_blob_mb * 1024 * 1024))
    factory = serve_store_async if args.transport == "async" else serve_store_http
    server = factory(service, host=args.host, port=args.port)
    print(
        f"artifact store serving {service.cache.directory} on {server.url} "
        f"({args.transport} transport; Ctrl-C to stop)",
        file=sys.stderr,
    )
    import threading

    try:
        threading.Event().wait()  # foreground until Ctrl-C
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .runtime import ArtifactCache

    cache = ArtifactCache(args.dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entrie(s) from {cache.directory}")
        return 0
    if args.action == "prune":
        if args.max_mb is None:
            print("cache prune requires --max-mb", file=sys.stderr)
            return 2
        evicted = cache.prune(int(args.max_mb * 1024 * 1024))
        print(f"evicted {evicted} entrie(s) from {cache.directory}")
        return 0
    info = cache.info()
    print(f"directory:   {info['directory']}")
    print(f"entries:     {info['entries']}")
    print(f"total bytes: {info['total_bytes']} ({info['total_bytes'] / 1024 / 1024:.1f} MiB)")
    return 0


def _cmd_registry(args: argparse.Namespace) -> int:
    from .serve import ModelRegistry

    registry = ModelRegistry(args.dir)
    if args.action == "gc":
        result = registry.gc(dry_run=args.dry_run)
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"{verb} {result['unreferenced'] if args.dry_run else result['removed']} "
            f"unreferenced artifact(s) ({result['bytes_freed']} bytes); "
            f"{result['referenced']} referenced key(s) kept"
        )
        return 0
    if args.action == "promote":
        if args.name is None or args.version is None:
            print("registry promote requires NAME and --version N", file=sys.stderr)
            return 2
        registry.promote(args.name, args.version)
        print(f"promoted {args.name} v{args.version}")
        return 0
    if args.action == "rollback":
        if args.name is None:
            print("registry rollback requires NAME", file=sys.stderr)
            return 2
        version = registry.rollback(args.name)
        print(f"rolled {args.name} back to v{version}")
        return 0
    print(registry.describe())
    return 0


def _cmd_loop(args: argparse.Namespace) -> int:
    import json

    if args.action == "status":
        from .serve import ModelRegistry, default_registry_dir

        registry = ModelRegistry(args.dir)
        directory = args.dir if args.dir is not None else default_registry_dir()
        print(registry.describe())
        for name in registry.names():
            for version, info in registry.versions(name).items():
                loop_meta = info.get("metadata", {}).get("loop")
                if loop_meta:
                    verdict = "promoted" if loop_meta["promoted"] else "rejected"
                    reasons = "; ".join(loop_meta["reasons"]) or "all gates passed"
                    print(f"  {name} v{version}: loop {verdict} ({reasons})")
            journal = Path(directory) / "labeling" / f"{name}.jsonl"
            if journal.exists():
                print(f"  {name}: labeling journal {journal} ({journal.stat().st_size} bytes)")
        return 0

    from .loop import run_demo

    summary = run_demo(args.dir if args.dir is not None else Path(".") / "loop-demo", seed=args.seed)
    for index, event in enumerate(summary["ticks"]):
        print(f"tick {index:2d}: {json.dumps(event, sort_keys=True)}")
    print(summary["registry"])
    if args.json:
        print(json.dumps(summary["status"], indent=2, sort_keys=True))
    else:
        counters = summary["status"]["counters"]
        print(
            f"loop: {counters['loop_triggers']} trigger(s), {counters['loop_retrains']} retrain(s), "
            f"{counters['loop_promotions']} promotion(s), {counters['loop_rejections']} rejection(s); "
            f"serving v{summary['status']['serving_version']}"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, ServeService, serve_http

    config = ServeConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_bound=args.queue_bound,
        request_timeout=args.request_timeout,
    )
    service = ServeService.from_registry(
        args.name, directory=args.dir, version=args.version, config=config
    )
    server = serve_http(service, host=args.host, port=args.port)
    health = service.healthz()
    print(
        f"serving {health['model']} v{health['version']} on {server.url} "
        f"(features: {', '.join(health['feature_names'])}; Ctrl-C to stop)",
        file=sys.stderr,
    )
    import threading

    try:
        threading.Event().wait()  # foreground until Ctrl-C
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .loadgen import (
        HttpTarget,
        InProcessTarget,
        check_accounting,
        closed_loop,
        connection_churn,
        flash_crowd,
        open_loop,
        retry_storm,
        run_workload,
        slow_client,
    )
    from .serve import ServeConfig, ServeService, serve_async_http, serve_http

    config = ServeConfig(
        max_batch=args.max_batch,
        max_delay=args.max_delay,
        queue_bound=args.queue_bound,
        request_timeout=args.request_timeout,
    )
    shape_kwargs = {"rows_per_request": args.rows, "clients": args.clients}
    if args.shape == "open":
        shape = open_loop(args.requests, args.rate, **shape_kwargs)
    elif args.shape == "closed":
        shape = closed_loop(args.requests, args.clients, rows_per_request=args.rows)
    elif args.shape == "retry-storm":
        shape = retry_storm(args.requests, args.rate, **shape_kwargs)
    elif args.shape == "flash-crowd":
        shape = flash_crowd(args.requests, args.rate, args.rate * 10, **shape_kwargs)
    elif args.shape == "slow-client":
        shape = slow_client(args.requests, args.rate, **shape_kwargs)
    else:
        shape = connection_churn(args.requests, args.rate, **shape_kwargs)

    if args.name is not None:
        service = ServeService.from_registry(args.name, directory=args.dir, config=config)
        X = _loadtest_rows(service, args.seed)
    else:
        # Demo mode: fit a small model on generated Scream traffic.
        from .automl import AutoMLClassifier
        from .datasets import generate_scream_dataset
        from .serve import ModelRegistry

        print("no model name given: fitting a demo model on Scream data", file=sys.stderr)
        data = generate_scream_dataset(160, random_state=args.seed)
        automl = AutoMLClassifier(n_iterations=6, ensemble_size=3, random_state=7).fit(data.X, data.y)
        tmpdir = tempfile.mkdtemp(prefix="repro-loadtest-")
        registry = ModelRegistry(tmpdir)
        registry.register("demo", automl, data.X, data.domains)
        service = ServeService.from_registry("demo", directory=tmpdir, config=config)
        X = data.X

    server = None
    try:
        if args.transport == "inproc":
            target = InProcessTarget(service)
        elif args.transport == "threaded":
            server = serve_http(service, host="127.0.0.1", port=0)
            target = HttpTarget(server.url)
        else:
            server = serve_async_http(service, host="127.0.0.1", port=0)
            target = HttpTarget(server.url)
        report = run_workload(target, X, shape, seed=args.seed)
    finally:
        if server is not None:
            server.close()  # also closes the service
        else:
            service.close()

    print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    check_accounting(report, allow_failed=shape.abort_fraction > 0)
    print(
        f"accounting identity holds: offered={report.offered} == completed={report.completed} "
        f"+ shed={report.shed} + timed_out={report.timed_out} + failed={report.failed}",
        file=sys.stderr,
    )
    return 0


def _loadtest_rows(service, seed: int):
    """Sample request rows uniformly from the served model's feature domains."""
    import numpy as np

    from .rng import check_random_state

    rng = check_random_state(seed)
    columns = [rng.uniform(domain.low, domain.high, size=256) for domain in service.bundle.domains]
    return np.column_stack(columns)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .devtools.cli import run_lint

    return run_lint(args)


def _cmd_emulate(args: argparse.Namespace) -> int:
    from .netsim import PROTOCOLS, NetworkScenario, run_fluid_scenario, run_packet_scenario

    scenario = NetworkScenario(
        bandwidth_mbps=args.bandwidth,
        rtt_ms=args.rtt,
        loss_rate=args.loss,
        n_flows=args.flows,
    )
    run = run_packet_scenario if args.engine == "packet" else run_fluid_scenario
    kwargs = {"duration": 5.0} if args.engine == "packet" else {}
    seed = args.seed if args.seed is not None else 0
    print(f"scenario: {scenario}")
    print(f"{'protocol':10s} {'p95 delay':>10s} {'avg delay':>10s} {'throughput':>11s} {'loss':>7s}")
    for protocol in sorted(PROTOCOLS):
        metrics = run(scenario, protocol, random_state=seed, **kwargs)
        print(
            f"{protocol:10s} {metrics.p95_delay_ms:8.1f}ms {metrics.avg_delay_ms:8.1f}ms "
            f"{metrics.throughput_mbps:8.2f}Mbps {metrics.loss_fraction:7.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of 'Interpretable Feedback for AutoML' (HotNets'21).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, handler, help_text in (
        ("table1", _cmd_table1, "reproduce Table 1 (Scream-vs-rest)"),
        ("ucl", _cmd_ucl, "reproduce the §4.2 firewall results"),
        ("figure1", _cmd_figure1, "reproduce Figure 1 (link-rate ALE)"),
        ("figure2", _cmd_figure2, "reproduce Figures 2a/2b (port ALE)"),
        ("sweep", _cmd_sweep, "threshold sensitivity (§4)"),
    ):
        sub = subparsers.add_parser(name, help=help_text)
        _add_common(sub)
        if name in ("table1", "ucl", "sweep"):
            _add_runtime_options(sub)
        sub.set_defaults(handler=handler)

    store = subparsers.add_parser("store", help="serve or inspect a content-addressed artifact store")
    store.add_argument("action", choices=("serve", "stat"), nargs="?", default="serve")
    store.add_argument("--dir", type=Path, default=None, help="cache directory to serve (default: the artifact cache dir)")
    store.add_argument("--url", default=None, help="stat: query a running store server instead of a local directory")
    store.add_argument("--host", default="127.0.0.1")
    store.add_argument("--port", type=int, default=8751)
    store.add_argument(
        "--transport",
        choices=("threaded", "async"),
        default="threaded",
        help="thread-per-connection or single-thread event loop (identical wire behaviour)",
    )
    store.add_argument("--max-blob-mb", type=float, default=64.0, help="largest accepted blob (MiB)")
    store.set_defaults(handler=_cmd_store)

    cache = subparsers.add_parser("cache", help="inspect/clear/prune the artifact cache")
    cache.add_argument(
        "action", choices=("info", "clear", "prune"), nargs="?", default="info"
    )
    cache.add_argument("--dir", type=Path, default=None, help="cache directory override")
    cache.add_argument("--max-mb", type=float, default=None, help="prune target size in MiB")
    cache.set_defaults(handler=_cmd_cache)

    registry = subparsers.add_parser("registry", help="inspect/promote/rollback/gc served models")
    registry.add_argument("action", choices=("list", "promote", "rollback", "gc"), nargs="?", default="list")
    registry.add_argument("name", nargs="?", default=None, help="model name (promote/rollback)")
    registry.add_argument("--version", type=int, default=None, help="version to promote")
    registry.add_argument("--dir", type=Path, default=None, help="registry directory override")
    registry.add_argument("--dry-run", action="store_true", help="gc: report what would be removed, delete nothing")
    registry.set_defaults(handler=_cmd_registry)

    loop = subparsers.add_parser("loop", help="run the retraining-loop demo / show loop status")
    loop.add_argument("action", choices=("demo", "status"), nargs="?", default="demo")
    loop.add_argument("--dir", type=Path, default=None, help="working/registry directory override")
    loop.add_argument("--seed", type=int, default=0, help="demo seed")
    loop.add_argument("--json", action="store_true", help="demo: print the final status as JSON")
    loop.set_defaults(handler=_cmd_loop)

    serve = subparsers.add_parser("serve", help="serve a registered model over HTTP")
    serve.add_argument("name", help="registered model name")
    serve.add_argument("--dir", type=Path, default=None, help="registry directory override")
    serve.add_argument("--version", type=int, default=None, help="serve a specific version (default: promoted)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750)
    serve.add_argument("--max-batch", type=int, default=32, help="micro-batch flush size (rows)")
    serve.add_argument("--max-delay", type=float, default=0.01, help="micro-batch flush deadline (seconds)")
    serve.add_argument("--queue-bound", type=int, default=256, help="pending requests before shedding")
    serve.add_argument("--request-timeout", type=float, default=10.0, help="per-request reply timeout (seconds)")
    serve.set_defaults(handler=_cmd_serve)

    loadtest = subparsers.add_parser(
        "loadtest", help="replay a seeded workload shape against a serving transport"
    )
    loadtest.add_argument("name", nargs="?", default=None, help="registered model name (default: fit a demo model)")
    loadtest.add_argument("--dir", type=Path, default=None, help="registry directory override")
    loadtest.add_argument(
        "--transport",
        choices=("inproc", "threaded", "async"),
        default="inproc",
        help="drive the service directly, or over real sockets via a transport",
    )
    loadtest.add_argument(
        "--shape",
        choices=("open", "closed", "retry-storm", "flash-crowd", "slow-client", "churn"),
        default="open",
        help="workload shape (see repro.loadgen.workloads)",
    )
    loadtest.add_argument("--requests", type=int, default=200, help="total (open) or per-client (closed) requests")
    loadtest.add_argument("--rate", type=float, default=200.0, help="open-loop arrival rate (req/s)")
    loadtest.add_argument("--clients", type=int, default=4, help="driver worker threads / closed-loop population")
    loadtest.add_argument("--rows", type=int, default=1, help="rows per request")
    loadtest.add_argument("--seed", type=int, default=0, help="workload seed (schedule, rows, aborts)")
    loadtest.add_argument("--max-batch", type=int, default=32, help="micro-batch flush size (rows)")
    loadtest.add_argument("--max-delay", type=float, default=0.005, help="micro-batch flush deadline (seconds)")
    loadtest.add_argument("--queue-bound", type=int, default=256, help="pending requests before shedding")
    loadtest.add_argument("--request-timeout", type=float, default=5.0, help="per-request reply timeout (seconds)")
    loadtest.set_defaults(handler=_cmd_loadtest)

    emulate = subparsers.add_parser("emulate", help="run one scenario through every protocol")
    emulate.add_argument("--bandwidth", type=float, default=20.0, help="bottleneck Mbps")
    emulate.add_argument("--rtt", type=float, default=40.0, help="base RTT in ms")
    emulate.add_argument("--loss", type=float, default=0.0, help="random loss rate")
    emulate.add_argument("--flows", type=int, default=1, help="concurrent flows")
    emulate.add_argument("--engine", choices=("packet", "fluid"), default="packet")
    emulate.add_argument("--seed", type=int, default=None)
    emulate.set_defaults(handler=_cmd_emulate)

    from .devtools.cli import add_lint_arguments

    lint = subparsers.add_parser("lint", help="check code invariants (rules RL001-RL007)")
    add_lint_arguments(lint)
    lint.set_defaults(handler=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
