"""Uniform-sampling baseline.

The simplest benchmark in Table 1: sample the same number of points as the
ALE feedback, uniformly over the whole feature space, and add them to the
training set.  It controls for the "more data helps regardless" effect —
ALE feedback must beat it to show the *placement* of the data matters.
"""

from __future__ import annotations

import numpy as np

from ..core.subspace import FeatureDomain
from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state

__all__ = ["sample_uniform"]


def sample_uniform(
    domains: list[FeatureDomain],
    n_points: int,
    *,
    random_state: RandomState = None,
) -> np.ndarray:
    """Draw ``n_points`` uniformly over the product of feature domains."""
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    if not domains:
        raise ValidationError("need at least one feature domain")
    rng = check_random_state(random_state)
    return np.column_stack([domain.sample(n_points, rng) for domain in domains])
