"""Deterministic training-set augmentation for the retraining loop.

The online loop folds operator-labeled feedback points into the training
set before every refit.  Doing that naively (``np.vstack`` and hope) has
two failure modes the loop cannot afford: a point served twice lands in
the set twice (doubling its weight arbitrarily), and the merge order
depends on queue timing (breaking the determinism contract the artifact
cache keys on).  :func:`merge_labeled` fixes both — base rows first and
untouched, new rows appended in their given order, bitwise-duplicate
rows skipped — so the merged set is a pure function of (base set, new
points in drain order), which is exactly the payload the retrain task
digests.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["merge_labeled"]


def merge_labeled(
    X,
    y,
    X_new,
    y_new,
    *,
    dedup: bool = True,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Append newly labeled points to a training set, deterministically.

    Parameters
    ----------
    X, y:
        The base training set (kept first, byte-for-byte unchanged).
    X_new, y_new:
        Newly labeled points, appended in their given order.
    dedup:
        With ``True`` (default) a new row whose feature bytes exactly
        match an existing row — or an earlier new row — is skipped, and
        the existing label wins: relabeling a point the set already
        contains must not double its weight or flip it mid-merge.

    Returns
    -------
    The merged ``(X, y)`` arrays plus the number of rows actually added.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    X_new = np.asarray(X_new, dtype=np.float64)
    y_new = np.asarray(y_new)
    if X.ndim != 2 or X_new.ndim != 2:
        raise ValidationError("X and X_new must be 2-dimensional")
    if X_new.shape[0] and X_new.shape[1] != X.shape[1]:
        raise ValidationError(
            f"X has {X.shape[1]} features but X_new has {X_new.shape[1]}"
        )
    if y.shape[0] != X.shape[0]:
        raise ValidationError(f"{X.shape[0]} rows but {y.shape[0]} labels")
    if y_new.shape[0] != X_new.shape[0]:
        raise ValidationError(f"{X_new.shape[0]} new rows but {y_new.shape[0]} new labels")

    if X_new.shape[0] == 0:
        return X, y, 0
    if not dedup:
        return np.concatenate([X, X_new]), np.concatenate([y, y_new]), int(X_new.shape[0])

    seen = {np.ascontiguousarray(row).tobytes() for row in X}
    keep: list[int] = []
    for index, row in enumerate(X_new):
        key = np.ascontiguousarray(row).tobytes()
        if key in seen:
            continue
        seen.add(key)
        keep.append(index)
    if not keep:
        return X, y, 0
    return (
        np.concatenate([X, X_new[keep]]),
        np.concatenate([y, y_new[keep]]),
        len(keep),
    )
