"""Query-by-Committee over the AutoML ensemble (paper §2.2 / §4).

Classic QBC (Seung, Opper & Sompolinsky 1992) queries the unlabeled points
on which a committee of models disagrees most.  Following the paper, the
committee is the AutoML ensemble itself — re-purposed rather than curated —
and disagreement is measured with **vote entropy** (Dagan & Engelson 1995):

    VE(x) = − Σ_c (V_c / |C|) · log(V_c / |C|)

where ``V_c`` counts committee votes for class ``c``.  A soft variant using
the members' averaged probabilities (consensus KL) is also provided.

This is the paper's closest baseline: the *only* difference from the
ALE-based feedback is the disagreement metric (prediction entropy at pool
points vs ALE variance over feature space) — which is exactly the ablation
``benchmarks/test_ablation_disagreement.py`` runs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["vote_entropy", "consensus_kl", "select_by_committee"]


def vote_entropy(committee, pool_X) -> np.ndarray:
    """Hard-vote entropy of the committee at each pool point."""
    committee = list(committee)
    if len(committee) < 2:
        raise ValidationError(f"QBC needs a committee of >= 2 models, got {len(committee)}")
    pool_X = np.asarray(pool_X, dtype=np.float64)
    votes = np.stack([member.predict(pool_X) for member in committee])  # (members, n)
    n_members = votes.shape[0]
    entropies = np.zeros(pool_X.shape[0])
    for i in range(pool_X.shape[0]):
        _, counts = np.unique(votes[:, i], return_counts=True)
        fractions = counts / n_members
        entropies[i] = -np.sum(fractions * np.log(fractions))
    return entropies


def consensus_kl(committee, pool_X) -> np.ndarray:
    """Mean KL divergence of each member's distribution from the consensus.

    The soft-vote QBC disagreement (McCallum & Nigam 1998); more sensitive
    than vote entropy when members agree on the argmax but differ in
    confidence.
    """
    committee = list(committee)
    if len(committee) < 2:
        raise ValidationError(f"QBC needs a committee of >= 2 models, got {len(committee)}")
    pool_X = np.asarray(pool_X, dtype=np.float64)
    probas = [np.clip(member.predict_proba(pool_X), 1e-12, 1.0) for member in committee]
    # Members can expose different class counts if fit on odd splits; the
    # AutoML search aligns them, so a mismatch here is a caller bug.
    widths = {p.shape[1] for p in probas}
    if len(widths) != 1:
        raise ValidationError(f"committee members disagree on class count: {sorted(widths)}")
    stacked = np.stack(probas)  # (members, n, classes)
    consensus = stacked.mean(axis=0, keepdims=True)
    kl = np.sum(stacked * np.log(stacked / consensus), axis=2)  # (members, n)
    return kl.mean(axis=0)


def select_by_committee(
    committee,
    pool_X,
    n_points: int,
    *,
    disagreement: str = "vote_entropy",
) -> np.ndarray:
    """Indices of the ``n_points`` highest-disagreement pool candidates."""
    pool_X = np.asarray(pool_X, dtype=np.float64)
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    if n_points > pool_X.shape[0]:
        raise ValidationError(f"asked for {n_points} points from a pool of {pool_X.shape[0]}")
    if disagreement == "vote_entropy":
        scores = vote_entropy(committee, pool_X)
    elif disagreement == "consensus_kl":
        scores = consensus_kl(committee, pool_X)
    else:
        raise ValidationError(
            f"unknown disagreement {disagreement!r}; use 'vote_entropy' or 'consensus_kl'"
        )
    return np.argsort(scores)[::-1][:n_points]
