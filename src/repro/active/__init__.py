"""Active-learning baselines and label-imbalance treatments (§4 benchmarks).

- :func:`sample_uniform` — uniform feature-space sampling;
- :func:`select_least_confident` — confidence-based uncertainty sampling;
- :func:`select_by_committee` — QBC with vote entropy over the AutoML
  ensemble;
- :func:`random_oversample` / :func:`smote` — upsampling;
- :func:`merge_labeled` — deterministic augmentation merge for the
  online retraining loop.
"""

from .augment import merge_labeled
from .confidence import entropy_scores, least_confidence_scores, margin_scores, select_least_confident
from .qbc import consensus_kl, select_by_committee, vote_entropy
from .uniform import sample_uniform
from .upsampling import random_oversample, smote

__all__ = [
    "sample_uniform",
    "least_confidence_scores",
    "margin_scores",
    "entropy_scores",
    "select_least_confident",
    "vote_entropy",
    "consensus_kl",
    "select_by_committee",
    "random_oversample",
    "smote",
    "merge_labeled",
]
