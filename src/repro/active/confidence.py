"""Confidence-based (least-confidence) active learning baseline.

The most widely used uncertainty-sampling strategy (Lewis & Gale 1994):
score each unlabeled candidate by the model's confidence in its most
likely class and request labels for the least confident ones.  As in the
paper, the confidence comes from the AutoML system's ``predict_proba``.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError

__all__ = ["least_confidence_scores", "select_least_confident", "margin_scores", "entropy_scores"]


def least_confidence_scores(model, pool_X) -> np.ndarray:
    """Uncertainty = 1 − max-class probability (higher = more uncertain)."""
    proba = model.predict_proba(np.asarray(pool_X, dtype=np.float64))
    return 1.0 - proba.max(axis=1)


def margin_scores(model, pool_X) -> np.ndarray:
    """Uncertainty = negative margin between the top two classes."""
    proba = model.predict_proba(np.asarray(pool_X, dtype=np.float64))
    if proba.shape[1] < 2:
        raise ValidationError("margin scores need at least 2 classes")
    part = np.partition(proba, -2, axis=1)
    return 1.0 - (part[:, -1] - part[:, -2])


def entropy_scores(model, pool_X) -> np.ndarray:
    """Uncertainty = predictive entropy of the class distribution."""
    proba = model.predict_proba(np.asarray(pool_X, dtype=np.float64))
    clipped = np.clip(proba, 1e-12, 1.0)
    return -np.sum(clipped * np.log(clipped), axis=1)


def select_least_confident(model, pool_X, n_points: int, *, scorer=least_confidence_scores) -> np.ndarray:
    """Indices of the ``n_points`` most uncertain pool candidates."""
    pool_X = np.asarray(pool_X, dtype=np.float64)
    if n_points < 1:
        raise ValidationError(f"n_points must be >= 1, got {n_points}")
    if n_points > pool_X.shape[0]:
        raise ValidationError(f"asked for {n_points} points from a pool of {pool_X.shape[0]}")
    scores = scorer(model, pool_X)
    return np.argsort(scores)[::-1][:n_points]
