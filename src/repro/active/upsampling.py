"""Label-imbalance treatments: random oversampling and SMOTE.

The Scream-vs-rest dataset is label-imbalanced, and Table 1 compares the
feedback approaches against the standard data-science fix.  Both variants
are provided:

- :func:`random_oversample` — duplicate minority-class rows until every
  class matches the majority count;
- :func:`smote` — Synthetic Minority Over-sampling TEchnique (Chawla et
  al. 2002): synthesize minority points by interpolating between a
  minority sample and one of its ``k`` nearest minority neighbours.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ValidationError
from ..rng import RandomState, check_random_state

__all__ = ["random_oversample", "smote"]


def _class_index(y: np.ndarray) -> dict:
    return {label: np.flatnonzero(y == label) for label in np.unique(y)}


def random_oversample(X, y, *, random_state: RandomState = None) -> tuple[np.ndarray, np.ndarray]:
    """Duplicate minority rows (with replacement) to the majority count."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(f"X/y length mismatch: {X.shape[0]} vs {y.shape[0]}")
    rng = check_random_state(random_state)
    groups = _class_index(y)
    target = max(members.size for members in groups.values())
    parts_X, parts_y = [X], [y]
    for label, members in groups.items():
        deficit = target - members.size
        if deficit > 0:
            picks = rng.choice(members, size=deficit, replace=True)
            parts_X.append(X[picks])
            parts_y.append(y[picks])
    X_out = np.vstack(parts_X)
    y_out = np.concatenate(parts_y)
    order = rng.permutation(X_out.shape[0])
    return X_out[order], y_out[order]


def smote(
    X,
    y,
    *,
    k_neighbors: int = 5,
    random_state: RandomState = None,
) -> tuple[np.ndarray, np.ndarray]:
    """SMOTE: balance classes with interpolated synthetic minority samples.

    For each needed synthetic point, pick a random minority sample ``a``
    and a random one of its ``k`` nearest minority neighbours ``b``, and
    emit ``a + u·(b − a)`` with ``u ~ U(0, 1)``.  Classes with a single
    sample fall back to duplication (no neighbour to interpolate toward).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValidationError(f"X/y length mismatch: {X.shape[0]} vs {y.shape[0]}")
    if k_neighbors < 1:
        raise ValidationError(f"k_neighbors must be >= 1, got {k_neighbors}")
    rng = check_random_state(random_state)
    groups = _class_index(y)
    target = max(members.size for members in groups.values())
    parts_X, parts_y = [X], [y]
    for label, members in groups.items():
        deficit = target - members.size
        if deficit <= 0:
            continue
        minority = X[members]
        if members.size == 1:
            parts_X.append(np.repeat(minority, deficit, axis=0))
            parts_y.append(np.repeat(y[members], deficit))
            continue
        k = min(k_neighbors, members.size - 1)
        # Pairwise distances within the minority class (small by definition).
        deltas = minority[:, None, :] - minority[None, :, :]
        distances = np.sqrt(np.sum(deltas**2, axis=2))
        np.fill_diagonal(distances, np.inf)
        neighbor_ids = np.argsort(distances, axis=1)[:, :k]
        anchors = rng.integers(0, members.size, size=deficit)
        picked_neighbor = neighbor_ids[anchors, rng.integers(0, k, size=deficit)]
        fractions = rng.random((deficit, 1))
        synthetic = minority[anchors] + fractions * (minority[picked_neighbor] - minority[anchors])
        parts_X.append(synthetic)
        parts_y.append(np.full(deficit, label, dtype=y.dtype))
    X_out = np.vstack(parts_X)
    y_out = np.concatenate(parts_y)
    order = rng.permutation(X_out.shape[0])
    return X_out[order], y_out[order]
