"""When to retrain, and how to make the refit a cache-addressable task.

The controller owns the two decisions that make the loop *deterministic*
rather than merely automatic:

- **trigger** — purely a function of serving counters (labeling-queue
  depth, uncertain-region hit rate), read from numbers the
  :class:`~repro.serve.MetricsRegistry` already exports.  No clocks, no
  randomness: replaying the same traffic trace triggers at the same
  request.
- **refit identity** — the retrain runs as one ``loop.retrain`` task
  under the *fixed* seed path ``(retrain_seed, _RETRAIN_KEY)``.  The
  cache key therefore varies only with the payload — the merged training
  set, the holdout, the spec — so a re-triggered retrain over identical
  queue contents is a pure cache hit returning a bitwise-identical
  model, on any executor.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Sequence

import numpy as np

from ..active import merge_labeled
from ..exceptions import ValidationError
from ..runtime import Task, TaskRuntime
from .config import LoopConfig

__all__ = ["RetrainController", "RetrainResult"]

#: Fixed spawn key for the retrain seed path — ASCII "LOOP".  Fixed on
#: purpose: a generation-indexed key would make every retrain's cache key
#: unique, defeating the identical-inputs-hit-the-cache contract.
_RETRAIN_KEY = 0x4C4F4F50


@dataclasses.dataclass(frozen=True)
class RetrainResult:
    """One refit's output: the candidate plus everything the gate needs.

    ``X``/``y`` are the augmented training set (base data plus the
    ``n_added`` deduplicated new labels) — the gate anchors the
    candidate's feedback analysis and ALE-drift comparison to them.
    ``refits`` counts actual task executions: 0 means the artifact cache
    answered (a re-triggered retrain over identical inputs).
    """

    model: Any
    score: float
    X: np.ndarray
    y: np.ndarray
    n_added: int
    refits: int


class RetrainController:
    """Decide when to retrain and run the refit through the task runtime.

    Parameters
    ----------
    runtime:
        The :class:`~repro.runtime.TaskRuntime` refits execute on; give
        it a cache to make re-triggered retrains free.
    spec:
        A picklable factory ``rng -> classifier`` (e.g.
        :class:`repro.automl.AutoMLSpec`) — picklable because the refit
        may cross a process boundary.
    X, y:
        The base training set every augmentation starts from.
    X_eval, y_eval:
        A fixed holdout; both candidate and incumbent are scored on it,
        so the gate's comparison is apples-to-apples.
    config:
        The loop policy (:class:`LoopConfig`).
    """

    def __init__(
        self,
        runtime: TaskRuntime,
        spec,
        X,
        y,
        X_eval,
        y_eval,
        *,
        config: LoopConfig | None = None,
    ):
        self.runtime = runtime
        self.spec = spec
        self.config = config if config is not None else LoopConfig()
        self.X = np.asarray(X, dtype=np.float64)
        self.y = np.asarray(y)
        self.X_eval = np.asarray(X_eval, dtype=np.float64)
        self.y_eval = np.asarray(y_eval)
        if self.X.ndim != 2 or self.X_eval.ndim != 2:
            raise ValidationError("X and X_eval must be 2-dimensional")
        if self.X.shape[0] != self.y.shape[0]:
            raise ValidationError(f"{self.X.shape[0]} rows but {self.y.shape[0]} labels")
        if self.X_eval.shape[0] != self.y_eval.shape[0]:
            raise ValidationError(
                f"{self.X_eval.shape[0]} eval rows but {self.y_eval.shape[0]} eval labels"
            )

    # -- trigger -----------------------------------------------------------

    def should_trigger(
        self, *, queue_depth: int, served_points: int, uncertain_points: int
    ) -> str | None:
        """The retrain trigger: a reason string, or ``None`` to stay idle.

        Fires when the labeling backlog reaches ``min_queue_depth``, or —
        once ``min_served_points`` points have been served — when the
        uncertain-region hit rate reaches ``uncertain_rate``.  Both paths
        require a non-empty queue: a retrain with nothing to ingest would
        refit the incumbent's own training set.
        """
        if queue_depth < 1:
            return None
        cfg = self.config
        if queue_depth >= cfg.min_queue_depth:
            return f"labeling queue depth {queue_depth} >= {cfg.min_queue_depth}"
        if served_points >= cfg.min_served_points:
            rate = uncertain_points / served_points
            if rate >= cfg.uncertain_rate:
                return (
                    f"uncertain-region hit rate {rate:.3f} >= {cfg.uncertain_rate} "
                    f"over {served_points} served points"
                )
        return None

    # -- ingest ------------------------------------------------------------

    def ingest(
        self, entries: Sequence[dict[str, Any]], oracle: Callable
    ) -> tuple[np.ndarray, np.ndarray]:
        """Label drained queue entries: ``oracle(X_new) -> y_new``.

        ``entries`` are :class:`~repro.serve.LabelingQueue` records (each
        carries a ``"point"``); the oracle stands in for the operator —
        an emulator, a measurement campaign, or a human labeling UI.
        """
        points = [entry["point"] for entry in entries if "point" in entry]
        if not points:
            return np.empty((0, self.X.shape[1])), np.empty((0,), dtype=self.y.dtype)
        X_new = np.asarray(points, dtype=np.float64)
        y_new = np.asarray(oracle(X_new))
        if y_new.shape[0] != X_new.shape[0]:
            raise ValidationError(
                f"oracle returned {y_new.shape[0]} labels for {X_new.shape[0]} points"
            )
        return X_new, y_new

    # -- refit -------------------------------------------------------------

    def retrain(self, X_new, y_new) -> RetrainResult:
        """Merge new labels and refit as one deterministic runtime task.

        The merge is :func:`repro.active.merge_labeled` (order-stable,
        deduplicated), so the task payload — and therefore the cache key
        — is a pure function of (base set, drained labels in order).
        """
        X_aug, y_aug, n_added = merge_labeled(self.X, self.y, X_new, y_new)
        task = Task(
            "loop.retrain",
            {
                "X": X_aug,
                "y": y_aug,
                "X_eval": self.X_eval,
                "y_eval": self.y_eval,
                "factory": self.spec,
            },
            seed_path=(self.config.retrain_seed, _RETRAIN_KEY),
            label=f"loop.retrain[+{n_added}]",
        )
        before = self.runtime.executions_of("loop.retrain")
        [result] = self.runtime.run([task])
        refits = self.runtime.executions_of("loop.retrain") - before
        return RetrainResult(
            model=result["model"],
            score=float(result["score"]),
            X=X_aug,
            y=y_aug,
            n_added=n_added,
            refits=refits,
        )

    def score(self, automl) -> float:
        """Mean accuracy of a fitted model on the controller's holdout."""
        predictions = np.asarray(automl.predict(self.X_eval))
        return float(np.mean(predictions == self.y_eval))
