"""Every retraining-loop threshold in one validated, frozen dataclass.

The loop has three kinds of knobs — *when to retrain* (trigger), *how to
shadow* (mirroring), and *what may ship* (gate) — and burying them as
keyword arguments across four classes makes an operator's policy
unreadable.  :class:`LoopConfig` is the whole policy as data: frozen (a
running loop's policy never mutates mid-flight) and validated eagerly,
so a nonsensical threshold fails at construction, not three ticks later.
"""

from __future__ import annotations

import dataclasses

from ..exceptions import ValidationError

__all__ = ["LoopConfig"]


@dataclasses.dataclass(frozen=True)
class LoopConfig:
    """Trigger, shadow, and gate thresholds for one retraining loop.

    Trigger (either fires a retrain; the queue must be non-empty):

    - ``min_queue_depth`` — labeling-queue backlog that forces a retrain;
    - ``min_served_points`` / ``uncertain_rate`` — alternatively, once at
      least ``min_served_points`` have been served, retrain when the
      fraction flagged uncertain reaches ``uncertain_rate``.

    Shadow:

    - ``shadow_fraction`` — fraction of served batches mirrored to the
      candidate (deterministic error-accumulator selection);
    - ``shadow_max_rows`` — bound on the mirrored-row buffer;
    - ``min_shadow_rows`` — mirrored rows required before the gate runs.

    Gate:

    - ``score_margin`` — candidate holdout score must be at least
      ``incumbent + score_margin`` (negative values tolerate small
      regressions);
    - ``max_ale_drift`` — bound on the candidate committee's Within-ALE
      deviation from the incumbent's stored report, in probability units;
    - ``min_agreement`` — optional floor on shadow label agreement with
      the incumbent (``None`` disables the check);
    - ``rollback_margin`` — post-promotion: observed accuracy on labeled
      ground truth this far below the gate-time candidate score rolls
      the promotion back.

    ``retrain_seed`` roots the retrain task's fixed seed path: with the
    seed and queue contents held constant, a re-triggered retrain is a
    cache hit.
    """

    min_queue_depth: int = 32
    min_served_points: int = 64
    uncertain_rate: float = 0.5
    shadow_fraction: float = 0.25
    shadow_max_rows: int = 4096
    min_shadow_rows: int = 64
    score_margin: float = 0.0
    max_ale_drift: float = 0.5
    min_agreement: float | None = None
    rollback_margin: float = 0.05
    retrain_seed: int = 0

    def __post_init__(self):
        if self.min_queue_depth < 1:
            raise ValidationError(f"min_queue_depth must be >= 1, got {self.min_queue_depth}")
        if self.min_served_points < 1:
            raise ValidationError(f"min_served_points must be >= 1, got {self.min_served_points}")
        if not 0.0 < self.uncertain_rate <= 1.0:
            raise ValidationError(f"uncertain_rate must be in (0, 1], got {self.uncertain_rate}")
        if not 0.0 < self.shadow_fraction <= 1.0:
            raise ValidationError(f"shadow_fraction must be in (0, 1], got {self.shadow_fraction}")
        if self.shadow_max_rows < 1:
            raise ValidationError(f"shadow_max_rows must be >= 1, got {self.shadow_max_rows}")
        if not 1 <= self.min_shadow_rows <= self.shadow_max_rows:
            raise ValidationError(
                f"min_shadow_rows must be in [1, shadow_max_rows={self.shadow_max_rows}], "
                f"got {self.min_shadow_rows}"
            )
        if self.max_ale_drift < 0:
            raise ValidationError(f"max_ale_drift must be >= 0, got {self.max_ale_drift}")
        if self.min_agreement is not None and not 0.0 <= self.min_agreement <= 1.0:
            raise ValidationError(f"min_agreement must be in [0, 1], got {self.min_agreement}")
        if self.rollback_margin < 0:
            raise ValidationError(f"rollback_margin must be >= 0, got {self.rollback_margin}")
        if self.retrain_seed < 0:
            raise ValidationError(f"retrain_seed must be >= 0, got {self.retrain_seed}")
