"""Online retraining loop: drift-triggered refits behind a promotion gate.

The paper's Section-4 proposal closes the loop the serving layer opened:
uncertain points flow to an operator, labels flow back, and the model
retrains — *without* a human eyeballing every candidate before it ships.
This package is that controller, in five pieces:

- :mod:`~repro.loop.config` — :class:`LoopConfig`, every trigger and
  gate threshold in one frozen dataclass;
- :mod:`~repro.loop.controller` — :class:`RetrainController`: decides
  *when* to retrain (labeling-queue depth, uncertain-region hit rate
  read from the serving metrics), folds drained labels into the training
  set (:func:`repro.active.merge_labeled`), and runs the refit as a
  deterministic :class:`~repro.runtime.TaskRuntime` task under a fixed
  seed path — so a re-triggered retrain over identical inputs is a pure
  cache hit;
- :mod:`~repro.loop.shadow` — :class:`ShadowEvaluator`: the candidate
  shadows live traffic through the engine's
  :class:`~repro.serve.ShadowMirror` (served bytes untouched), and its
  Within-ALE curves are compared against the incumbent's stored report
  (:func:`repro.core.ale_drift`);
- :mod:`~repro.loop.gate` — :class:`PromotionGate`: candidate score vs
  incumbent *and* bounded ALE drift must both pass before the registry
  promotes; a failing candidate is still registered (unpromoted) for the
  audit trail;
- :mod:`~repro.loop.service` — :class:`LoopService`: the idle/shadowing
  state machine gluing the above to a live
  :class:`~repro.serve.ServeService`, with post-promotion regression
  rollback.

``python -m repro loop`` runs the self-contained demo in
:mod:`~repro.loop.demo`.
"""

from .config import LoopConfig
from .controller import RetrainController, RetrainResult
from .demo import demo_oracle, run_demo
from .gate import GateDecision, PromotionGate
from .service import LoopService
from .shadow import ShadowEvaluator, ShadowReport

__all__ = [
    "LoopConfig",
    "RetrainController",
    "RetrainResult",
    "ShadowEvaluator",
    "ShadowReport",
    "PromotionGate",
    "GateDecision",
    "LoopService",
    "run_demo",
    "demo_oracle",
]
