"""A self-contained, deterministic run of the whole retraining loop.

``python -m repro loop`` executes :func:`run_demo`: a tiny synthetic
two-feature problem with a known boundary, an incumbent deliberately
trained *away* from that boundary (so near-boundary traffic lands in the
uncertain region and fills the labeling queue), and a loop configured to
trigger, retrain, shadow, and promote within a handful of ticks — all in
seconds, with no emulator and no network.

:func:`demo_oracle` is the ground truth (module-level so the retrain
payload pickles across process executors).  Everything is seeded through
:func:`repro.rng.check_random_state`; two runs of the demo produce the
same registry, the same decisions, and the same counters.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from ..automl import AutoMLClassifier, AutoMLSpec
from ..exceptions import BackpressureError
from ..featurespace import FeatureDomain
from ..rng import check_random_state
from ..runtime import ArtifactCache, SerialExecutor, TaskRuntime
from ..serve import ModelRegistry, ServeConfig, ServeService
from .config import LoopConfig
from .controller import RetrainController
from .service import LoopService

__all__ = ["run_demo", "demo_oracle"]

#: The demo's feature space: two unit-interval features.
_DOMAINS = (FeatureDomain("f0", 0.0, 1.0), FeatureDomain("f1", 0.0, 1.0))


def demo_oracle(X) -> np.ndarray:
    """Ground truth for the demo: class 1 above the line ``f0 + f1 = 1``."""
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    return (X[:, 0] + X[:, 1] > 1.0).astype(int)


def _biased_training_set(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Training data kept away from the boundary — the incumbent's blind spot."""
    rng = check_random_state(seed)
    X = rng.uniform(0.0, 1.0, size=(4 * n, 2))
    margin = np.abs(X[:, 0] + X[:, 1] - 1.0)
    X = X[margin > 0.35][:n]
    return X, demo_oracle(X)


def run_demo(
    directory: Path | str,
    *,
    seed: int = 0,
    max_ticks: int = 24,
    traffic_per_tick: int = 24,
) -> dict[str, Any]:
    """Run the loop end to end under ``directory``; returns a summary.

    The summary carries the tick log, the final loop status, and the
    registry description — everything the CLI prints.
    """
    directory = Path(directory)
    spec = AutoMLSpec(n_iterations=6, ensemble_size=4, min_distinct_members=2)
    rng = check_random_state(seed)

    # Incumbent: fit on the biased set, register, and start serving.
    X_base, y_base = _biased_training_set(120, seed)
    incumbent = AutoMLClassifier(
        n_iterations=spec.n_iterations,
        ensemble_size=spec.ensemble_size,
        min_distinct_members=spec.min_distinct_members,
        random_state=seed + 1,
    ).fit(X_base, y_base)
    registry = ModelRegistry(directory / "registry")
    registry.register("demo", incumbent, X_base, _DOMAINS, promote=True)
    serve = ServeService.from_registry(
        "demo",
        directory=directory / "registry",
        config=ServeConfig(max_batch=16, max_delay=0.0, disagreement_threshold=0.15),
        persist_labels=True,
    )

    # The loop: eager triggers, mirror everything, tolerate score noise
    # (the demo's point is the mechanics, not a leaderboard).
    config = LoopConfig(
        min_queue_depth=8,
        min_served_points=16,
        uncertain_rate=0.9,
        shadow_fraction=1.0,
        min_shadow_rows=16,
        score_margin=-0.1,
        max_ale_drift=2.0,
        retrain_seed=seed,
    )
    X_eval = rng.uniform(0.0, 1.0, size=(200, 2))
    runtime = TaskRuntime(SerialExecutor(), cache=ArtifactCache(directory / "loop-cache"))
    controller = RetrainController(
        runtime, spec, X_base, y_base, X_eval, demo_oracle(X_eval), config=config
    )
    loop = LoopService(serve, controller, oracle=demo_oracle, config=config)

    ticks: list[dict[str, Any]] = []
    try:
        for _ in range(max_ticks):
            # Traffic hugs the boundary — exactly where the incumbent is blind.
            rows = rng.uniform(0.0, 1.0, size=(traffic_per_tick, 2))
            rows[:, 1] = np.clip(1.0 - rows[:, 0] + rng.normal(0.0, 0.12, traffic_per_tick), 0.0, 1.0)
            try:
                serve.predict(rows)
            except BackpressureError:
                pass  # shed traffic is fine; the loop keeps ticking
            event = loop.tick()
            ticks.append(event)
            if event["action"] in ("promoted", "rejected"):
                break
        status = loop.status()
    finally:
        serve.close()
    return {
        "ticks": ticks,
        "status": status,
        "registry": registry.describe(),
        "runtime": dict(runtime.stats),
    }
