"""Shadow evaluation: the candidate sees live traffic, users never see it.

A candidate that aced its holdout can still disagree with production
reality.  The evaluator wraps the serving engine's
:class:`~repro.serve.ShadowMirror`: a deterministic fraction of served
batches is replayed through the candidate *after* the real replies were
delivered, accumulating label agreement with the incumbent.  When enough
rows have been mirrored, :meth:`ShadowEvaluator.evaluate` adds the
interpretability check — the candidate committee's Within-ALE curves are
recomputed on the incumbent's stored grids (:func:`repro.core.ale_drift`)
and the per-feature deviation is bounded by the gate.

The drift comparison is anchored to the candidate's augmented *training*
set rather than the mirrored buffer: the training set is a pure function
of the loop's inputs (so the gate's verdict is replayable), while the
mirrored rows depend on traffic timing and serve as agreement evidence
only.
"""

from __future__ import annotations

import dataclasses

from ..core import AleDriftReport, ale_drift
from ..core.feedback import FeedbackReport, within_ale_committee
from ..serve import InferenceEngine, ShadowMirror
from .config import LoopConfig

__all__ = ["ShadowEvaluator", "ShadowReport"]


@dataclasses.dataclass(frozen=True)
class ShadowReport:
    """What shadowing learned about one candidate."""

    mirrored_rows: int
    agreement: float | None  # fraction of mirrored rows where labels matched
    errors: int  # candidate prediction failures during mirroring
    drift: AleDriftReport

    def to_json(self) -> dict:
        return {
            "mirrored_rows": self.mirrored_rows,
            "agreement": self.agreement,
            "errors": self.errors,
            "max_ale_drift": self.drift.max_drift,
            "ale_drift": self.drift.by_feature(),
        }


class ShadowEvaluator:
    """One candidate's shadow deployment against a live engine."""

    def __init__(self, candidate, config: LoopConfig | None = None):
        self.candidate = candidate
        self.config = config if config is not None else LoopConfig()
        self.mirror = ShadowMirror(
            candidate,
            fraction=self.config.shadow_fraction,
            max_rows=self.config.shadow_max_rows,
        )

    def attach(self, engine: InferenceEngine) -> None:
        """Start mirroring the engine's traffic to the candidate."""
        engine.attach_shadow(self.mirror)

    def detach(self, engine: InferenceEngine) -> None:
        """Stop mirroring (the accumulated stats stay on the mirror)."""
        engine.detach_shadow()

    def ready(self) -> bool:
        """Have enough rows been mirrored for the gate to run?"""
        return self.mirror.stats()["mirrored_rows"] >= self.config.min_shadow_rows

    def evaluate(self, incumbent_report: FeedbackReport, X_anchor) -> ShadowReport:
        """Summarize shadowing plus ALE drift against the incumbent report.

        ``X_anchor`` is the dataset the drift curves integrate over —
        the candidate's augmented training set (see module docstring).
        """
        drift = ale_drift(within_ale_committee(self.candidate), X_anchor, incumbent_report)
        stats = self.mirror.stats()
        return ShadowReport(
            mirrored_rows=stats["mirrored_rows"],
            agreement=stats["agreement"],
            errors=stats["errors"],
            drift=drift,
        )
