"""The loop's state machine: idle → shadowing → (promote | reject) → idle.

:class:`LoopService` glues one live :class:`~repro.serve.ServeService`
to a :class:`~repro.loop.controller.RetrainController`, a
:class:`~repro.loop.shadow.ShadowEvaluator`, and a
:class:`~repro.loop.gate.PromotionGate`.  Each :meth:`tick` advances the
machine one step; driving ticks is the caller's job (a request loop, a
scheduler, the demo), so the loop itself owns no threads and no clock —
a traffic trace plus a tick schedule replays to the same decisions.

States:

- ``idle`` — watch the serving counters; on trigger, drain the labeling
  queue, label the points through the oracle, retrain (cache-addressed),
  and attach the candidate as a shadow;
- ``shadowing`` — wait for enough mirrored rows, then detach, run the
  gate, and either promote (hot-swapping the running service to the new
  version) or reject (candidate stays registered, unpromoted).

After a promotion, :meth:`observe_labeled` is the rollback path: feed it
operator-labeled ground truth, and a regression beyond
``rollback_margin`` flips the registry back and re-swaps the incumbent.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..exceptions import ValidationError
from ..serve import ServeService
from .config import LoopConfig
from .controller import RetrainController
from .gate import GateDecision, PromotionGate
from .shadow import ShadowEvaluator

__all__ = ["LoopService"]

_COUNTERS = (
    "loop_ticks",
    "loop_triggers",
    "loop_retrains",
    "loop_promotions",
    "loop_rejections",
    "loop_rollbacks",
)


class LoopService:
    """Online retraining controller over one live serving service.

    Parameters
    ----------
    serve:
        A :class:`~repro.serve.ServeService` built via ``from_registry``
        (the loop needs the registry to promote into).
    controller:
        The retrain policy and refit runner.
    oracle:
        ``X -> y``: labels drained queue points (emulator, measurement,
        or human stand-in).
    config:
        Defaults to the controller's config.
    """

    def __init__(
        self,
        serve: ServeService,
        controller: RetrainController,
        *,
        oracle: Callable,
        config: LoopConfig | None = None,
    ):
        if serve.registry is None:
            raise ValidationError(
                "LoopService needs a registry-backed service; build it with ServeService.from_registry()"
            )
        self.serve = serve
        self.registry = serve.registry
        self.controller = controller
        self.oracle = oracle
        self.config = config if config is not None else controller.config
        self.name = serve.bundle.name
        self.gate = PromotionGate(self.registry, self.config, metrics=serve.metrics_registry)
        self.state = "idle"
        self.last_decision: GateDecision | None = None
        self._evaluator: ShadowEvaluator | None = None
        self._pending = None  # RetrainResult being shadow-evaluated
        self._promoted_score: float | None = None
        for name in _COUNTERS:
            serve.metrics_registry.counter(name)

    # -- the state machine -------------------------------------------------

    def tick(self) -> dict[str, Any]:
        """Advance one step; returns what happened (JSON-shaped)."""
        # Settle in-flight batches first: a caller that just got its reply
        # may still race the batcher's post-reply mirroring, and the tick's
        # decisions (trigger thresholds, shadow readiness) must be a pure
        # function of *completed* traffic to stay deterministic.
        self.serve.quiesce(timeout=5.0)
        self.serve.metrics_registry.counter("loop_ticks").inc()
        if self.state == "idle":
            return self._tick_idle()
        return self._tick_shadowing()

    def _tick_idle(self) -> dict[str, Any]:
        metrics = self.serve.metrics_registry
        queue = self.serve.engine.monitor.queue
        reason = self.controller.should_trigger(
            queue_depth=len(queue),
            served_points=metrics.counter("points").value,
            uncertain_points=metrics.counter("uncertain_points").value,
        )
        if reason is None:
            return {"state": self.state, "action": "none"}
        metrics.counter("loop_triggers").inc()
        entries = queue.drain()
        X_new, y_new = self.controller.ingest(entries, self.oracle)
        result = self.controller.retrain(X_new, y_new)
        metrics.counter("loop_retrains").inc()
        self._pending = result
        self._evaluator = ShadowEvaluator(result.model, self.config)
        self._evaluator.attach(self.serve.engine)
        self.state = "shadowing"
        return {
            "state": self.state,
            "action": "retrained",
            "reason": reason,
            "drained": len(entries),
            "n_added": result.n_added,
            "candidate_score": result.score,
            "refits": result.refits,
        }

    def _tick_shadowing(self) -> dict[str, Any]:
        evaluator = self._evaluator
        pending = self._pending
        assert evaluator is not None and pending is not None
        if not evaluator.ready():
            return {
                "state": self.state,
                "action": "waiting",
                "shadow": evaluator.mirror.stats(),
            }
        evaluator.detach(self.serve.engine)
        incumbent = self.serve.bundle
        incumbent_score = self.controller.score(incumbent.automl)
        shadow_report = evaluator.evaluate(incumbent.report, pending.X)
        decision = self.gate.apply(
            self.name,
            pending.model,
            pending.X,
            incumbent.domains,
            candidate_score=pending.score,
            incumbent_score=incumbent_score,
            shadow=shadow_report,
        )
        self.last_decision = decision
        self.state = "idle"
        self._evaluator = None
        self._pending = None
        if decision.promoted:
            self._promoted_score = decision.candidate_score
            self.serve.reload()
        else:
            self.serve.metrics_registry.counter("loop_rejections").inc()
        return {
            "state": self.state,
            "action": "promoted" if decision.promoted else "rejected",
            "decision": decision.to_json(),
            "serving_version": self.serve.version,
        }

    # -- post-promotion rollback ------------------------------------------

    def observe_labeled(self, X, y) -> dict[str, Any]:
        """Check promoted-model accuracy on fresh ground truth; roll back on regression.

        Accuracy more than ``rollback_margin`` below the gate-time
        candidate score flips the registry back to the previous version
        and re-swaps the running service — the emergency lever for a
        candidate that gamed its holdout.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        y = np.asarray(y)
        predictions = np.asarray(self.serve.bundle.automl.predict(X))
        accuracy = float(np.mean(predictions == y))
        rolled_back = False
        if (
            self._promoted_score is not None
            and accuracy < self._promoted_score - self.config.rollback_margin
        ):
            self.registry.rollback(self.name)
            self.serve.reload()
            self.serve.metrics_registry.counter("loop_rollbacks").inc()
            self._promoted_score = None
            rolled_back = True
        return {
            "accuracy": accuracy,
            "rolled_back": rolled_back,
            "serving_version": self.serve.version,
        }

    # -- introspection -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """One JSON-shaped snapshot of the whole loop."""
        metrics = self.serve.metrics_registry
        return {
            "state": self.state,
            "model": self.name,
            "serving_version": self.serve.version,
            "queue": self.serve.engine.monitor.queue.stats(),
            "shadow": self._evaluator.mirror.stats() if self._evaluator is not None else None,
            "last_decision": self.last_decision.to_json() if self.last_decision else None,
            "counters": {name: metrics.counter(name).value for name in _COUNTERS},
        }
