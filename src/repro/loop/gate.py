"""The promotion gate: what a candidate must prove before it serves.

Two checks, both mandatory:

- **score** — the candidate's holdout accuracy must reach the
  incumbent's plus ``score_margin`` (identical holdout, identical
  metric: the comparison the retrain task already paid for);
- **ALE drift** — the candidate committee's Within-ALE curves may not
  deviate from the incumbent's stored report by more than
  ``max_ale_drift`` anywhere.  This is the paper's interpretability
  artifact doing *deployment* work: a refit that silently flipped what a
  feature means is rejected even when its aggregate score looks fine.

An optional third check bounds shadow label agreement.  Every candidate
is registered either way — a rejected one lands in the registry
*unpromoted*, with the gate's verdict in its manifest metadata, so the
audit trail of what almost shipped is never lost.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..serve import MetricsRegistry, ModelRegistry
from .config import LoopConfig
from .shadow import ShadowReport

__all__ = ["PromotionGate", "GateDecision"]


@dataclasses.dataclass(frozen=True)
class GateDecision:
    """One candidate's verdict, as recorded in the registry metadata."""

    promoted: bool
    version: int
    reasons: tuple[str, ...]  # empty when promoted
    candidate_score: float
    incumbent_score: float
    max_drift: float
    agreement: float | None

    def to_json(self) -> dict[str, Any]:
        return {
            "promoted": self.promoted,
            "version": self.version,
            "reasons": list(self.reasons),
            "candidate_score": self.candidate_score,
            "incumbent_score": self.incumbent_score,
            "max_drift": self.max_drift,
            "agreement": self.agreement,
        }


class PromotionGate:
    """Register a candidate and promote it only when every check passes."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: LoopConfig | None = None,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        self.registry = registry
        self.config = config if config is not None else LoopConfig()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        for name in ("loop_promotions", "loop_gate_fail_score", "loop_gate_fail_drift", "loop_gate_fail_agreement"):
            self.metrics.counter(name)

    def decide(
        self, *, candidate_score: float, incumbent_score: float, shadow: ShadowReport
    ) -> tuple[str, ...]:
        """Run the checks; returns failure reasons (empty = promote)."""
        cfg = self.config
        reasons: list[str] = []
        required = incumbent_score + cfg.score_margin
        if candidate_score < required:
            reasons.append(
                f"score {candidate_score:.4f} < incumbent {incumbent_score:.4f} "
                f"+ margin {cfg.score_margin:+.4f}"
            )
            self.metrics.counter("loop_gate_fail_score").inc()
        if shadow.drift.max_drift > cfg.max_ale_drift:
            reasons.append(
                f"ALE drift {shadow.drift.max_drift:.4f} > bound {cfg.max_ale_drift:.4f}"
            )
            self.metrics.counter("loop_gate_fail_drift").inc()
        if (
            cfg.min_agreement is not None
            and shadow.agreement is not None
            and shadow.agreement < cfg.min_agreement
        ):
            reasons.append(
                f"shadow agreement {shadow.agreement:.4f} < floor {cfg.min_agreement:.4f}"
            )
            self.metrics.counter("loop_gate_fail_agreement").inc()
        return tuple(reasons)

    def apply(
        self,
        name: str,
        candidate,
        X_anchor,
        domains,
        *,
        candidate_score: float,
        incumbent_score: float,
        shadow: ShadowReport,
    ) -> GateDecision:
        """Decide, register (always), and promote (only on pass).

        ``X_anchor`` and ``domains`` feed the registry's feedback
        analysis — a promoted candidate's *own* report becomes the next
        incumbent artifact, so the loop's interpretability baseline
        advances with the model.
        """
        reasons = self.decide(
            candidate_score=candidate_score, incumbent_score=incumbent_score, shadow=shadow
        )
        promoted = not reasons
        metadata = {
            "loop": {
                "promoted": promoted,
                "reasons": list(reasons),
                "candidate_score": candidate_score,
                "incumbent_score": incumbent_score,
                "shadow": shadow.to_json(),
            }
        }
        version = self.registry.register(
            name, candidate, X_anchor, domains, metadata=metadata, promote=promoted
        )
        if promoted:
            self.metrics.counter("loop_promotions").inc()
        return GateDecision(
            promoted=promoted,
            version=version,
            reasons=reasons,
            candidate_score=candidate_score,
            incumbent_score=incumbent_score,
            max_drift=shadow.drift.max_drift,
            agreement=shadow.agreement,
        )
