"""Bottleneck link with a drop-tail FIFO queue.

The link serializes packets at a fixed rate, applies constant one-way
propagation delay, drops on queue overflow (drop-tail) and models random
wire loss with a Bernoulli draw per packet.  Per-packet enqueue/dequeue
timestamps feed the latency statistics the Scream-vs-rest labels are built
from.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

import numpy as np

from ..exceptions import EmulationError
from ..rng import check_random_state
from .events import Simulator
from .packet import Packet

__all__ = ["BottleneckLink", "LinkStats"]


class LinkStats:
    """Counters the link maintains for diagnostics and tests."""

    def __init__(self):
        self.enqueued = 0
        self.delivered = 0
        self.dropped_overflow = 0
        self.dropped_random = 0
        self.busy_time = 0.0

    @property
    def dropped(self) -> int:
        return self.dropped_overflow + self.dropped_random

    def utilization(self, duration: float) -> float:
        return self.busy_time / duration if duration > 0 else 0.0


class BottleneckLink:
    """A FIFO bottleneck: serialization + propagation + drop-tail + loss."""

    def __init__(
        self,
        sim: Simulator,
        *,
        rate_pps: float,
        one_way_delay: float,
        queue_capacity: int,
        loss_rate: float = 0.0,
        discipline=None,
        rng: np.random.Generator | None = None,
    ):
        if rate_pps <= 0:
            raise EmulationError(f"link rate must be positive, got {rate_pps}")
        if one_way_delay < 0:
            raise EmulationError(f"propagation delay must be >= 0, got {one_way_delay}")
        if queue_capacity < 1:
            raise EmulationError(f"queue capacity must be >= 1, got {queue_capacity}")
        if not 0.0 <= loss_rate < 1.0:
            raise EmulationError(f"loss rate must be in [0, 1), got {loss_rate}")
        self.sim = sim
        self.rate_pps = rate_pps
        self.one_way_delay = one_way_delay
        self.queue_capacity = queue_capacity
        self.loss_rate = loss_rate
        self.rng = check_random_state(rng)
        # Imported here to avoid a module cycle (aqm uses Packet from this
        # package); DropTail is the classic default.
        from .aqm import DropTail

        self.discipline = discipline if discipline is not None else DropTail()
        self.discipline.reset()
        self._queue: deque[tuple[Packet, Callable[[Packet], None]]] = deque()
        self._busy = False
        self.stats = LinkStats()
        self.drop_listeners: list[Callable[[Packet], None]] = []

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def queueing_delay_estimate(self) -> float:
        """Delay a packet arriving now would see before serialization."""
        return len(self._queue) / self.rate_pps

    def send(self, packet: Packet, deliver: Callable[[Packet], None]) -> bool:
        """Offer a packet to the link; returns ``False`` if dropped."""
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.dropped_random += 1
            self._notify_drop(packet)
            return False
        admitted = self.discipline.admit(
            queue_length=len(self._queue), capacity=self.queue_capacity, now=self.sim.now
        )
        if not admitted or len(self._queue) >= self.queue_capacity:
            self.stats.dropped_overflow += 1
            self._notify_drop(packet)
            return False
        packet.enqueue_time = self.sim.now
        self._queue.append((packet, deliver))
        self.stats.enqueued += 1
        if not self._busy:
            self._busy = True
            self._transmit_next()
        return True

    def _notify_drop(self, packet: Packet) -> None:
        for listener in self.drop_listeners:
            listener(packet)

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        packet, deliver = self._queue.popleft()
        if not self.discipline.deliver(packet, now=self.sim.now, rate_pps=self.rate_pps):
            # Head drop (CoDel-style): count it and move straight on.
            self.stats.dropped_overflow += 1
            self._notify_drop(packet)
            self._transmit_next()
            return
        serialization = 1.0 / self.rate_pps
        self.stats.busy_time += serialization
        packet.dequeue_time = self.sim.now

        def delivered(packet=packet, deliver=deliver):
            self.stats.delivered += 1
            deliver(packet)

        self.sim.schedule(serialization + self.one_way_delay, delivered)
        self.sim.schedule(serialization, self._transmit_next)
