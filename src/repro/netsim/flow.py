"""Sender/receiver endpoints driving a congestion controller.

A :class:`Sender` is a greedy source: it always has data to send and lets
its congestion-control algorithm decide when.  Window-based controllers are
ACK-clocked (send while inflight < cwnd); rate-based controllers are driven
by a pacing timer re-armed at the current rate.  Loss detection uses the
two standard TCP mechanisms in simplified form:

- *reordering gap*: an ACK for sequence ``s`` marks any outstanding
  sequence older than ``s - reorder_threshold`` as lost (fast-retransmit
  analogue);
- *retransmission timeout*: silence for ``rto_multiplier × srtt`` clears
  the inflight window and signals loss.

The receiver acknowledges every packet; the reverse path is modeled as pure
propagation delay (no reverse-direction queueing), the common single-
bottleneck simplification.
"""

from __future__ import annotations

from collections import deque

from .cc.base import CongestionControl
from .events import Simulator
from .link import BottleneckLink
from .packet import Packet

__all__ = ["Sender", "FlowStats"]


class FlowStats:
    """Per-flow outcome record."""

    def __init__(self):
        self.sent = 0
        self.delivered = 0
        self.lost = 0
        self.delays: list[float] = []  # one-way data-path delays
        self.rtts: list[float] = []

    @property
    def loss_fraction(self) -> float:
        return self.lost / self.sent if self.sent else 0.0


class Sender:
    """A greedy flow endpoint bound to one congestion controller."""

    def __init__(
        self,
        sim: Simulator,
        link: BottleneckLink,
        cc: CongestionControl,
        *,
        flow_id: int,
        reverse_delay: float,
        start_time: float = 0.0,
        reorder_threshold: int = 3,
        rto_multiplier: float = 4.0,
        min_rto: float = 0.2,
    ):
        self.sim = sim
        self.link = link
        self.cc = cc
        self.flow_id = flow_id
        self.reverse_delay = reverse_delay
        self.reorder_threshold = reorder_threshold
        self.rto_multiplier = rto_multiplier
        self.min_rto = min_rto
        self.stats = FlowStats()

        self._next_sequence = 0
        self._inflight: dict[int, float] = {}  # sequence -> send time
        self._highest_acked = -1
        self._srtt: float | None = None
        self._last_ack_time = start_time
        self._delivered_times: deque[float] = deque(maxlen=4096)
        self._running = False

        cc.reset(now=start_time)
        sim.schedule_at(start_time, self.start)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        self._running = True
        if self.cc.kind == "rate":
            self._pace()
        else:
            self._fill_window()
        self._arm_rto()

    def stop(self) -> None:
        self._running = False

    # -- sending -----------------------------------------------------------
    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def _send_one(self) -> None:
        packet = Packet(flow_id=self.flow_id, sequence=self._next_sequence, send_time=self.sim.now)
        self._next_sequence += 1
        self._inflight[packet.sequence] = packet.send_time
        self.stats.sent += 1
        accepted = self.link.send(packet, self._deliver_to_receiver)
        if not accepted:
            # The drop is silent on the wire; the gap/RTO machinery will
            # discover it.  Nothing else to do here.
            pass

    def _fill_window(self) -> None:
        if not self._running:
            return
        while self.inflight < int(self.cc.congestion_window()):
            self._send_one()

    def _pace(self) -> None:
        if not self._running:
            return
        cap = getattr(self.cc, "inflight_cap", None)
        if cap is None or self.inflight < cap():
            self._send_one()
        interval = 1.0 / self.cc.pacing_rate_pps()
        self.sim.schedule(interval, self._pace)

    # -- receive path ---------------------------------------------------------
    def _deliver_to_receiver(self, packet: Packet) -> None:
        """Receiver side: record delay, return an ACK after the reverse path."""
        delay = self.sim.now - packet.send_time
        self.stats.delivered += 1
        self.stats.delays.append(delay)
        ack_arrival = self.reverse_delay

        def ack(packet=packet):
            self._on_ack(packet)

        self.sim.schedule(ack_arrival, ack)

    def _on_ack(self, packet: Packet) -> None:
        if not self._running:
            return
        send_time = self._inflight.pop(packet.sequence, None)
        if send_time is None:
            return  # already declared lost; stale ACK
        rtt = self.sim.now - packet.send_time
        self.stats.rtts.append(rtt)
        self._srtt = rtt if self._srtt is None else 0.875 * self._srtt + 0.125 * rtt
        self._last_ack_time = self.sim.now
        self._highest_acked = max(self._highest_acked, packet.sequence)
        self._delivered_times.append(self.sim.now)
        self.cc.on_ack(now=self.sim.now, rtt=rtt, delivered_rate=self._delivered_rate())
        self._detect_gap_losses()
        if self.cc.kind == "window":
            self._fill_window()

    def _delivered_rate(self) -> float | None:
        """Recent goodput estimate over roughly the last RTT.

        Time-windowed rather than count-windowed: a fixed ACK count would
        span seconds at low rates and make the estimate uselessly stale for
        bandwidth-probing controllers like BBR.
        """
        window = max(self._srtt if self._srtt is not None else 0.1, 0.05)
        cutoff = self.sim.now - window
        while len(self._delivered_times) > 1 and self._delivered_times[0] < cutoff:
            self._delivered_times.popleft()
        if len(self._delivered_times) < 2:
            return None
        span = self._delivered_times[-1] - self._delivered_times[0]
        if span <= 0:
            return None
        return (len(self._delivered_times) - 1) / span

    # -- loss detection ------------------------------------------------------
    def _detect_gap_losses(self) -> None:
        threshold = self._highest_acked - self.reorder_threshold
        lost = [seq for seq in self._inflight if seq < threshold]
        if not lost:
            return
        for seq in lost:
            del self._inflight[seq]
            self.stats.lost += 1
        rtt = self._srtt if self._srtt is not None else self.min_rto
        if self.cc.can_react_to_loss(self.sim.now, rtt):
            self.cc.on_loss(now=self.sim.now)

    def _rto(self) -> float:
        base = self._srtt if self._srtt is not None else self.min_rto
        return max(self.min_rto, self.rto_multiplier * base)

    def _arm_rto(self) -> None:
        if not self._running:
            return

        def check():
            if not self._running:
                return
            if self._inflight and self.sim.now - self._last_ack_time >= self._rto():
                # Timeout: everything outstanding is presumed lost.
                self.stats.lost += len(self._inflight)
                self._inflight.clear()
                self.cc.on_loss(now=self.sim.now)
                self._last_ack_time = self.sim.now
                if self.cc.kind == "window":
                    self._fill_window()
            self._arm_rto()

        self.sim.schedule(self._rto() / 2.0, check)
