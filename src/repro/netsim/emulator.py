"""Packet-level emulation harness (the Pantheon-equivalent testbed).

:func:`run_packet_scenario` builds a dumbbell topology — ``n_flows``
senders sharing one bottleneck link — runs it for a fixed duration and
reduces the outcome to :class:`FlowMetrics`: the latency/throughput/loss
summary the Scream-vs-rest labeling uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import EmulationError
from ..rng import RandomState, check_random_state, spawn
from .cc import make_protocol
from .events import Simulator
from .flow import Sender
from .link import BottleneckLink
from .packet import NetworkScenario

__all__ = ["FlowMetrics", "run_packet_scenario"]


@dataclass
class FlowMetrics:
    """Aggregate outcome of one (scenario, protocol) emulation."""

    protocol: str
    scenario: NetworkScenario
    duration: float
    avg_delay_ms: float
    p95_delay_ms: float
    throughput_mbps: float
    loss_fraction: float
    utilization: float

    def latency_score(self, *, min_share: float = 0.08) -> float:
        """Lower-is-better score used for the Scream-vs-rest label.

        A latency-sensitive application needs its media to actually flow: a
        protocol delivering less than ``min_share`` of the per-flow fair
        share is disqualified (``inf``) — otherwise a starving loss-based
        protocol would trivially "win" on latency with an empty queue.
        Among qualified protocols, lower p95 one-way delay wins.
        """
        fair_share = self.scenario.bandwidth_mbps / self.scenario.n_flows
        per_flow_throughput = self.throughput_mbps / self.scenario.n_flows
        if per_flow_throughput < min_share * fair_share:
            return float("inf")
        return self.p95_delay_ms


def _weighted_percentile(values: np.ndarray, weights: np.ndarray, q: float) -> float:
    order = np.argsort(values)
    values, weights = values[order], weights[order]
    cumulative = np.cumsum(weights)
    cutoff = q * cumulative[-1]
    return float(values[np.searchsorted(cumulative, cutoff)])


def run_packet_scenario(
    scenario: NetworkScenario,
    protocol: str,
    *,
    duration: float = 8.0,
    warmup: float = 1.0,
    discipline=None,
    random_state: RandomState = None,
    max_events: int = 2_000_000,
) -> FlowMetrics:
    """Emulate ``n_flows`` senders of ``protocol`` through the bottleneck.

    ``warmup`` seconds of initial transients (slow start, rate ramp) are
    excluded from the latency statistics.  ``discipline`` selects the
    bottleneck queue's AQM (a :class:`repro.netsim.aqm.QueueDiscipline`;
    default drop-tail).
    """
    if duration <= warmup:
        raise EmulationError(f"duration {duration} must exceed warmup {warmup}")
    rng = check_random_state(random_state)
    link_rng, *flow_rngs = spawn(rng, scenario.n_flows + 1)

    sim = Simulator()
    link = BottleneckLink(
        sim,
        rate_pps=scenario.bandwidth_pps,
        one_way_delay=scenario.base_rtt_s / 2.0,
        queue_capacity=scenario.queue_capacity_packets,
        loss_rate=scenario.loss_rate,
        discipline=discipline,
        rng=link_rng,
    )
    senders = []
    for flow_id, flow_rng in enumerate(flow_rngs):
        # Stagger flow starts within the first 10% of an RTT-scaled window
        # so synchronized slow starts don't produce artificial phase effects.
        start = float(flow_rng.uniform(0.0, min(0.2, scenario.base_rtt_s * 2)))
        senders.append(
            Sender(
                sim,
                link,
                make_protocol(protocol),
                flow_id=flow_id,
                reverse_delay=scenario.base_rtt_s / 2.0,
                start_time=start,
            )
        )
    sim.run(duration, max_events=max_events)
    for sender in senders:
        sender.stop()

    delays, sent, delivered, lost = [], 0, 0, 0
    for sender in senders:
        # Keep only post-warmup samples for delay statistics.
        n_all = len(sender.stats.delays)
        keep_from = int(n_all * min(1.0, warmup / duration))
        delays.extend(sender.stats.delays[keep_from:])
        sent += sender.stats.sent
        delivered += sender.stats.delivered
        lost += sender.stats.lost
    if not delays:
        raise EmulationError(
            f"no packets delivered for protocol {protocol!r} under {scenario}; scenario is degenerate"
        )
    delays_ms = np.asarray(delays) * 1000.0
    measured = duration - warmup
    throughput_mbps = delivered * 8 * 1500 / duration / 1e6
    return FlowMetrics(
        protocol=protocol,
        scenario=scenario,
        duration=duration,
        avg_delay_ms=float(delays_ms.mean()),
        p95_delay_ms=_weighted_percentile(delays_ms, np.ones_like(delays_ms), 0.95),
        throughput_mbps=float(throughput_mbps),
        loss_fraction=lost / sent if sent else 0.0,
        utilization=link.stats.utilization(duration),
    )
