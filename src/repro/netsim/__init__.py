"""Network emulation substrate (the Pantheon-equivalent testbed).

Two engines over the same scenario/protocol abstractions:

- :func:`run_packet_scenario` — packet-level discrete-event emulation
  (reference fidelity);
- :func:`run_fluid_scenario` — fluid-model approximation (orders of
  magnitude faster; used for dataset generation).

Protocols: SCReAM, Cubic, Reno, Vegas, and a BBR-like controller, all
implemented from scratch in :mod:`repro.netsim.cc`.
"""

from .aqm import RED, CoDel, DropTail, QueueDiscipline, make_discipline
from .cc import BBR, PROTOCOLS, CongestionControl, Cubic, Reno, Scream, Vegas, make_protocol
from .emulator import FlowMetrics, run_packet_scenario
from .events import Simulator
from .fluid import FluidTrace, run_fluid_scenario
from .link import BottleneckLink, LinkStats
from .flow import FlowStats, Sender
from .packet import DEFAULT_PACKET_BYTES, NetworkScenario, Packet
from .path import NetworkPath
from .scenarios import DEFAULT_SPACE, ScenarioSpace

__all__ = [
    "Simulator",
    "Packet",
    "NetworkScenario",
    "DEFAULT_PACKET_BYTES",
    "BottleneckLink",
    "LinkStats",
    "NetworkPath",
    "Sender",
    "FlowStats",
    "FlowMetrics",
    "run_packet_scenario",
    "run_fluid_scenario",
    "FluidTrace",
    "ScenarioSpace",
    "DEFAULT_SPACE",
    "CongestionControl",
    "Reno",
    "Cubic",
    "Vegas",
    "Scream",
    "BBR",
    "PROTOCOLS",
    "make_protocol",
    "QueueDiscipline",
    "DropTail",
    "RED",
    "CoDel",
    "make_discipline",
]
