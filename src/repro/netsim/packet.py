"""Packet and scenario value objects shared by both simulation engines."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import EmulationError

__all__ = ["Packet", "NetworkScenario", "DEFAULT_PACKET_BYTES"]

DEFAULT_PACKET_BYTES = 1500


@dataclass
class Packet:
    """One data segment in flight.

    ``enqueue_time``/``dequeue_time`` are stamped by the link so per-packet
    queueing delay can be reconstructed exactly.
    """

    flow_id: int
    sequence: int
    size_bytes: int = DEFAULT_PACKET_BYTES
    send_time: float = 0.0
    enqueue_time: float = 0.0
    dequeue_time: float = 0.0
    is_ack: bool = False
    acked_sequence: int = -1


@dataclass(frozen=True)
class NetworkScenario:
    """A network condition — the feature vector of the Scream-vs-rest task.

    Mirrors the paper's feature set for the congestion-control running
    example: bottleneck bandwidth, base latency, random loss rate, and the
    number of concurrent (competing) flows.  ``queue_bdp`` sizes the
    bottleneck buffer in bandwidth-delay products.
    """

    bandwidth_mbps: float
    rtt_ms: float
    loss_rate: float
    n_flows: int = 1
    queue_bdp: float = 2.0

    def __post_init__(self):
        if self.bandwidth_mbps <= 0:
            raise EmulationError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.rtt_ms <= 0:
            raise EmulationError(f"rtt must be positive, got {self.rtt_ms}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise EmulationError(f"loss_rate must be in [0, 1), got {self.loss_rate}")
        if self.n_flows < 1:
            raise EmulationError(f"n_flows must be >= 1, got {self.n_flows}")
        if self.queue_bdp <= 0:
            raise EmulationError(f"queue_bdp must be positive, got {self.queue_bdp}")

    @property
    def bandwidth_pps(self) -> float:
        """Bottleneck capacity in packets per second."""
        return self.bandwidth_mbps * 1e6 / (8 * DEFAULT_PACKET_BYTES)

    @property
    def base_rtt_s(self) -> float:
        return self.rtt_ms / 1000.0

    @property
    def bdp_packets(self) -> float:
        """Bandwidth-delay product in packets."""
        return self.bandwidth_pps * self.base_rtt_s

    @property
    def queue_capacity_packets(self) -> int:
        return max(2, int(round(self.queue_bdp * self.bdp_packets)))

    def as_features(self) -> tuple[float, float, float, float]:
        """The (bandwidth, rtt, loss, flows) feature vector used by AutoML."""
        return (self.bandwidth_mbps, self.rtt_ms, self.loss_rate, float(self.n_flows))
