"""A BBR-like model-based congestion controller.

Maintains the two BBR state variables — a windowed-max estimate of the
bottleneck bandwidth and a windowed-min RTT — and paces at
``pacing_gain · btl_bw`` while cycling the gain through the standard
eight-phase schedule (one probing phase at 1.25, one draining phase at
0.75, six cruising phases at 1.0).  Loss is largely ignored, as in BBRv1;
an inflight cap of ``2·BDP`` bounds the queue it can build.
"""

from __future__ import annotations

from collections import deque

from .base import MIN_RATE_PPS, CongestionControl

__all__ = ["BBR"]

_GAIN_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


class BBR(CongestionControl):
    name = "bbr"
    kind = "rate"

    def __init__(self, *, bw_window_s: float = 2.0, startup_gain: float = 2.0):
        self.bw_window_s = bw_window_s
        self.startup_gain = startup_gain
        super().__init__()

    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        super().reset(now=now, base_rtt_hint=base_rtt_hint)
        self.rate_pps = 20.0
        self.btl_bw = 0.0
        self._bw_samples: deque[tuple[float, float]] = deque()
        self._cycle_index = 0
        self._cycle_start = now
        self._in_startup = True
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._round_start = now

    def _update_bw(self, now: float, delivered_rate: float) -> None:
        """Windowed-max filter via a monotonic deque (O(1) amortized)."""
        if delivered_rate <= 0:
            return
        while self._bw_samples and self._bw_samples[-1][1] <= delivered_rate:
            self._bw_samples.pop()
        self._bw_samples.append((now, delivered_rate))
        cutoff = now - self.bw_window_s
        while self._bw_samples and self._bw_samples[0][0] < cutoff:
            self._bw_samples.popleft()
        self.btl_bw = self._bw_samples[0][1] if self._bw_samples else delivered_rate

    def _check_startup_exit(self) -> None:
        """Leave startup once the bandwidth estimate plateaus (<25% growth)."""
        if self.btl_bw > self._full_bw * 1.25:
            self._full_bw = self.btl_bw
            self._full_bw_rounds = 0
        else:
            self._full_bw_rounds += 1
            if self._full_bw_rounds >= 3:
                self._in_startup = False

    def _advance_cycle(self, now: float, rtt: float) -> float:
        if self._in_startup:
            return self.startup_gain
        if now - self._cycle_start >= rtt:
            self._cycle_start = now
            self._cycle_index = (self._cycle_index + 1) % len(_GAIN_CYCLE)
        return _GAIN_CYCLE[self._cycle_index]

    def _repace(self, now: float, rtt: float) -> None:
        gain = self._advance_cycle(now, rtt)
        if self.btl_bw > 0:
            self.rate_pps = max(MIN_RATE_PPS, gain * self.btl_bw)
        else:
            self.rate_pps = max(MIN_RATE_PPS, self.rate_pps * 1.05)

    def inflight_cap(self) -> float:
        """BBR bounds inflight to 2·BDP to limit standing queues.

        A small absolute floor keeps the ACK clock alive on low-BDP paths,
        where a literal 2·BDP cap could starve the bandwidth estimator.
        """
        if self.btl_bw <= 0 or self.min_rtt == float("inf"):
            return float("inf")
        gain = self.startup_gain if self._in_startup else 1.0
        return max(4.0, 2.0 * gain * self.btl_bw * self.min_rtt)

    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        self.observe_rtt(rtt)
        if delivered_rate is not None:
            self._update_bw(now, delivered_rate)
        # Startup-exit is a per-round-trip decision, not per ACK.
        if self._in_startup and now - self._round_start >= rtt:
            self._round_start = now
            self._check_startup_exit()
        self._repace(now, rtt)

    def on_loss(self, *, now: float) -> None:
        # BBRv1 reacts to loss only via a mild rate floor adjustment.
        self.rate_pps = max(MIN_RATE_PPS, self.rate_pps * 0.95)
        self.last_loss_reaction = now

    def fluid_update(
        self, *, now: float, dt: float, rtt: float, expected_losses: float, delivered_rate: float
    ) -> None:
        self.observe_rtt(rtt)
        self._update_bw(now, delivered_rate)
        if self._in_startup and now - self._cycle_start >= rtt:
            self._cycle_start = now
            self._check_startup_exit()
        self._repace(now, rtt)
        self.accumulate_loss(expected_losses, now=now, rtt=rtt)
