"""Congestion-control algorithm interface.

Each algorithm implements two views of the same control law so that both
simulation engines can drive it:

- **event-driven** (packet engine): :meth:`on_ack` / :meth:`on_loss` are
  called per packet event;
- **fluid** (fluid engine): :meth:`fluid_update` advances the control state
  over a small time step given the current RTT, loss intensity and
  delivered rate.

Window-based algorithms (Reno, Cubic, Vegas) expose ``congestion_window``;
rate-based algorithms (SCReAM, BBR) expose ``pacing_rate_pps``.  The
engines translate either into an instantaneous sending rate via
:meth:`sending_rate`.

All quantities are in packets and seconds; ``loss_credit`` implements the
standard once-per-window congestion reaction for the fluid engine (expected
losses accumulate until one "loss event" fires, at most once per RTT).
"""

from __future__ import annotations

from ...exceptions import EmulationError

__all__ = ["CongestionControl", "MIN_CWND", "MIN_RATE_PPS"]

MIN_CWND = 1.0
MIN_RATE_PPS = 1.0


class CongestionControl:
    """Base class; subclasses set ``name`` and ``kind``."""

    name: str = "base"
    kind: str = "window"  # or "rate"

    def __init__(self):
        self.reset(now=0.0)

    # -- lifecycle ---------------------------------------------------------
    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        """Reinitialize all control state for a fresh connection."""
        self.cwnd = 2.0
        self.rate_pps = MIN_RATE_PPS
        self.min_rtt = base_rtt_hint if base_rtt_hint else float("inf")
        self.last_loss_reaction = -float("inf")
        self._loss_credit = 0.0
        self._start_time = now

    # -- shared helpers ------------------------------------------------------
    def observe_rtt(self, rtt: float) -> None:
        if rtt <= 0:
            raise EmulationError(f"observed non-positive RTT: {rtt}")
        self.min_rtt = min(self.min_rtt, rtt)

    def queue_delay(self, rtt: float) -> float:
        """Estimated queueing delay: RTT above the observed minimum."""
        if self.min_rtt == float("inf"):
            return 0.0
        return max(0.0, rtt - self.min_rtt)

    def can_react_to_loss(self, now: float, rtt: float) -> bool:
        """Standard once-per-window rule: at most one reaction per RTT."""
        return now - self.last_loss_reaction >= rtt

    def accumulate_loss(self, expected_losses: float, *, now: float, rtt: float) -> bool:
        """Fluid-engine loss bookkeeping.

        Adds the expected number of lost packets over the last step; when a
        whole packet's worth has accumulated and the once-per-window rule
        allows it, fire one congestion reaction and return ``True``.
        """
        self._loss_credit += max(0.0, expected_losses)
        if self._loss_credit >= 1.0 and self.can_react_to_loss(now, rtt):
            self._loss_credit = 0.0
            self.on_loss(now=now)
            return True
        return False

    # -- event-driven interface (packet engine) -----------------------------
    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        raise NotImplementedError

    def on_loss(self, *, now: float) -> None:
        raise NotImplementedError

    # -- fluid interface -----------------------------------------------------
    def fluid_update(
        self,
        *,
        now: float,
        dt: float,
        rtt: float,
        expected_losses: float,
        delivered_rate: float,
    ) -> None:
        """Advance control state by ``dt`` seconds of fluid dynamics.

        The default implementation integrates the ACK clock: it emulates
        ``delivered_rate * dt`` acknowledgements arriving smoothly and
        applies loss credit.  Subclasses with closed-form dynamics override.
        """
        raise NotImplementedError

    # -- engine-facing output ------------------------------------------------
    def congestion_window(self) -> float:
        return max(MIN_CWND, self.cwnd)

    def pacing_rate_pps(self) -> float:
        return max(MIN_RATE_PPS, self.rate_pps)

    def sending_rate(self, rtt: float) -> float:
        """Instantaneous send rate in packets/second."""
        if self.kind == "window":
            return self.congestion_window() / max(rtt, 1e-6)
        return self.pacing_rate_pps()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(cwnd={self.cwnd:.1f}, rate={self.rate_pps:.1f}pps)"
