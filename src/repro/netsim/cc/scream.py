"""SCReAM — Self-Clocked Rate Adaptation for Multimedia (RFC 8298 style).

SCReAM is the latency-sensitive controller of the paper's running example.
True to the RFC, it is *self-clocked*: a congestion window is adjusted from
the estimated bottleneck queueing delay (RTT above the observed minimum)
relative to a small target, LEDBAT-style:

- per ACK the window moves by ``gain · (1 − qdelay/target) / cwnd`` —
  growth below the target, proportional shrink above it;
- packet loss applies a multiplicative decrease.

The result is the qualitative SCReAM behaviour the dataset needs: it keeps
the bottleneck queue near its small delay target (low end-to-end latency on
clean networks) but cedes throughput under random loss or against many
queue-filling competitors — the conditions where other protocols win.
"""

from __future__ import annotations

from .base import MIN_CWND, CongestionControl

__all__ = ["Scream"]


class Scream(CongestionControl):
    name = "scream"
    kind = "window"

    def __init__(
        self,
        *,
        target_delay: float = 0.02,
        gain: float = 0.4,
        loss_beta: float = 0.8,
        max_shrink_per_rtt: float = 0.5,
    ):
        if target_delay <= 0:
            raise ValueError(f"target_delay must be positive, got {target_delay}")
        self.target_delay = target_delay
        self.gain = gain
        self.loss_beta = loss_beta
        self.max_shrink_per_rtt = max_shrink_per_rtt
        super().__init__()

    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        super().reset(now=now, base_rtt_hint=base_rtt_hint)
        self.cwnd = 4.0

    def _window_step(self, rtt: float, fraction_of_rtt: float) -> None:
        """Move the window by the LEDBAT-style delta for a slice of an RTT.

        ``fraction_of_rtt`` is 1/cwnd for a single ACK (one window's worth
        of ACKs arrives per RTT) or ``dt/rtt`` in the fluid view.
        """
        qdelay = self.queue_delay(rtt)
        pressure = 1.0 - qdelay / self.target_delay  # >0 below target, <0 above
        delta = self.gain * pressure * self.cwnd * fraction_of_rtt
        # Bound the per-RTT shrink so a transient RTT spike cannot collapse
        # the window to nothing in one step.
        max_shrink = self.max_shrink_per_rtt * self.cwnd * fraction_of_rtt
        if delta < -max_shrink:
            delta = -max_shrink
        self.cwnd = max(MIN_CWND, self.cwnd + delta)

    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        self.observe_rtt(rtt)
        self._window_step(rtt, fraction_of_rtt=1.0 / max(self.cwnd, 1.0))

    def on_loss(self, *, now: float) -> None:
        self.cwnd = max(MIN_CWND, self.cwnd * self.loss_beta)
        self.last_loss_reaction = now

    def fluid_update(
        self, *, now: float, dt: float, rtt: float, expected_losses: float, delivered_rate: float
    ) -> None:
        self.observe_rtt(rtt)
        self._window_step(rtt, fraction_of_rtt=dt / max(rtt, 1e-6))
        self.accumulate_loss(expected_losses, now=now, rtt=rtt)
