"""TCP Reno (NewReno-style AIMD) congestion control.

Slow start doubles the window every RTT until ``ssthresh``; congestion
avoidance adds one packet per RTT; a loss event halves the window.  Reno is
the canonical loss-based baseline: it fills the bottleneck queue, so its
end-to-end latency degrades with buffer depth — exactly the behaviour that
makes SCReAM attractive for latency-sensitive flows.
"""

from __future__ import annotations

from .base import MIN_CWND, CongestionControl

__all__ = ["Reno"]


class Reno(CongestionControl):
    name = "reno"
    kind = "window"

    def __init__(self, *, initial_ssthresh: float = 64.0):
        self.initial_ssthresh = initial_ssthresh
        super().__init__()

    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        super().reset(now=now, base_rtt_hint=base_rtt_hint)
        self.ssthresh = self.initial_ssthresh

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        self.observe_rtt(rtt)
        if self.in_slow_start():
            self.cwnd += 1.0
        else:
            self.cwnd += 1.0 / self.cwnd

    def on_loss(self, *, now: float) -> None:
        self.ssthresh = max(MIN_CWND, self.cwnd / 2.0)
        self.cwnd = self.ssthresh
        self.last_loss_reaction = now

    def fluid_update(
        self, *, now: float, dt: float, rtt: float, expected_losses: float, delivered_rate: float
    ) -> None:
        self.observe_rtt(rtt)
        acks = delivered_rate * dt
        if self.in_slow_start():
            self.cwnd += acks  # one extra packet per ACK doubles per RTT
            self.cwnd = min(self.cwnd, self.ssthresh * 2)
        else:
            self.cwnd += acks / self.cwnd  # +1 packet per RTT
        self.accumulate_loss(expected_losses, now=now, rtt=rtt)
