"""Congestion-control algorithms for the network emulator.

``PROTOCOLS`` maps protocol name to factory; ``make_protocol`` builds a
fresh controller by name.  SCReAM is the paper's protagonist; the others
form the "rest" of the Scream-vs-rest labeling task.
"""

from typing import Callable

from ...exceptions import ValidationError
from .base import CongestionControl
from .bbr import BBR
from .cubic import Cubic
from .reno import Reno
from .scream import Scream
from .vegas import Vegas

__all__ = ["CongestionControl", "Reno", "Cubic", "Vegas", "Scream", "BBR", "PROTOCOLS", "make_protocol"]

PROTOCOLS: dict[str, Callable[[], CongestionControl]] = {
    "reno": Reno,
    "cubic": Cubic,
    "vegas": Vegas,
    "scream": Scream,
    "bbr": BBR,
}


def make_protocol(name: str) -> CongestionControl:
    """Instantiate a congestion controller by its registry name."""
    try:
        factory = PROTOCOLS[name]
    except KeyError:
        raise ValidationError(f"unknown protocol {name!r}; choices: {sorted(PROTOCOLS)}") from None
    return factory()
