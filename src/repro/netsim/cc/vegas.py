"""TCP Vegas delay-based congestion control.

Vegas compares the expected throughput (``cwnd / base_rtt``) against the
actual throughput (``cwnd / rtt``); the difference, expressed in packets
queued at the bottleneck, is kept between ``alpha`` and ``beta`` by ±1
packet-per-RTT adjustments.  Vegas keeps queues short, which makes it the
closest in spirit to SCReAM among the classic algorithms — and the main
source of "SCReAM is not best" labels in the dataset.
"""

from __future__ import annotations

from .base import MIN_CWND, CongestionControl

__all__ = ["Vegas"]


class Vegas(CongestionControl):
    name = "vegas"
    kind = "window"

    def __init__(self, *, alpha: float = 2.0, beta: float = 4.0):
        if alpha > beta:
            raise ValueError(f"vegas alpha {alpha} must be <= beta {beta}")
        self.alpha = alpha
        self.beta = beta
        super().__init__()

    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        super().reset(now=now, base_rtt_hint=base_rtt_hint)
        self.ssthresh = 32.0
        self._acks_this_rtt = 0.0
        self._rtt_epoch = now

    def _queued_packets(self, rtt: float) -> float:
        """Vegas' diff: estimated packets this flow keeps in the queue."""
        if self.min_rtt == float("inf") or self.min_rtt <= 0:
            return 0.0
        expected = self.cwnd / self.min_rtt
        actual = self.cwnd / rtt
        return (expected - actual) * self.min_rtt

    def _adjust(self, rtt: float, scale: float) -> None:
        diff = self._queued_packets(rtt)
        if self.cwnd < self.ssthresh and diff < self.alpha:
            self.cwnd += scale  # slow-start-like growth while under target
        elif diff < self.alpha:
            self.cwnd += scale
        elif diff > self.beta:
            self.cwnd = max(MIN_CWND, self.cwnd - scale)

    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        self.observe_rtt(rtt)
        # Apply the per-RTT ±1 adjustment smoothly, one ACK at a time.
        self._adjust(rtt, scale=1.0 / max(self.cwnd, 1.0))

    def on_loss(self, *, now: float) -> None:
        self.cwnd = max(MIN_CWND, self.cwnd * 0.75)
        self.last_loss_reaction = now

    def fluid_update(
        self, *, now: float, dt: float, rtt: float, expected_losses: float, delivered_rate: float
    ) -> None:
        self.observe_rtt(rtt)
        self._adjust(rtt, scale=dt / max(rtt, 1e-6))
        self.accumulate_loss(expected_losses, now=now, rtt=rtt)
