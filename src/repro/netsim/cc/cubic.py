"""CUBIC congestion control (RFC 8312-style window growth).

The window follows ``W(t) = C·(t − K)³ + W_max`` where ``t`` is the time
since the last congestion event, ``W_max`` the window at that event and
``K = ∛(W_max·β/C)`` the time at which the curve returns to ``W_max``.
CUBIC grows aggressively far from ``W_max`` and plateaus near it; like
Reno it is loss-based and therefore queue-filling.
"""

from __future__ import annotations

from .base import MIN_CWND, CongestionControl

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    name = "cubic"
    kind = "window"

    def __init__(self, *, c: float = 0.4, beta: float = 0.7):
        self.c = c
        self.beta = beta
        super().__init__()

    def reset(self, *, now: float, base_rtt_hint: float | None = None) -> None:
        super().reset(now=now, base_rtt_hint=base_rtt_hint)
        self.w_max = 0.0
        self.epoch_start: float | None = None
        self.k = 0.0
        self.ssthresh = 64.0

    def in_slow_start(self) -> bool:
        return self.w_max == 0.0 and self.cwnd < self.ssthresh

    def _cubic_window(self, now: float) -> float:
        if self.epoch_start is None:
            self.epoch_start = now
            self.k = (self.w_max * (1.0 - self.beta) / self.c) ** (1.0 / 3.0)
        t = now - self.epoch_start
        return self.c * (t - self.k) ** 3 + self.w_max

    def on_ack(self, *, now: float, rtt: float, delivered_rate: float | None = None) -> None:
        self.observe_rtt(rtt)
        if self.in_slow_start():
            self.cwnd += 1.0
            return
        target = self._cubic_window(now + rtt)
        if target > self.cwnd:
            # Spread the gap over roughly one window of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd
        else:
            self.cwnd += 0.01 / self.cwnd  # minimal growth in the plateau

    def on_loss(self, *, now: float) -> None:
        self.w_max = self.cwnd
        self.cwnd = max(MIN_CWND, self.cwnd * self.beta)
        self.ssthresh = self.cwnd
        self.epoch_start = None
        self.last_loss_reaction = now

    def fluid_update(
        self, *, now: float, dt: float, rtt: float, expected_losses: float, delivered_rate: float
    ) -> None:
        self.observe_rtt(rtt)
        if self.in_slow_start():
            self.cwnd += delivered_rate * dt
            self.cwnd = min(self.cwnd, self.ssthresh * 2)
        else:
            target = self._cubic_window(now + rtt)
            if target > self.cwnd:
                # ACK-clocked catch-up toward the cubic curve over ~1 RTT.
                self.cwnd += (target - self.cwnd) * min(1.0, dt / max(rtt, 1e-6))
            else:
                self.cwnd += 0.01 * dt / max(rtt, 1e-6)
        self.accumulate_loss(expected_losses, now=now, rtt=rtt)
