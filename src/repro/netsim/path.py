"""Multi-hop network paths: a chain of bottleneck links.

The single-bottleneck dumbbell covers the paper's experiments, but real
paths traverse several queues ("parking-lot" topologies).  A
:class:`NetworkPath` strings :class:`BottleneckLink` instances together:
a packet is delivered to the next hop's queue as soon as the previous hop
finishes serialization + propagation, and a drop at any hop drops the
packet end-to-end.

The path exposes the same ``send(packet, deliver)`` interface as a single
link, so :class:`repro.netsim.flow.Sender` works over paths unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..exceptions import EmulationError
from .link import BottleneckLink
from .packet import Packet

__all__ = ["NetworkPath"]


class NetworkPath:
    """An ordered chain of links acting as one logical hop for senders."""

    def __init__(self, links: Sequence[BottleneckLink]):
        links = list(links)
        if not links:
            raise EmulationError("a path needs at least one link")
        sims = {id(link.sim) for link in links}
        if len(sims) != 1:
            raise EmulationError("all links of a path must share one Simulator")
        self.links = links
        self.drop_listeners: list[Callable[[Packet], None]] = []
        for link in links:
            link.drop_listeners.append(self._on_hop_drop)

    @property
    def sim(self):
        return self.links[0].sim

    @property
    def bottleneck(self) -> BottleneckLink:
        """The slowest link — the one whose queue dominates behaviour."""
        return min(self.links, key=lambda link: link.rate_pps)

    @property
    def total_propagation_delay(self) -> float:
        return float(sum(link.one_way_delay for link in self.links))

    def _on_hop_drop(self, packet: Packet) -> None:
        for listener in self.drop_listeners:
            listener(packet)

    def send(self, packet: Packet, deliver: Callable[[Packet], None]) -> bool:
        """Inject ``packet`` at the first hop; ``deliver`` fires at the last.

        Returns whether the *first* hop accepted the packet (matching the
        single-link contract); drops at later hops surface through the
        drop listeners and, to the sender, as missing ACKs.
        """
        return self._send_hop(0, packet, deliver)

    def _send_hop(self, index: int, packet: Packet, deliver: Callable[[Packet], None]) -> bool:
        if index == len(self.links) - 1:
            return self.links[index].send(packet, deliver)

        def forward(packet: Packet, index=index) -> None:
            self._send_hop(index + 1, packet, deliver)

        return self.links[index].send(packet, forward)

    def queueing_delay_estimate(self) -> float:
        return float(sum(link.queueing_delay_estimate() for link in self.links))
