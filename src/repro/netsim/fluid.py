"""Fluid-model network simulation — the fast engine.

Solves the standard fluid approximation of a shared bottleneck: each flow
contributes its instantaneous sending rate, the queue integrates
``arrival − capacity``, RTT is ``base + queue/capacity``, and congestion
controllers advance their state via their :meth:`fluid_update` law.
Overflow and random loss are converted into expected-loss mass and fed back
to the controllers.

The fluid engine reproduces the steady-state and slow-timescale behaviour
of the packet engine at a tiny fraction of the cost, which is what makes
generating thousands of labeled Scream-vs-rest scenarios tractable
(``tests/test_netsim_agreement.py`` checks the two engines agree on the
qualitative orderings the dataset depends on).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmulationError
from ..rng import RandomState, check_random_state
from .cc import make_protocol
from .emulator import FlowMetrics, _weighted_percentile
from .packet import NetworkScenario

__all__ = ["run_fluid_scenario", "FluidTrace"]


class FluidTrace:
    """Optional per-step trace (queue, rates) for inspection and tests."""

    def __init__(self):
        self.times: list[float] = []
        self.queue: list[float] = []
        self.total_rate: list[float] = []

    def record(self, t: float, queue: float, rate: float) -> None:
        self.times.append(t)
        self.queue.append(queue)
        self.total_rate.append(rate)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.queue), np.asarray(self.total_rate)


def run_fluid_scenario(
    scenario: NetworkScenario,
    protocol: str,
    *,
    duration: float | None = None,
    warmup_fraction: float = 0.25,
    random_state: RandomState = None,
    trace: FluidTrace | None = None,
) -> FlowMetrics:
    """Run the fluid model for one (scenario, protocol) pair.

    ``duration`` defaults to enough RTTs for the control loops to settle
    (at least 60 RTTs, at least 4 seconds).  The first ``warmup_fraction``
    of the run is excluded from latency statistics.
    """
    rng = check_random_state(random_state)
    base_rtt = scenario.base_rtt_s
    capacity = scenario.bandwidth_pps
    queue_cap = float(scenario.queue_capacity_packets)
    if duration is None:
        duration = min(20.0, max(3.0, 50.0 * base_rtt))
    # The control loops operate on RTT timescales, so ~5 steps per RTT
    # resolves the dynamics; the step cap bounds cost on very short-RTT
    # scenarios where the absolute duration floor dominates.
    dt = max(1e-3, base_rtt / 5.0)
    steps = int(np.ceil(duration / dt))
    if steps > 4000:
        steps = 4000
        dt = duration / steps
    if steps < 10:
        raise EmulationError(f"duration {duration}s too short for dt {dt}s")

    controllers = [make_protocol(protocol) for _ in range(scenario.n_flows)]
    for controller in controllers:
        controller.reset(now=0.0)
        # Desynchronize control loops slightly, as staggered starts do in
        # the packet engine.
        controller.rate_pps *= float(rng.uniform(0.9, 1.1))
        controller.cwnd *= float(rng.uniform(0.9, 1.1))

    queue = 0.0
    sent_total = 0.0
    lost_total = 0.0
    delivered_total = 0.0
    delay_samples: list[float] = []
    delay_weights: list[float] = []
    warmup_time = warmup_fraction * duration
    loss_rate = scenario.loss_rate

    # Hot loop: plain floats/lists beat numpy at n_flows <= 8.
    for step in range(steps):
        now = step * dt
        rtt_now = base_rtt + queue / capacity
        rates = [controller.sending_rate(rtt_now) for controller in controllers]
        arrival = sum(rates)
        sent_total += arrival * dt

        # Queue integration with drop-tail overflow.
        next_queue = queue + (arrival - capacity) * dt
        overflow = next_queue - queue_cap
        if overflow > 0.0:
            queue = queue_cap
        else:
            overflow = 0.0
            queue = next_queue if next_queue > 0.0 else 0.0

        served = capacity if queue > 0 else min(arrival, capacity)
        delivered_total += served * dt
        inv_arrival = 1.0 / arrival if arrival > 0 else 0.0

        for i, controller in enumerate(controllers):
            share = rates[i] * inv_arrival
            losses = rates[i] * dt * loss_rate + overflow * share
            lost_total += losses
            controller.fluid_update(
                now=now,
                dt=dt,
                rtt=rtt_now,
                expected_losses=losses,
                delivered_rate=served * share,
            )

        if trace is not None:
            trace.record(now, queue, arrival)
        if now >= warmup_time:
            delay_samples.append((base_rtt / 2.0 + queue / capacity) * 1000.0)
            delay_weights.append(served * dt)

    delays = np.asarray(delay_samples)
    weights = np.asarray(delay_weights)
    if weights.sum() <= 0:
        raise EmulationError(f"fluid run delivered nothing for {protocol!r} under {scenario}")
    throughput_mbps = delivered_total / duration * 8 * 1500 / 1e6
    return FlowMetrics(
        protocol=protocol,
        scenario=scenario,
        duration=duration,
        avg_delay_ms=float(np.average(delays, weights=weights)),
        p95_delay_ms=_weighted_percentile(delays, weights, 0.95),
        throughput_mbps=float(throughput_mbps),
        # Clamp: per-step float rounding can put lost/sent a few ulps
        # above 1.0 when nearly every packet of a step is dropped.
        loss_fraction=float(min(1.0, lost_total / sent_total)) if sent_total else 0.0,
        utilization=float(min(1.0, delivered_total / (capacity * duration))),
    )
