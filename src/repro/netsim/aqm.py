"""Active queue management disciplines for the bottleneck link.

The paper's congestion-control example asks "which protocol fits these
network conditions" — and the bottleneck's queueing discipline is one of
those conditions (a delay-based protocol behind CoDel behaves very
differently from one behind a deep drop-tail buffer).  Three classic
disciplines are provided:

- :class:`DropTail` — admit until full (the default everywhere);
- :class:`RED` — Random Early Detection (Floyd & Jacobson 1993):
  probabilistic admission drops driven by an EWMA of the queue length;
- :class:`CoDel` — Controlled Delay (Nichols & Jacobson 2012): sojourn-
  time-based head drops on an increasing-frequency schedule.

A discipline sees two hook points, matching where real implementations
act: :meth:`admit` at enqueue (tail drops) and :meth:`deliver` at dequeue
(head drops).
"""

from __future__ import annotations

import math

from ..exceptions import EmulationError
from ..rng import check_random_state
from .packet import Packet

__all__ = ["QueueDiscipline", "DropTail", "RED", "CoDel", "make_discipline"]


class QueueDiscipline:
    """Hook interface the link drives; subclasses override the hooks."""

    def reset(self) -> None:
        """Clear any state carried across packets."""

    def admit(self, *, queue_length: int, capacity: int, now: float) -> bool:
        """Tail decision: may this packet join the queue?"""
        return queue_length < capacity

    def deliver(self, packet: Packet, *, now: float, rate_pps: float) -> bool:
        """Head decision: transmit this dequeued packet (False = drop)?"""
        return True


class DropTail(QueueDiscipline):
    """FIFO with tail drop at the configured capacity."""


class RED(QueueDiscipline):
    """Random Early Detection.

    Maintains an EWMA ``avg`` of the instantaneous queue length.  Below
    ``min_threshold`` (a fraction of capacity) everything is admitted;
    between the thresholds, packets are dropped with probability rising
    linearly to ``max_probability``; above ``max_threshold`` everything is
    dropped.  The classic gentle-RED count mechanism (spacing forced drops)
    is included.
    """

    def __init__(
        self,
        *,
        min_threshold: float = 0.25,
        max_threshold: float = 0.75,
        max_probability: float = 0.1,
        weight: float = 0.2,
        rng=None,
    ):
        if not 0.0 <= min_threshold < max_threshold <= 1.0:
            raise EmulationError(
                f"RED thresholds must satisfy 0 <= min < max <= 1, got {min_threshold}, {max_threshold}"
            )
        if not 0.0 < max_probability <= 1.0:
            raise EmulationError(f"max_probability must be in (0, 1], got {max_probability}")
        if not 0.0 < weight <= 1.0:
            raise EmulationError(f"weight must be in (0, 1], got {weight}")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self.rng = check_random_state(rng)
        self.reset()

    def reset(self) -> None:
        self.average = 0.0
        self._count_since_drop = 0

    def admit(self, *, queue_length: int, capacity: int, now: float) -> bool:
        self.average = (1.0 - self.weight) * self.average + self.weight * queue_length
        if queue_length >= capacity:
            return False  # physical limit always wins
        fill = self.average / capacity
        if fill < self.min_threshold:
            self._count_since_drop += 1
            return True
        if fill >= self.max_threshold:
            self._count_since_drop = 0
            return False
        base = self.max_probability * (fill - self.min_threshold) / (
            self.max_threshold - self.min_threshold
        )
        # Spread drops out: probability grows with packets since last drop.
        probability = base / max(1.0 - self._count_since_drop * base, 1e-6)
        if self.rng.random() < min(probability, 1.0):
            self._count_since_drop = 0
            return False
        self._count_since_drop += 1
        return True


class CoDel(QueueDiscipline):
    """Controlled Delay AQM.

    Tracks each packet's sojourn time at dequeue.  Once the sojourn has
    exceeded ``target`` continuously for ``interval`` seconds, CoDel enters
    a dropping state: it drops the head packet and schedules the next drop
    at ``interval / sqrt(count)``, leaving the state as soon as a sojourn
    dips below target.
    """

    def __init__(self, *, target: float = 0.005, interval: float = 0.1):
        if target <= 0 or interval <= 0:
            raise EmulationError(f"CoDel target/interval must be positive, got {target}, {interval}")
        self.target = target
        self.interval = interval
        self.reset()

    def reset(self) -> None:
        self._first_above_time: float | None = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def _sojourn_ok(self, sojourn: float, now: float) -> bool:
        """True while the queue delay is acceptable; manages the timer."""
        if sojourn < self.target:
            self._first_above_time = None
            return True
        if self._first_above_time is None:
            self._first_above_time = now + self.interval
            return True
        return now < self._first_above_time

    def deliver(self, packet: Packet, *, now: float, rate_pps: float) -> bool:
        sojourn = now - packet.enqueue_time
        if not self._dropping:
            if self._sojourn_ok(sojourn, now):
                return True
            self._dropping = True
            self._drop_count = max(1, self._drop_count - 2)  # resume near last rate
            self._drop_next = now + self.interval / math.sqrt(self._drop_count)
            return False
        if sojourn < self.target:
            self._dropping = False
            self._first_above_time = None
            return True
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval / math.sqrt(self._drop_count)
            return False
        return True


def make_discipline(name: str, **kwargs) -> QueueDiscipline:
    """Build a discipline by name ('droptail', 'red', 'codel')."""
    factories = {"droptail": DropTail, "red": RED, "codel": CoDel}
    try:
        factory = factories[name]
    except KeyError:
        raise EmulationError(f"unknown queue discipline {name!r}; choices: {sorted(factories)}") from None
    return factory(**kwargs)
