"""Discrete-event simulation engine.

A minimal but complete event loop: events are ``(time, sequence, callback)``
triples in a binary heap; the sequence number breaks ties deterministically
so simulations are exactly reproducible.  Components schedule callbacks via
:meth:`Simulator.schedule` and the loop runs until the horizon or event
exhaustion.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..exceptions import EmulationError

__all__ = ["Simulator"]


class Simulator:
    """The event loop owning simulated time."""

    def __init__(self):
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self._events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay must be >= 0)."""
        if delay < 0:
            raise EmulationError(f"cannot schedule an event {delay}s in the past")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated time ``when``."""
        self.schedule(when - self.now, callback)

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending(self) -> int:
        return len(self._queue)

    def run(self, until: float, *, max_events: int | None = None) -> None:
        """Process events in time order until ``until`` (exclusive).

        ``max_events`` guards against runaway simulations (a mis-tuned
        congestion controller can generate unbounded event storms); hitting
        it raises :class:`EmulationError` rather than silently truncating.
        """
        if until < self.now:
            raise EmulationError(f"cannot run backwards: now={self.now}, until={until}")
        while self._queue and self._queue[0][0] <= until:
            when, _, callback = heapq.heappop(self._queue)
            self.now = when
            callback()
            self._events_processed += 1
            if max_events is not None and self._events_processed > max_events:
                raise EmulationError(
                    f"simulation exceeded {max_events} events before t={until}; "
                    "scenario is probably divergent"
                )
        self.now = max(self.now, until)
