"""Scenario sampling for the Scream-vs-rest dataset.

The paper's congestion-control example trains on feature vectors of
(bottleneck bandwidth, latency, loss rate, number of concurrent flows).
:class:`ScenarioSpace` defines the valid ranges — doubling as the feature
domains the feedback algorithm needs — and samples scenarios uniformly, or
from a biased "production-like" distribution that under-represents lossy
conditions (the data-collection bias §2.2 of the paper calls out).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ValidationError
from ..featurespace import FeatureDomain
from ..rng import RandomState, check_random_state
from .packet import NetworkScenario

__all__ = ["ScenarioSpace", "DEFAULT_SPACE"]


@dataclass(frozen=True)
class ScenarioSpace:
    """Valid ranges for each network-condition feature."""

    bandwidth_mbps: tuple[float, float] = (1.0, 100.0)
    rtt_ms: tuple[float, float] = (5.0, 200.0)
    loss_rate: tuple[float, float] = (0.0, 0.02)
    n_flows: tuple[int, int] = (1, 8)
    queue_bdp: float = 2.0

    def __post_init__(self):
        for name in ("bandwidth_mbps", "rtt_ms", "loss_rate", "n_flows"):
            low, high = getattr(self, name)
            if low >= high:
                raise ValidationError(f"{name} range is empty: [{low}, {high}]")

    def domains(self) -> list[FeatureDomain]:
        """Feature domains in the canonical feature order."""
        return [
            FeatureDomain("bandwidth_mbps", *self.bandwidth_mbps),
            FeatureDomain("rtt_ms", *self.rtt_ms),
            FeatureDomain("loss_rate", *self.loss_rate),
            FeatureDomain("n_flows", float(self.n_flows[0]), float(self.n_flows[1]), integer=True),
        ]

    def feature_names(self) -> list[str]:
        return [domain.name for domain in self.domains()]

    def scenario_from_features(self, features) -> NetworkScenario:
        """Build a scenario from one (bandwidth, rtt, loss, flows) vector."""
        features = np.asarray(features, dtype=np.float64).ravel()
        if features.shape[0] != 4:
            raise ValidationError(f"expected 4 features, got {features.shape[0]}")
        return NetworkScenario(
            bandwidth_mbps=float(np.clip(features[0], *self.bandwidth_mbps)),
            rtt_ms=float(np.clip(features[1], *self.rtt_ms)),
            loss_rate=float(np.clip(features[2], *self.loss_rate)),
            n_flows=int(np.clip(round(features[3]), *self.n_flows)),
            queue_bdp=self.queue_bdp,
        )

    def sample(self, n: int, random_state: RandomState = None) -> list[NetworkScenario]:
        """Draw ``n`` scenarios uniformly over the space."""
        rng = check_random_state(random_state)
        features = np.column_stack([domain.sample(n, rng) for domain in self.domains()])
        return [self.scenario_from_features(row) for row in features]

    def sample_production_biased(self, n: int, random_state: RandomState = None) -> list[NetworkScenario]:
        """Draw scenarios with a production-trace-like bias.

        Real collection from a healthy network rarely observes high loss
        or extreme congestion (the paper's §2.2 bias argument): loss is
        drawn from an exponential concentrated near zero and flow counts
        skew low.  Training on this distribution creates exactly the blind
        spots the feedback algorithm is designed to surface.
        """
        rng = check_random_state(random_state)
        bandwidth = rng.uniform(*self.bandwidth_mbps, size=n)
        rtt = rng.uniform(*self.rtt_ms, size=n)
        loss_span = self.loss_rate[1] - self.loss_rate[0]
        loss = self.loss_rate[0] + np.minimum(rng.exponential(loss_span / 8.0, size=n), loss_span)
        flows = np.clip(
            np.round(1 + rng.exponential(1.2, size=n)), self.n_flows[0], self.n_flows[1]
        )
        features = np.column_stack([bandwidth, rtt, loss, flows])
        return [self.scenario_from_features(row) for row in features]


DEFAULT_SPACE = ScenarioSpace()
