"""Figure reproductions: the ALE disagreement plots of Figures 1 and 2.

- **Figure 1**: the committee ALE curve (mean ± std) of the bottleneck
  link rate for the Scream-vs-rest problem, plus the half-space feedback
  (the paper's ``x ≤ 45 ∪ x ≥ 99`` example);
- **Figure 2a/2b**: the source-port and destination-port ALE curves on the
  firewall dataset — high variance at low source ports (noisy,
  kernel-assigned) and around destination ports 443–445 (DDoS surface).

Each figure is emitted as a CSV series (grid, per-class mean, per-class
std), an ASCII rendering, and the flagged interval union.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..automl.automl import AutoMLClassifier
from ..core.explanations import ascii_ale_plot, curves_to_csv, explain_report
from ..core.feedback import AleFeedback, FeedbackReport, within_ale_committee
from ..datasets.firewall import generate_firewall_dataset
from ..datasets.scream import generate_scream_dataset
from ..exceptions import ValidationError
from ..rng import RandomState
from .records import ExperimentRecord

__all__ = ["FigureConfig", "FigureArtifact", "run_figure1", "run_figure2"]


@dataclass(frozen=True)
class FigureConfig:
    """Budget for the one AutoML run a figure needs.

    ``grid_strategy``: ``'uniform'`` reads naturally when the x-axis is a
    physical quantity with evenly interesting values (Figure 1's link
    rate); ``'quantile'`` concentrates resolution where the data mass is,
    which is what resolves the port-443 neighbourhood on the firewall data
    (Figure 2).
    """

    n_train: int = 400
    automl_iterations: int = 14
    ensemble_size: int = 8
    min_distinct_members: int = 5
    grid_size: int = 24
    grid_strategy: str = "uniform"
    seed: int = 20211112


@dataclass
class FigureArtifact:
    """One reproduced figure: the profile plus its renderings."""

    figure_id: str
    feature_name: str
    csv: str
    ascii_plot: str
    flagged_intervals: str
    threshold: float
    report: FeedbackReport

    def to_record(self) -> ExperimentRecord:
        record = ExperimentRecord(
            experiment_id=self.figure_id,
            metadata={"feature": self.feature_name, "threshold": self.threshold},
        )
        record.series[self.feature_name] = self.csv
        record.tables["ascii"] = self.ascii_plot
        record.tables["flagged"] = self.flagged_intervals
        return record


def _committee_report(dataset, config: FigureConfig) -> FeedbackReport:
    automl = AutoMLClassifier(
        n_iterations=config.automl_iterations,
        ensemble_size=config.ensemble_size,
        min_distinct_members=config.min_distinct_members,
        random_state=config.seed,
    ).fit(dataset.X, dataset.y)
    feedback = AleFeedback(grid_size=config.grid_size, grid_strategy=config.grid_strategy)
    return feedback.analyze(within_ale_committee(automl), dataset.X, dataset.domains)


def _artifact(report: FeedbackReport, feature_name: str, figure_id: str, *, class_index: int) -> FigureArtifact:
    profile = next((p for p in report.profiles if p.domain.name == feature_name), None)
    if profile is None:
        raise ValidationError(f"no profile for feature {feature_name!r}")
    intervals = report.intervals_for(feature_name)
    return FigureArtifact(
        figure_id=figure_id,
        feature_name=feature_name,
        csv=curves_to_csv(profile),
        ascii_plot=ascii_ale_plot(profile, threshold=report.threshold, class_index=class_index),
        flagged_intervals=f"{feature_name} ∈ {intervals}" if intervals else "(nothing flagged)",
        threshold=report.threshold,
        report=report,
    )


def run_figure1(config: FigureConfig = FigureConfig()) -> FigureArtifact:
    """Figure 1: ALE disagreement over the link rate (Scream-vs-rest)."""
    dataset = generate_scream_dataset(config.n_train, random_state=config.seed)
    report = _committee_report(dataset, config)
    # Class 1 = "pick SCReAM"; its probability is what Figure 1 plots.
    return _artifact(report, "bandwidth_mbps", "figure1_link_rate_ale", class_index=1)


def run_figure2(config: FigureConfig | None = None) -> tuple[FigureArtifact, FigureArtifact]:
    """Figures 2a/2b: source- and destination-port ALE on firewall data.

    Defaults to a quantile grid so the dense service-port neighbourhood
    (53/80/443–445) gets its own bins, as the paper's zoomed Figure 2b
    implies.
    """
    if config is None:
        config = FigureConfig(grid_strategy="quantile", grid_size=48)
    dataset = generate_firewall_dataset(max(config.n_train, 1000), random_state=config.seed)
    report = _committee_report(dataset, config)
    fig2a = _artifact(report, "src_port", "figure2a_src_port_ale", class_index=0)
    fig2b = _artifact(report, "dst_port", "figure2b_dst_port_ale", class_index=0)
    return fig2a, fig2b
