"""Table 1 reproduction: Scream-vs-rest balanced accuracy + significance.

Runs all nine algorithms of the paper's Table 1 on the Scream-vs-rest
dataset, with the paper's statistical protocol (20 test sets per repeat,
one-sided Wilcoxon signed-rank p-values, ``α = 5 %``).

``Table1Config`` defaults are scaled down to minutes-on-a-laptop;
``PAPER_SCALE`` holds the paper's sizes (1161 train / +280 feedback / 4850
test / 2000 pool / 10 repeats / 10 cross runs) for full-fidelity runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..automl.spec import AutoMLSpec
from ..core.feedback import AleFeedback
from ..datasets.scream import LabeledDataset, ScreamOracle, generate_scream_dataset
from ..datasets.splits import make_test_sets
from ..exceptions import ValidationError
from ..ml.metrics import accuracy
from ..rng import check_random_state, spawn
from ..runtime import TaskRuntime
from ..stats.significance import AlgorithmScores, SignificanceTable
from .records import ExperimentRecord, scores_to_csv
from .runner import AugmentationContext, STRATEGIES, run_strategy

__all__ = ["Table1Config", "PAPER_SCALE", "TABLE1_ALGORITHMS", "run_table1", "format_paper_table"]

TABLE1_ALGORITHMS = [
    "no_feedback",
    "within_ale",
    "cross_ale",
    "uniform",
    "confidence",
    "upsampling",
    "qbc",
    "within_ale_pool",
    "cross_ale_pool",
]


@dataclass(frozen=True)
class Table1Config:
    """Sizing/budget knobs for the Table 1 experiment."""

    n_train: int = 350
    n_test: int = 1000
    n_pool: int = 500
    n_feedback: int = 84
    n_test_sets: int = 20
    n_repeats: int = 3
    cross_runs: int = 4
    automl_iterations: int = 30
    ensemble_size: int = 10
    min_distinct_members: int = 4
    grid_size: int = 24
    threshold: float | None = None
    threshold_scale: float = 2.0
    engine: str = "fluid"
    biased_train: bool = False
    seed: int = 20211110

    def total_samples(self) -> int:
        return self.n_train + self.n_test + self.n_pool

    def validate(self) -> None:
        if min(self.n_train, self.n_test, self.n_pool, self.n_feedback) < 1:
            raise ValidationError("all dataset sizes must be positive")
        if self.n_test < self.n_test_sets:
            raise ValidationError(f"cannot split {self.n_test} test rows into {self.n_test_sets} sets")
        if self.cross_runs < 2:
            raise ValidationError(f"cross_runs must be >= 2, got {self.cross_runs}")


PAPER_SCALE = Table1Config(
    n_train=1161,
    n_test=4850,
    n_pool=2000,
    n_feedback=280,
    n_repeats=10,
    cross_runs=10,
    automl_iterations=120,
    ensemble_size=16,
)

# Generated datasets are reused across repeats (splits differ per repeat);
# keyed by the generation parameters.
_DATASET_CACHE: dict[tuple, LabeledDataset] = {}


def _eval_dataset(config: Table1Config) -> LabeledDataset:
    """Uniformly sampled scenarios: the test sets and the candidate pool."""
    n = config.n_test + config.n_pool
    key = ("uniform", n, config.engine, config.seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_scream_dataset(
            n, engine=config.engine, random_state=config.seed
        )
    return _DATASET_CACHE[key]


def _train_dataset(config: Table1Config) -> LabeledDataset:
    """The training reservoir each repeat draws its training set from.

    With ``biased_train`` (default) scenarios come from the production-like
    distribution of §2.2 — the operator's logs under-represent lossy,
    congested conditions, which is exactly the blind spot the feedback is
    meant to surface.  Sized at 2× ``n_train`` so repeats see different
    training sets.
    """
    n = 2 * config.n_train
    key = ("train", config.biased_train, n, config.engine, config.seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_scream_dataset(
            n, engine=config.engine, biased=config.biased_train, random_state=config.seed + 1
        )
    return _DATASET_CACHE[key]


def run_table1(
    config: Table1Config = Table1Config(),
    *,
    algorithms: list[str] | None = None,
    progress=None,
    runtime: TaskRuntime | None = None,
) -> tuple[SignificanceTable, ExperimentRecord]:
    """Run the Table 1 experiment and return the significance table.

    ``progress`` is an optional callable receiving status strings.
    ``runtime`` routes every AutoML fit and ALE profile through a
    :class:`~repro.runtime.TaskRuntime` (parallel executors, artifact
    cache); ``None`` keeps the implicit serial, uncached path.  Results
    are bitwise-identical either way.
    """
    config.validate()
    algorithms = list(algorithms) if algorithms is not None else list(TABLE1_ALGORITHMS)
    unknown = set(algorithms) - set(STRATEGIES)
    if unknown:
        raise ValidationError(f"unknown algorithms: {sorted(unknown)}")
    say = progress or (lambda message: None)

    eval_dataset = _eval_dataset(config)
    train_reservoir = _train_dataset(config)
    oracle = ScreamOracle(engine=config.engine, random_state=config.seed + 2)
    master_rng = check_random_state(config.seed + 3)
    collected: dict[str, list[float]] = {name: [] for name in algorithms}

    for repeat, repeat_rng in enumerate(spawn(master_rng, config.n_repeats)):
        say(f"repeat {repeat + 1}/{config.n_repeats}")
        train_order = repeat_rng.permutation(train_reservoir.n_samples)
        train = train_reservoir.subset(train_order[: config.n_train])
        order = repeat_rng.permutation(eval_dataset.n_samples)
        test = eval_dataset.subset(order[: config.n_test])
        pool = eval_dataset.subset(order[config.n_test :])
        test_sets = make_test_sets(test, config.n_test_sets, random_state=repeat_rng)

        # Internal search/selection metric is plain accuracy — the
        # AutoSklearn default the paper ran with.  Evaluation is
        # balanced accuracy, so label imbalance hurts exactly the way
        # Table 1 shows (uniform extra data can hurt; upsampling wins).
        # A spec, not a closure, so fits can cross the process boundary.
        automl_factory = AutoMLSpec(
            n_iterations=config.automl_iterations,
            ensemble_size=config.ensemble_size,
            min_distinct_members=config.min_distinct_members,
            scorer=accuracy,
        )

        initial = automl_factory(repeat_rng).fit(train.X, train.y)
        ctx = AugmentationContext(
            train=train,
            pool=pool,
            oracle=oracle.label,
            initial_automl=initial,
            automl_factory=automl_factory,
            n_feedback=config.n_feedback,
            feedback=AleFeedback(
                threshold=config.threshold,
                threshold_scale=config.threshold_scale,
                grid_size=config.grid_size,
                task_mapper=runtime.named_map if runtime is not None else None,
            ),
            cross_runs=config.cross_runs,
            rng=repeat_rng,
            runtime=runtime,
        )
        for name in algorithms:
            scores, result = run_strategy(name, ctx, test_sets, random_state=repeat_rng)
            collected[name].extend(scores)
            say(
                f"  {name}: mean bacc {float(np.mean(scores)):.3f} "
                f"(+{result.points_added} pts{'; ' + result.detail if result.detail else ''})"
            )

    table = SignificanceTable([AlgorithmScores(name, np.asarray(collected[name])) for name in algorithms])
    record = ExperimentRecord(
        experiment_id="table1_scream_vs_rest",
        metadata={
            "config": {k: getattr(config, k) for k in Table1Config.__dataclass_fields__},
            "paper_reference": "HotNets'21 Table 1",
        },
    )
    record.tables["table1"] = format_paper_table(table)
    record.series["scores"] = scores_to_csv(table)
    record.add_scores(table)
    return table, record


def format_paper_table(table: SignificanceTable) -> str:
    """Render the exact column layout of the paper's Table 1.

    Columns: balanced accuracy, ``P(no feedback, X)``, ``P(X, within ALE)``
    and ``P(X, cross ALE)``.
    """
    names = table.names()
    headers = ["Algorithm (X)", "balanced accuracy", "P(no feedback, X)", "P(X, within ALE)", "P(X, cross ALE)"]
    rows = []
    for name in names:
        cells = [name, table.scores(name).formatted()]
        for worse, better in (
            ("no_feedback", name),
            (name, "within_ale"),
            (name, "cross_ale"),
        ):
            if worse == better or worse not in names or better not in names:
                cells.append("NA")
            else:
                cells.append(f"{table.p_value(worse, better):.3g}")
        rows.append(cells)
    widths = [max(len(row[i]) for row in [headers] + rows) for i in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
