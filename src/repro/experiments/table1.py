"""Table 1 reproduction: Scream-vs-rest balanced accuracy + significance.

Runs all nine algorithms of the paper's Table 1 on the Scream-vs-rest
dataset, with the paper's statistical protocol (20 test sets per repeat,
one-sided Wilcoxon signed-rank p-values, ``α = 5 %``).

``Table1Config`` defaults are scaled down to minutes-on-a-laptop;
``PAPER_SCALE`` holds the paper's sizes (1161 train / +280 feedback / 4850
test / 2000 pool / 10 repeats / 10 cross runs) for full-fidelity runs.

The experiment is *sharded*: dataset generation, each repeat's initial
AutoML fit, and every (repeat, strategy) cell are independent runtime
tasks (see :mod:`repro.experiments.grid`), so a parallel executor runs
cells concurrently, the artifact cache answers warm reruns without
touching the emulator or AutoML, and one poisoned cell degrades gracefully
instead of losing the run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..automl.spec import AutoMLSpec
from ..datasets.splits import make_test_sets
from ..exceptions import ValidationError
from ..ml.metrics import accuracy
from ..rng import check_random_state, generator_from_path, spawn_seeds
from ..runtime import Task, TaskRuntime, default_runtime
from ..stats.significance import AlgorithmScores, SignificanceTable
from .grid import RepeatPlan, fetch_datasets, run_experiment_grid
from .records import ExperimentRecord, scores_to_csv
from .runner import STRATEGIES
from .tasks import scream_dataset_task

__all__ = ["Table1Config", "PAPER_SCALE", "TABLE1_ALGORITHMS", "run_table1", "format_paper_table"]

TABLE1_ALGORITHMS = [
    "no_feedback",
    "within_ale",
    "cross_ale",
    "uniform",
    "confidence",
    "upsampling",
    "qbc",
    "within_ale_pool",
    "cross_ale_pool",
]


@dataclass(frozen=True)
class Table1Config:
    """Sizing/budget knobs for the Table 1 experiment."""

    n_train: int = 350
    n_test: int = 1000
    n_pool: int = 500
    n_feedback: int = 84
    n_test_sets: int = 20
    n_repeats: int = 3
    cross_runs: int = 4
    automl_iterations: int = 30
    ensemble_size: int = 10
    min_distinct_members: int = 4
    grid_size: int = 24
    threshold: float | None = None
    threshold_scale: float = 2.0
    engine: str = "fluid"
    biased_train: bool = False
    seed: int = 20211110

    def total_samples(self) -> int:
        return self.n_train + self.n_test + self.n_pool

    def validate(self) -> None:
        if min(self.n_train, self.n_test, self.n_pool, self.n_feedback) < 1:
            raise ValidationError("all dataset sizes must be positive")
        if self.n_test < self.n_test_sets:
            raise ValidationError(f"cannot split {self.n_test} test rows into {self.n_test_sets} sets")
        if self.cross_runs < 2:
            raise ValidationError(f"cross_runs must be >= 2, got {self.cross_runs}")


PAPER_SCALE = Table1Config(
    n_train=1161,
    n_test=4850,
    n_pool=2000,
    n_feedback=280,
    n_repeats=10,
    cross_runs=10,
    automl_iterations=120,
    ensemble_size=16,
)

def _dataset_tasks(config: Table1Config) -> tuple[Task, Task]:
    """The two Scream generation tasks: evaluation pool and train reservoir.

    Seed paths ``(seed,)`` / ``(seed + 1,)`` are bitwise-equivalent to the
    pre-shard ``random_state=seed`` / ``seed + 1`` integers, so the
    generated data is unchanged.  The train reservoir is sized at 2×
    ``n_train`` so repeats see different training sets; ``biased_train``
    draws it from the production-like distribution of §2.2 — the
    operator's logs under-represent lossy, congested conditions, exactly
    the blind spot the feedback is meant to surface.

    Built through the canonical :func:`scream_dataset_task` constructor,
    so any experiment (or sweep) asking for the same ``(n_samples,
    engine, biased, seed)`` addresses the same cache artifact — locally
    and through a shared remote store.
    """
    eval_task = scream_dataset_task(
        config.n_test + config.n_pool,
        config.seed,
        engine=config.engine,
        biased=False,
        label="scream-eval-dataset",
    )
    train_task = scream_dataset_task(
        2 * config.n_train,
        config.seed + 1,
        engine=config.engine,
        biased=config.biased_train,
        label="scream-train-dataset",
    )
    return eval_task, train_task


def run_table1(
    config: Table1Config = Table1Config(),
    *,
    algorithms: list[str] | None = None,
    progress=None,
    runtime: TaskRuntime | None = None,
) -> tuple[SignificanceTable, ExperimentRecord]:
    """Run the Table 1 experiment and return the significance table.

    ``progress`` is an optional callable receiving status strings.
    ``runtime`` is the :class:`~repro.runtime.TaskRuntime` the sharded
    grid executes on — dataset generation, per-repeat initial fits, and
    every (repeat, strategy) cell are independent tasks, so a process
    executor runs cells in parallel and an artifact cache answers warm
    reruns per cell; ``None`` means serial and uncached.  Results are
    bitwise-identical under any executor, submission order, or cache
    state.  A failed cell drops its algorithm (a failed initial fit drops
    its repeat) and is reported in ``record.metadata["grid"]`` rather than
    crashing the run.
    """
    config.validate()
    algorithms = list(algorithms) if algorithms is not None else list(TABLE1_ALGORITHMS)
    unknown = set(algorithms) - set(STRATEGIES)
    if unknown:
        raise ValidationError(f"unknown algorithms: {sorted(unknown)}")
    say = progress or (lambda message: None)
    rt = runtime if runtime is not None else default_runtime()

    say("generating datasets")
    eval_dataset, train_reservoir = fetch_datasets(rt, list(_dataset_tasks(config)))

    # Internal search/selection metric is plain accuracy — the
    # AutoSklearn default the paper ran with.  Evaluation is balanced
    # accuracy, so label imbalance hurts exactly the way Table 1 shows
    # (uniform extra data can hurt; upsampling wins).  A spec, not a
    # closure, so fits can cross the process boundary.
    automl_factory = AutoMLSpec(
        n_iterations=config.automl_iterations,
        ensemble_size=config.ensemble_size,
        min_distinct_members=config.min_distinct_members,
        scorer=accuracy,
    )

    # Each repeat's root seed comes from the master stream; everything the
    # repeat owns (splits, initial-fit seed, cell streams) derives from it,
    # so repeats are independent tasks-in-waiting rather than loop turns.
    master_rng = check_random_state(config.seed + 3)
    plans: list[RepeatPlan] = []
    for repeat, repeat_seed in enumerate(spawn_seeds(master_rng, config.n_repeats)):
        repeat_rng = generator_from_path((repeat_seed,))
        train_order = repeat_rng.permutation(train_reservoir.n_samples)
        train = train_reservoir.subset(train_order[: config.n_train])
        order = repeat_rng.permutation(eval_dataset.n_samples)
        test = eval_dataset.subset(order[: config.n_test])
        pool = eval_dataset.subset(order[config.n_test :])
        test_sets = make_test_sets(test, config.n_test_sets, random_state=repeat_rng)
        [initial_seed] = spawn_seeds(repeat_rng, 1)
        plans.append(RepeatPlan(repeat, repeat_seed, train, pool, test_sets, initial_seed))

    grid = run_experiment_grid(
        rt,
        plans,
        algorithms,
        factory=automl_factory,
        n_feedback=config.n_feedback,
        cross_runs=config.cross_runs,
        feedback={
            "threshold": config.threshold,
            "threshold_scale": config.threshold_scale,
            "grid_size": config.grid_size,
        },
        oracle={"engine": config.engine},
        progress=say,
    )

    table = SignificanceTable(
        [AlgorithmScores(name, np.asarray(scores)) for name, scores in grid.collected.items()]
    )
    record = ExperimentRecord(
        experiment_id="table1_scream_vs_rest",
        metadata={
            "config": {k: getattr(config, k) for k in Table1Config.__dataclass_fields__},
            "paper_reference": "HotNets'21 Table 1",
            "grid": grid.metadata(),
        },
    )
    record.tables["table1"] = format_paper_table(table)
    record.series["scores"] = scores_to_csv(table)
    record.add_scores(table)
    return table, record


def format_paper_table(table: SignificanceTable) -> str:
    """Render the exact column layout of the paper's Table 1.

    Columns: balanced accuracy, ``P(no feedback, X)``, ``P(X, within ALE)``
    and ``P(X, cross ALE)``.
    """
    names = table.names()
    headers = ["Algorithm (X)", "balanced accuracy", "P(no feedback, X)", "P(X, within ALE)", "P(X, cross ALE)"]
    rows = []
    for name in names:
        cells = [name, table.scores(name).formatted()]
        for worse, better in (
            ("no_feedback", name),
            (name, "within_ale"),
            (name, "cross_ale"),
        ):
            if worse == better or worse not in names or better not in names:
                cells.append("NA")
            else:
                cells.append(f"{table.p_value(worse, better):.3g}")
        rows.append(cells)
    widths = [max(len(row[i]) for row in [headers] + rows) for i in range(len(headers))]
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
