"""Experiment harness: one runner per table/figure of the paper.

- :func:`run_table1` — Table 1 (Scream-vs-rest, 9 algorithms, Wilcoxon);
- :func:`run_ucl` — §4.2 firewall results;
- :func:`run_figure1` / :func:`run_figure2` — the ALE disagreement plots;
- :func:`sweep_thresholds` — §4's threshold-setting analysis.
"""

from .figures import FigureArtifact, FigureConfig, run_figure1, run_figure2
from .paper import PAPER_TABLE1, TABLE1_CLAIMS, PaperRow, ShapeClaim, compare_to_paper, format_comparison
from .records import ExperimentRecord, save_record, scores_to_csv
from .runner import STRATEGIES, AugmentationContext, AugmentationResult, run_strategy
from .table1 import PAPER_SCALE, TABLE1_ALGORITHMS, Table1Config, format_paper_table, run_table1
from .threshold_sweep import ThresholdSweepRow, sweep_thresholds, sweep_to_csv
from .ucl import PAPER_SCALE_UCL, UCL_ALGORITHMS, UCLConfig, run_ucl

__all__ = [
    "run_table1",
    "Table1Config",
    "PAPER_TABLE1",
    "TABLE1_CLAIMS",
    "PaperRow",
    "ShapeClaim",
    "compare_to_paper",
    "format_comparison",
    "PAPER_SCALE",
    "TABLE1_ALGORITHMS",
    "format_paper_table",
    "run_ucl",
    "UCLConfig",
    "PAPER_SCALE_UCL",
    "UCL_ALGORITHMS",
    "run_figure1",
    "run_figure2",
    "FigureConfig",
    "FigureArtifact",
    "sweep_thresholds",
    "sweep_to_csv",
    "ThresholdSweepRow",
    "ExperimentRecord",
    "save_record",
    "scores_to_csv",
    "STRATEGIES",
    "AugmentationContext",
    "AugmentationResult",
    "run_strategy",
]
