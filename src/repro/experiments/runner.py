"""Shared machinery for the evaluation experiments.

Each Table-1 row is a *data-augmentation strategy*: it takes the initial
training set (plus the fitted initial AutoML, the candidate pool, and a
labeling oracle) and returns the augmented training set.  The harness then
fits a fresh AutoML on the augmented data and scores it on the shared test
sets, so every strategy is compared under identical conditions — the
paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..active.confidence import select_least_confident
from ..active.qbc import select_by_committee
from ..active.uniform import sample_uniform
from ..active.upsampling import random_oversample
from ..automl.automl import AutoMLClassifier
from ..core.feedback import AleFeedback, cross_ale_committee, within_ale_committee
from ..datasets.scream import LabeledDataset
from ..exceptions import ValidationError
from ..ml.metrics import balanced_accuracy
from ..rng import RandomState, check_random_state, spawn

__all__ = [
    "AugmentationContext",
    "AugmentationResult",
    "STRATEGIES",
    "strategy",
    "evaluate_on_test_sets",
    "run_strategy",
]


@dataclass
class AugmentationContext:
    """Everything a Table-1 strategy may use to build its augmented data."""

    train: LabeledDataset
    pool: LabeledDataset
    oracle: Callable[[np.ndarray], np.ndarray] | None
    initial_automl: AutoMLClassifier
    automl_factory: Callable[[np.random.Generator], AutoMLClassifier]
    n_feedback: int
    feedback: AleFeedback
    cross_runs: int
    rng: np.random.Generator

    def label(self, X_new: np.ndarray) -> np.ndarray:
        if self.oracle is None:
            raise ValidationError(
                "this strategy needs to label new points but no oracle is available "
                "(pool-only experiments must use pool-based strategies)"
            )
        return self.oracle(X_new)

    def fit_cross_runs(self) -> list[AutoMLClassifier]:
        """The extra AutoML runs Cross-ALE needs (initial run reused)."""
        runs = [self.initial_automl]
        for child in spawn(self.rng, self.cross_runs - 1):
            runs.append(self.automl_factory(child).fit(self.train.X, self.train.y))
        return runs


@dataclass
class AugmentationResult:
    """A strategy's output: the augmented training set plus bookkeeping."""

    train: LabeledDataset
    points_added: int
    detail: str = ""


_StrategyFn = Callable[[AugmentationContext], AugmentationResult]
STRATEGIES: dict[str, _StrategyFn] = {}


def strategy(name: str):
    """Register a Table-1 augmentation strategy under ``name``."""

    def decorator(fn: _StrategyFn) -> _StrategyFn:
        if name in STRATEGIES:
            raise ValidationError(f"duplicate strategy name {name!r}")
        STRATEGIES[name] = fn
        return fn

    return decorator


# --------------------------------------------------------------------------
# The nine Table-1 rows.
# --------------------------------------------------------------------------


@strategy("no_feedback")
def _no_feedback(ctx: AugmentationContext) -> AugmentationResult:
    """Baseline: the raw training data."""
    return AugmentationResult(train=ctx.train, points_added=0)


def _analyze_with_fallback(ctx: AugmentationContext, committee) -> "FeedbackReport":
    """Analyze, relaxing a scaled-up threshold if it flags nothing.

    The paper's budget guidance raises the threshold for small budgets; if
    a particular committee agrees so well that the scaled threshold flags
    no region, fall back to the plain median heuristic rather than failing
    the whole experiment repeat.
    """
    report = ctx.feedback.analyze(committee, ctx.train.X, ctx.train.domains)
    if not report.region and ctx.feedback.threshold is None and ctx.feedback.threshold_scale != 1.0:
        relaxed = AleFeedback(
            grid_size=ctx.feedback.grid_size,
            grid_strategy=ctx.feedback.grid_strategy,
            class_aggregation=ctx.feedback.class_aggregation,
            interpreter=ctx.feedback.interpreter,
        )
        report = relaxed.analyze(committee, ctx.train.X, ctx.train.domains)
    return report


@strategy("within_ale")
def _within_ale(ctx: AugmentationContext) -> AugmentationResult:
    """ALE-variance feedback over one AutoML ensemble; oracle labels."""
    committee = within_ale_committee(ctx.initial_automl)
    report = _analyze_with_fallback(ctx, committee)
    X_new = report.suggest(ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(
        train=ctx.train.extended(X_new, y_new),
        points_added=ctx.n_feedback,
        detail=f"T={report.threshold:.4g}, {len(report.region)} region(s)",
    )


@strategy("cross_ale")
def _cross_ale(ctx: AugmentationContext) -> AugmentationResult:
    """ALE-variance feedback across independent AutoML runs."""
    committee = cross_ale_committee(ctx.fit_cross_runs())
    report = _analyze_with_fallback(ctx, committee)
    X_new = report.suggest(ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(
        train=ctx.train.extended(X_new, y_new),
        points_added=ctx.n_feedback,
        detail=f"T={report.threshold:.4g}, {len(report.region)} region(s), {ctx.cross_runs} runs",
    )


@strategy("uniform")
def _uniform(ctx: AugmentationContext) -> AugmentationResult:
    """Uniformly sampled extra points (placement-agnostic control)."""
    X_new = sample_uniform(ctx.train.domains, ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(train=ctx.train.extended(X_new, y_new), points_added=ctx.n_feedback)


@strategy("confidence")
def _confidence(ctx: AugmentationContext) -> AugmentationResult:
    """Least-confidence active learning from the fixed candidate pool."""
    picks = select_least_confident(ctx.initial_automl, ctx.pool.X, ctx.n_feedback)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
    )


@strategy("qbc")
def _qbc(ctx: AugmentationContext) -> AugmentationResult:
    """Vote-entropy QBC over the AutoML ensemble, from the pool."""
    committee = within_ale_committee(ctx.initial_automl)
    picks = select_by_committee(committee, ctx.pool.X, ctx.n_feedback)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
    )


@strategy("upsampling")
def _upsampling(ctx: AugmentationContext) -> AugmentationResult:
    """Random oversampling to balance labels (no new information)."""
    X_up, y_up = random_oversample(ctx.train.X, ctx.train.y, random_state=ctx.rng)
    added = X_up.shape[0] - ctx.train.n_samples
    balanced = LabeledDataset(
        X=X_up,
        y=y_up,
        feature_names=list(ctx.train.feature_names),
        domains=list(ctx.train.domains),
        description=ctx.train.description,
    )
    return AugmentationResult(train=balanced, points_added=added)


@strategy("within_ale_pool")
def _within_ale_pool(ctx: AugmentationContext) -> AugmentationResult:
    """Within-ALE restricted to the candidate pool (no oracle)."""
    committee = within_ale_committee(ctx.initial_automl)
    report = _analyze_with_fallback(ctx, committee)
    picks = report.filter_pool(ctx.pool.X, max_points=ctx.n_feedback, random_state=ctx.rng)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
        detail=f"{len(picks)} of {ctx.pool.n_samples} pool points fell in the region",
    )


@strategy("cross_ale_pool")
def _cross_ale_pool(ctx: AugmentationContext) -> AugmentationResult:
    """Cross-ALE restricted to the candidate pool (no oracle)."""
    committee = cross_ale_committee(ctx.fit_cross_runs())
    report = _analyze_with_fallback(ctx, committee)
    picks = report.filter_pool(ctx.pool.X, max_points=ctx.n_feedback, random_state=ctx.rng)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
        detail=f"{len(picks)} of {ctx.pool.n_samples} pool points fell in the region",
    )


# --------------------------------------------------------------------------
# Evaluation plumbing.
# --------------------------------------------------------------------------


def evaluate_on_test_sets(model, test_sets: Sequence[LabeledDataset]) -> list[float]:
    """Balanced accuracy of ``model`` on each test set."""
    return [balanced_accuracy(t.y, model.predict(t.X)) for t in test_sets]


def run_strategy(
    name: str,
    ctx: AugmentationContext,
    test_sets: Sequence[LabeledDataset],
    *,
    random_state: RandomState = None,
) -> tuple[list[float], AugmentationResult]:
    """Execute one strategy end-to-end: augment, refit AutoML, score."""
    try:
        fn = STRATEGIES[name]
    except KeyError:
        raise ValidationError(f"unknown strategy {name!r}; have {sorted(STRATEGIES)}") from None
    result = fn(ctx)
    rng = check_random_state(random_state)
    if result.points_added == 0 and name == "no_feedback":
        # The initial model already reflects the raw training data.
        model = ctx.initial_automl
    else:
        model = ctx.automl_factory(rng).fit(result.train.X, result.train.y)
    return evaluate_on_test_sets(model, test_sets), result
