"""Shared machinery for the evaluation experiments.

Each Table-1 row is a *data-augmentation strategy*: it takes the initial
training set (plus the fitted initial AutoML, the candidate pool, and a
labeling oracle) and returns the augmented training set.  The harness then
fits a fresh AutoML on the augmented data and scores it on the shared test
sets, so every strategy is compared under identical conditions — the
paper's protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..active.confidence import select_least_confident
from ..active.qbc import select_by_committee
from ..active.uniform import sample_uniform
from ..active.upsampling import random_oversample
from ..automl.automl import AutoMLClassifier
from ..core.feedback import AleFeedback, cross_ale_committee, within_ale_committee
from ..datasets.scream import LabeledDataset
from ..exceptions import ValidationError
from ..ml.metrics import balanced_accuracy
from ..rng import RandomState, check_random_state, spawn_seeds
from ..runtime import Task, TaskRuntime, default_runtime

__all__ = [
    "AugmentationContext",
    "AugmentationResult",
    "STRATEGIES",
    "ORACLE_STRATEGIES",
    "strategy",
    "evaluate_on_test_sets",
    "run_strategy",
]


@dataclass
class AugmentationContext:
    """Everything a Table-1 strategy may use to build its augmented data.

    ``runtime`` is the :class:`~repro.runtime.TaskRuntime` every AutoML
    fit is submitted through; ``None`` means the implicit serial,
    uncached runtime.  With a :class:`~repro.runtime.ProcessExecutor`
    behind it the Cross-ALE committee fits run in parallel, and with a
    cache attached identical fits are answered from disk — bitwise the
    same results either way, because every fit's randomness is a seed
    drawn *before* submission.
    """

    train: LabeledDataset
    pool: LabeledDataset
    oracle: Callable[[np.ndarray], np.ndarray] | None
    initial_automl: AutoMLClassifier
    automl_factory: Callable[[np.random.Generator], AutoMLClassifier]
    n_feedback: int
    feedback: AleFeedback
    cross_runs: int
    rng: np.random.Generator
    runtime: TaskRuntime | None = None

    def label(self, X_new: np.ndarray) -> np.ndarray:
        if self.oracle is None:
            raise ValidationError(
                "this strategy needs to label new points but no oracle is available "
                "(pool-only experiments must use pool-based strategies)"
            )
        return self.oracle(X_new)

    def submit_fits(self, datasets: Sequence[tuple[np.ndarray, np.ndarray]], seeds: Sequence[int], label: str) -> list:
        """Run ``automl.fit`` tasks for ``(X, y)`` pairs through the runtime.

        The seeds must already be drawn (so submission order cannot touch
        any shared stream); each task's generator is rebuilt from its own
        seed path wherever the task lands.
        """
        runtime = self.runtime if self.runtime is not None else default_runtime()
        tasks = [
            Task(
                fn_name="automl.fit",
                payload={"factory": self.automl_factory, "X": X, "y": y},
                seed_path=(seed,),
                label=f"{label}[{index}]",
            )
            for index, ((X, y), seed) in enumerate(zip(datasets, seeds))
        ]
        return runtime.run(tasks)

    def fit_cross_runs(self) -> list[AutoMLClassifier]:
        """The extra AutoML runs Cross-ALE needs (initial run reused).

        Seeds are drawn from ``self.rng`` up front — the identical stream
        consumption :func:`repro.rng.spawn` would perform — then the fits
        themselves go through the runtime, serial or parallel alike.
        """
        seeds = spawn_seeds(self.rng, self.cross_runs - 1)
        extra = self.submit_fits(
            [(self.train.X, self.train.y)] * len(seeds), seeds, label="cross-run"
        )
        return [self.initial_automl, *extra]


@dataclass
class AugmentationResult:
    """A strategy's output: the augmented training set plus bookkeeping."""

    train: LabeledDataset
    points_added: int
    detail: str = ""


_StrategyFn = Callable[[AugmentationContext], AugmentationResult]
STRATEGIES: dict[str, _StrategyFn] = {}

#: Strategies that call ``ctx.label`` and therefore need a labeling oracle.
#: Experiments without one (the firewall data) reject these up front — a
#: clear :class:`ValidationError` instead of a failed grid cell.
ORACLE_STRATEGIES: set[str] = set()


def strategy(name: str, *, needs_oracle: bool = False):
    """Register a Table-1 augmentation strategy under ``name``.

    ``needs_oracle`` marks strategies that label new points via
    ``ctx.label`` — pool-only experiments refuse them at validation time.
    """

    def decorator(fn: _StrategyFn) -> _StrategyFn:
        if name in STRATEGIES:
            raise ValidationError(f"duplicate strategy name {name!r}")
        STRATEGIES[name] = fn
        if needs_oracle:
            ORACLE_STRATEGIES.add(name)
        return fn

    return decorator


# --------------------------------------------------------------------------
# The nine Table-1 rows.
# --------------------------------------------------------------------------


@strategy("no_feedback")
def _no_feedback(ctx: AugmentationContext) -> AugmentationResult:
    """Baseline: the raw training data."""
    return AugmentationResult(train=ctx.train, points_added=0)


def _analyze_with_fallback(ctx: AugmentationContext, committee) -> "FeedbackReport":
    """Analyze, relaxing a scaled-up threshold if it flags nothing.

    The paper's budget guidance raises the threshold for small budgets; if
    a particular committee agrees so well that the scaled threshold flags
    no region, fall back to the plain median heuristic rather than failing
    the whole experiment repeat.
    """
    report = ctx.feedback.analyze(committee, ctx.train.X, ctx.train.domains)
    if not report.region and ctx.feedback.threshold is None and ctx.feedback.threshold_scale != 1.0:
        relaxed = AleFeedback(
            grid_size=ctx.feedback.grid_size,
            grid_strategy=ctx.feedback.grid_strategy,
            class_aggregation=ctx.feedback.class_aggregation,
            interpreter=ctx.feedback.interpreter,
            task_mapper=ctx.feedback.task_mapper,
        )
        report = relaxed.analyze(committee, ctx.train.X, ctx.train.domains)
    return report


@strategy("within_ale", needs_oracle=True)
def _within_ale(ctx: AugmentationContext) -> AugmentationResult:
    """ALE-variance feedback over one AutoML ensemble; oracle labels."""
    committee = within_ale_committee(ctx.initial_automl)
    report = _analyze_with_fallback(ctx, committee)
    X_new = report.suggest(ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(
        train=ctx.train.extended(X_new, y_new),
        points_added=ctx.n_feedback,
        detail=f"T={report.threshold:.4g}, {len(report.region)} region(s)",
    )


@strategy("cross_ale", needs_oracle=True)
def _cross_ale(ctx: AugmentationContext) -> AugmentationResult:
    """ALE-variance feedback across independent AutoML runs."""
    committee = cross_ale_committee(ctx.fit_cross_runs())
    report = _analyze_with_fallback(ctx, committee)
    X_new = report.suggest(ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(
        train=ctx.train.extended(X_new, y_new),
        points_added=ctx.n_feedback,
        detail=f"T={report.threshold:.4g}, {len(report.region)} region(s), {ctx.cross_runs} runs",
    )


@strategy("uniform", needs_oracle=True)
def _uniform(ctx: AugmentationContext) -> AugmentationResult:
    """Uniformly sampled extra points (placement-agnostic control)."""
    X_new = sample_uniform(ctx.train.domains, ctx.n_feedback, random_state=ctx.rng)
    y_new = ctx.label(X_new)
    return AugmentationResult(train=ctx.train.extended(X_new, y_new), points_added=ctx.n_feedback)


@strategy("confidence")
def _confidence(ctx: AugmentationContext) -> AugmentationResult:
    """Least-confidence active learning from the fixed candidate pool."""
    picks = select_least_confident(ctx.initial_automl, ctx.pool.X, ctx.n_feedback)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
    )


@strategy("qbc")
def _qbc(ctx: AugmentationContext) -> AugmentationResult:
    """Vote-entropy QBC over the AutoML ensemble, from the pool."""
    committee = within_ale_committee(ctx.initial_automl)
    picks = select_by_committee(committee, ctx.pool.X, ctx.n_feedback)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
    )


@strategy("upsampling")
def _upsampling(ctx: AugmentationContext) -> AugmentationResult:
    """Random oversampling to balance labels (no new information)."""
    X_up, y_up = random_oversample(ctx.train.X, ctx.train.y, random_state=ctx.rng)
    added = X_up.shape[0] - ctx.train.n_samples
    balanced = LabeledDataset(
        X=X_up,
        y=y_up,
        feature_names=list(ctx.train.feature_names),
        domains=list(ctx.train.domains),
        description=ctx.train.description,
    )
    return AugmentationResult(train=balanced, points_added=added)


@strategy("within_ale_pool")
def _within_ale_pool(ctx: AugmentationContext) -> AugmentationResult:
    """Within-ALE restricted to the candidate pool (no oracle)."""
    committee = within_ale_committee(ctx.initial_automl)
    report = _analyze_with_fallback(ctx, committee)
    picks = report.filter_pool(ctx.pool.X, max_points=ctx.n_feedback, random_state=ctx.rng)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
        detail=f"{len(picks)} of {ctx.pool.n_samples} pool points fell in the region",
    )


@strategy("cross_ale_pool")
def _cross_ale_pool(ctx: AugmentationContext) -> AugmentationResult:
    """Cross-ALE restricted to the candidate pool (no oracle)."""
    committee = cross_ale_committee(ctx.fit_cross_runs())
    report = _analyze_with_fallback(ctx, committee)
    picks = report.filter_pool(ctx.pool.X, max_points=ctx.n_feedback, random_state=ctx.rng)
    return AugmentationResult(
        train=ctx.train.extended(ctx.pool.X[picks], ctx.pool.y[picks]),
        points_added=len(picks),
        detail=f"{len(picks)} of {ctx.pool.n_samples} pool points fell in the region",
    )


# --------------------------------------------------------------------------
# Evaluation plumbing.
# --------------------------------------------------------------------------


def evaluate_on_test_sets(model, test_sets: Sequence[LabeledDataset]) -> list[float]:
    """Balanced accuracy of ``model`` on each test set."""
    return [balanced_accuracy(t.y, model.predict(t.X)) for t in test_sets]


def _training_set_unchanged(result: AugmentationResult, ctx: AugmentationContext) -> bool:
    """True when the strategy left the training data exactly as it was.

    Pool strategies legitimately return ``points_added == 0`` when the
    feedback region captures no pool point; refitting on an identical
    training set would only burn an AutoML run to reproduce (a reseeded
    twin of) ``ctx.initial_automl``.  Content is compared, not identity:
    ``extended`` with zero rows and a no-op oversample both build fresh
    objects around the same data.
    """
    if result.points_added != 0:
        return False
    if result.train is ctx.train:
        return True
    return (
        result.train.n_samples == ctx.train.n_samples
        and np.array_equal(result.train.X, ctx.train.X)
        and np.array_equal(result.train.y, ctx.train.y)
    )


def run_strategy(
    name: str,
    ctx: AugmentationContext,
    test_sets: Sequence[LabeledDataset],
    *,
    random_state: RandomState = None,
) -> tuple[list[float], AugmentationResult]:
    """Execute one strategy end-to-end: augment, refit AutoML, score.

    The refit is an ``automl.fit`` task on the context's runtime, seeded
    by one :func:`~repro.rng.spawn_seeds` draw from ``random_state`` — so
    a parallel or cached run scores identically to a serial one.  When
    the strategy did not change the training set at all, the refit is
    skipped and ``ctx.initial_automl`` (already a model of exactly that
    data) is scored instead.
    """
    try:
        fn = STRATEGIES[name]
    except KeyError:
        raise ValidationError(f"unknown strategy {name!r}; have {sorted(STRATEGIES)}") from None
    result = fn(ctx)
    if _training_set_unchanged(result, ctx):
        model = ctx.initial_automl
    else:
        rng = check_random_state(random_state)
        [seed] = spawn_seeds(rng, 1)
        [model] = ctx.submit_fits([(result.train.X, result.train.y)], [seed], label=f"refit-{name}")
    return evaluate_on_test_sets(model, test_sets), result
