"""§4.2 reproduction: the firewall ("UCL") dataset results.

Protocol (paper §4, Datasets): 40 % train, 20 % test split into 20 test
sets, 40 % candidate pool; the whole split repeated 5 times.  There is no
labeling oracle here — every strategy, including the ALE ones, can only
draw from the pool (i.e. the ALE rows are the pool variants).

Reported shape from the paper: ALE feedback improves over the raw training
data with statistical significance (p ≈ 0.02 / 0.04 for Within/Cross-ALE);
the active-learning baselines land within 1–2 % of ALE without
significance either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..automl.spec import AutoMLSpec
from ..core.feedback import AleFeedback
from ..datasets.firewall import generate_firewall_dataset
from ..datasets.scream import LabeledDataset
from ..datasets.splits import split_train_test_pool
from ..exceptions import ValidationError
from ..ml.metrics import accuracy
from ..rng import check_random_state, spawn
from ..runtime import TaskRuntime
from ..stats.significance import AlgorithmScores, SignificanceTable
from .records import ExperimentRecord, scores_to_csv
from .runner import AugmentationContext, STRATEGIES, run_strategy

__all__ = ["UCLConfig", "PAPER_SCALE_UCL", "UCL_ALGORITHMS", "run_ucl"]

# On the firewall dataset the ALE strategies are necessarily pool-bound.
UCL_ALGORITHMS = [
    "no_feedback",
    "within_ale_pool",
    "cross_ale_pool",
    "confidence",
    "qbc",
]


@dataclass(frozen=True)
class UCLConfig:
    """Sizing/budget knobs for the §4.2 experiment."""

    n_samples: int = 2500
    n_feedback: int = 120
    n_test_sets: int = 20
    n_resplits: int = 3
    cross_runs: int = 3
    automl_iterations: int = 12
    ensemble_size: int = 8
    min_distinct_members: int = 4
    grid_size: int = 24
    threshold: float | None = None
    label_noise: float = 0.02
    seed: int = 20211111

    def validate(self) -> None:
        if self.n_samples < 100:
            raise ValidationError(f"n_samples too small: {self.n_samples}")
        if self.n_resplits < 1:
            raise ValidationError(f"n_resplits must be >= 1, got {self.n_resplits}")


PAPER_SCALE_UCL = UCLConfig(
    n_samples=65532,
    n_feedback=280,
    n_resplits=5,
    cross_runs=10,
    automl_iterations=120,
    ensemble_size=16,
)

_DATASET_CACHE: dict[tuple, LabeledDataset] = {}


def _base_dataset(config: UCLConfig) -> LabeledDataset:
    key = (config.n_samples, config.label_noise, config.seed)
    if key not in _DATASET_CACHE:
        _DATASET_CACHE[key] = generate_firewall_dataset(
            config.n_samples, label_noise=config.label_noise, random_state=config.seed
        )
    return _DATASET_CACHE[key]


def run_ucl(
    config: UCLConfig = UCLConfig(),
    *,
    algorithms: list[str] | None = None,
    progress=None,
    runtime: TaskRuntime | None = None,
) -> tuple[SignificanceTable, ExperimentRecord]:
    """Run the firewall experiment across re-splits; returns the table.

    ``runtime`` routes AutoML fits and ALE profiles through a
    :class:`~repro.runtime.TaskRuntime`; ``None`` means serial, uncached.
    """
    config.validate()
    algorithms = list(algorithms) if algorithms is not None else list(UCL_ALGORITHMS)
    unknown = set(algorithms) - set(STRATEGIES)
    if unknown:
        raise ValidationError(f"unknown algorithms: {sorted(unknown)}")
    say = progress or (lambda message: None)

    dataset = _base_dataset(config)
    master_rng = check_random_state(config.seed + 2)
    collected: dict[str, list[float]] = {name: [] for name in algorithms}

    for resplit, resplit_rng in enumerate(spawn(master_rng, config.n_resplits)):
        say(f"re-split {resplit + 1}/{config.n_resplits}")
        bundle = split_train_test_pool(
            dataset,
            train_fraction=0.4,
            test_fraction=0.2,
            n_test_sets=config.n_test_sets,
            random_state=resplit_rng,
        )

        # Plain accuracy inside AutoML (the AutoSklearn default),
        # balanced accuracy for evaluation — the paper's combination.
        # A spec, not a closure, so fits can cross the process boundary.
        automl_factory = AutoMLSpec(
            n_iterations=config.automl_iterations,
            ensemble_size=config.ensemble_size,
            min_distinct_members=config.min_distinct_members,
            scorer=accuracy,
        )

        initial = automl_factory(resplit_rng).fit(bundle.train.X, bundle.train.y)
        ctx = AugmentationContext(
            train=bundle.train,
            pool=bundle.pool,
            oracle=None,  # no oracle: the firewall logs are what they are
            initial_automl=initial,
            automl_factory=automl_factory,
            n_feedback=config.n_feedback,
            feedback=AleFeedback(
                threshold=config.threshold,
                grid_size=config.grid_size,
                task_mapper=runtime.named_map if runtime is not None else None,
            ),
            cross_runs=config.cross_runs,
            rng=resplit_rng,
            runtime=runtime,
        )
        for name in algorithms:
            scores, result = run_strategy(name, ctx, bundle.test_sets, random_state=resplit_rng)
            collected[name].extend(scores)
            say(
                f"  {name}: mean bacc {float(np.mean(scores)):.3f} "
                f"(+{result.points_added} pts{'; ' + result.detail if result.detail else ''})"
            )

    table = SignificanceTable([AlgorithmScores(name, np.asarray(collected[name])) for name in algorithms])
    record = ExperimentRecord(
        experiment_id="ucl_firewall",
        metadata={
            "config": {k: getattr(config, k) for k in UCLConfig.__dataclass_fields__},
            "paper_reference": "HotNets'21 §4.2",
        },
    )
    record.tables["ucl"] = table.format_table(["no_feedback"])
    record.series["scores"] = scores_to_csv(table)
    record.add_scores(table)
    return table, record
