"""§4.2 reproduction: the firewall ("UCL") dataset results.

Protocol (paper §4, Datasets): 40 % train, 20 % test split into 20 test
sets, 40 % candidate pool; the whole split repeated 5 times.  There is no
labeling oracle here — every strategy, including the ALE ones, can only
draw from the pool (i.e. the ALE rows are the pool variants).

Reported shape from the paper: ALE feedback improves over the raw training
data with statistical significance (p ≈ 0.02 / 0.04 for Within/Cross-ALE);
the active-learning baselines land within 1–2 % of ALE without
significance either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..automl.spec import AutoMLSpec
from ..datasets.splits import split_train_test_pool
from ..exceptions import ValidationError
from ..ml.metrics import accuracy
from ..rng import check_random_state, generator_from_path, spawn_seeds
from ..runtime import TaskRuntime, default_runtime
from ..stats.significance import AlgorithmScores, SignificanceTable
from .grid import RepeatPlan, fetch_datasets, run_experiment_grid
from .records import ExperimentRecord, scores_to_csv
from .runner import ORACLE_STRATEGIES, STRATEGIES
from .tasks import firewall_dataset_task

__all__ = ["UCLConfig", "PAPER_SCALE_UCL", "UCL_ALGORITHMS", "run_ucl"]

# On the firewall dataset the ALE strategies are necessarily pool-bound.
UCL_ALGORITHMS = [
    "no_feedback",
    "within_ale_pool",
    "cross_ale_pool",
    "confidence",
    "qbc",
]


@dataclass(frozen=True)
class UCLConfig:
    """Sizing/budget knobs for the §4.2 experiment."""

    n_samples: int = 2500
    n_feedback: int = 120
    n_test_sets: int = 20
    n_resplits: int = 3
    cross_runs: int = 3
    automl_iterations: int = 12
    ensemble_size: int = 8
    min_distinct_members: int = 4
    grid_size: int = 24
    threshold: float | None = None
    label_noise: float = 0.02
    seed: int = 20211111

    def validate(self) -> None:
        if self.n_samples < 100:
            raise ValidationError(f"n_samples too small: {self.n_samples}")
        if self.n_resplits < 1:
            raise ValidationError(f"n_resplits must be >= 1, got {self.n_resplits}")


PAPER_SCALE_UCL = UCLConfig(
    n_samples=65532,
    n_feedback=280,
    n_resplits=5,
    cross_runs=10,
    automl_iterations=120,
    ensemble_size=16,
)

def run_ucl(
    config: UCLConfig = UCLConfig(),
    *,
    algorithms: list[str] | None = None,
    progress=None,
    runtime: TaskRuntime | None = None,
) -> tuple[SignificanceTable, ExperimentRecord]:
    """Run the firewall experiment across re-splits; returns the table.

    ``runtime`` is the :class:`~repro.runtime.TaskRuntime` the sharded
    grid executes on — dataset synthesis, per-re-split initial fits, and
    every (re-split, strategy) cell are independent tasks (see
    :mod:`repro.experiments.grid`); ``None`` means serial, uncached.
    Failed cells degrade gracefully and land in
    ``record.metadata["grid"]``.
    """
    config.validate()
    algorithms = list(algorithms) if algorithms is not None else list(UCL_ALGORITHMS)
    unknown = set(algorithms) - set(STRATEGIES)
    if unknown:
        raise ValidationError(f"unknown algorithms: {sorted(unknown)}")
    # No oracle exists here: the firewall logs are what they are.  Reject
    # oracle-needing strategies up front — a configuration error, not a
    # degradable cell failure.
    need_oracle = sorted(set(algorithms) & ORACLE_STRATEGIES)
    if need_oracle:
        raise ValidationError(
            f"strategies {need_oracle} need a labeling oracle, but the firewall "
            "experiment has none (pool-only experiments must use pool-based strategies)"
        )
    say = progress or (lambda message: None)
    rt = runtime if runtime is not None else default_runtime()

    say("generating dataset")
    dataset_task = firewall_dataset_task(
        config.n_samples, config.seed, label_noise=config.label_noise
    )
    [dataset] = fetch_datasets(rt, [dataset_task])

    # Plain accuracy inside AutoML (the AutoSklearn default), balanced
    # accuracy for evaluation — the paper's combination.  A spec, not a
    # closure, so fits can cross the process boundary.
    automl_factory = AutoMLSpec(
        n_iterations=config.automl_iterations,
        ensemble_size=config.ensemble_size,
        min_distinct_members=config.min_distinct_members,
        scorer=accuracy,
    )

    master_rng = check_random_state(config.seed + 2)
    plans: list[RepeatPlan] = []
    for resplit, resplit_seed in enumerate(spawn_seeds(master_rng, config.n_resplits)):
        resplit_rng = generator_from_path((resplit_seed,))
        bundle = split_train_test_pool(
            dataset,
            train_fraction=0.4,
            test_fraction=0.2,
            n_test_sets=config.n_test_sets,
            random_state=resplit_rng,
        )
        [initial_seed] = spawn_seeds(resplit_rng, 1)
        plans.append(
            RepeatPlan(resplit, resplit_seed, bundle.train, bundle.pool, bundle.test_sets, initial_seed)
        )

    grid = run_experiment_grid(
        rt,
        plans,
        algorithms,
        factory=automl_factory,
        n_feedback=config.n_feedback,
        cross_runs=config.cross_runs,
        feedback={"threshold": config.threshold, "grid_size": config.grid_size},
        oracle=None,
        progress=say,
    )

    table = SignificanceTable(
        [AlgorithmScores(name, np.asarray(scores)) for name, scores in grid.collected.items()]
    )
    record = ExperimentRecord(
        experiment_id="ucl_firewall",
        metadata={
            "config": {k: getattr(config, k) for k in UCLConfig.__dataclass_fields__},
            "paper_reference": "HotNets'21 §4.2",
            "grid": grid.metadata(),
        },
    )
    record.tables["ucl"] = table.format_table(["no_feedback"])
    record.series["scores"] = scores_to_csv(table)
    record.add_scores(table)
    return table, record
