"""The paper's published numbers, and shape comparison against a run.

``PAPER_TABLE1`` encodes Table 1 of the paper verbatim;
:func:`compare_to_paper` checks a measured :class:`SignificanceTable`
against the paper's *qualitative* claims (directions and orderings, not
absolute values) and reports which held.  EXPERIMENTS.md is the prose
version of this module's output.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError
from ..stats.significance import SignificanceTable

__all__ = ["PaperRow", "PAPER_TABLE1", "ShapeClaim", "TABLE1_CLAIMS", "compare_to_paper"]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 (balanced accuracy, percent)."""

    algorithm: str
    mean: float
    std: float
    p_vs_no_feedback: float | None


PAPER_TABLE1: dict[str, PaperRow] = {
    row.algorithm: row
    for row in (
        PaperRow("no_feedback", 68.7, 4.05, None),
        PaperRow("within_ale", 71.2, 4.3, 0.0009),
        PaperRow("cross_ale", 75.0, 4.4, 3.33e-6),
        PaperRow("uniform", 64.1, 4.1, 0.99),
        PaperRow("confidence", 67.1, 5.5, 0.99),
        PaperRow("upsampling", 76.7, 2.7, 2.38e-7),
        PaperRow("qbc", 68.9, 5.1, 0.093),
        PaperRow("within_ale_pool", 67.4, 4.9, 0.99),
        PaperRow("cross_ale_pool", 69.18, 3.9, 0.123),
    )
}


@dataclass(frozen=True)
class ShapeClaim:
    """One qualitative claim of the paper, testable on a measured table.

    ``kind``:
      - ``'better'``  — mean(a) > mean(b);
      - ``'significant'`` — P(b, a) < alpha (a significantly beats b);
      - ``'within'``  — |mean(a) − mean(b)| <= margin.
    """

    claim_id: str
    description: str
    kind: str
    a: str
    b: str
    margin: float = 0.0
    alpha: float = 0.05

    def holds(self, table: SignificanceTable) -> bool:
        names = set(table.names())
        if self.a not in names or self.b not in names:
            raise ValidationError(f"claim {self.claim_id}: table lacks {self.a!r} or {self.b!r}")
        mean_a = table.scores(self.a).mean
        mean_b = table.scores(self.b).mean
        if self.kind == "better":
            return mean_a > mean_b
        if self.kind == "significant":
            return table.p_value(self.b, self.a) < self.alpha
        if self.kind == "within":
            return abs(mean_a - mean_b) <= self.margin
        raise ValidationError(f"unknown claim kind {self.kind!r}")


TABLE1_CLAIMS: list[ShapeClaim] = [
    ShapeClaim(
        "ale_beats_baseline_within",
        "Within-ALE significantly beats the raw training data",
        "significant",
        "within_ale",
        "no_feedback",
    ),
    ShapeClaim(
        "ale_beats_baseline_cross",
        "Cross-ALE significantly beats the raw training data",
        "significant",
        "cross_ale",
        "no_feedback",
    ),
    ShapeClaim(
        "ale_beats_uniform",
        "ALE-placed data beats uniformly placed data",
        "better",
        "within_ale",
        "uniform",
    ),
    ShapeClaim(
        "upsampling_beats_baseline",
        "Upsampling (fixing imbalance) beats the raw training data",
        "significant",
        "upsampling",
        "no_feedback",
    ),
    ShapeClaim(
        "cross_ale_near_upsampling",
        "Cross-ALE lands within ~2 points of upsampling (paper: 75.0 vs 76.7)",
        "within",
        "cross_ale",
        "upsampling",
        margin=0.02,
    ),
    ShapeClaim(
        "pool_no_better_than_free",
        "Pool restriction does not beat whole-subspace sampling",
        "within",
        "within_ale_pool",
        "within_ale",
        margin=0.05,
    ),
    ShapeClaim(
        "ale_at_least_qbc_level",
        "Unrestricted ALE beats QBC (paper); checked as a soft ordering",
        "better",
        "within_ale",
        "qbc",
    ),
    ShapeClaim(
        "ale_at_least_confidence_level",
        "Unrestricted ALE beats confidence sampling (paper); soft ordering",
        "better",
        "within_ale",
        "confidence",
    ),
]


def compare_to_paper(
    table: SignificanceTable,
    *,
    claims: list[ShapeClaim] | None = None,
) -> dict[str, bool]:
    """Evaluate each qualitative Table-1 claim on a measured table.

    Returns ``{claim_id: held}``; claims referring to algorithms absent
    from the table are skipped.
    """
    results: dict[str, bool] = {}
    names = set(table.names())
    for claim in claims if claims is not None else TABLE1_CLAIMS:
        if claim.a not in names or claim.b not in names:
            continue
        results[claim.claim_id] = claim.holds(table)
    return results


def format_comparison(table: SignificanceTable) -> str:
    """Human-readable verdict sheet for a measured Table 1 run."""
    lines = ["Shape comparison against the paper's Table 1:"]
    by_id = {claim.claim_id: claim for claim in TABLE1_CLAIMS}
    for claim_id, held in compare_to_paper(table).items():
        mark = "✓" if held else "✗"
        lines.append(f"  {mark} {by_id[claim_id].description}")
    return "\n".join(lines)
