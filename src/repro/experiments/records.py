"""Result records and serialization for the experiment harness."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from ..stats.significance import AlgorithmScores, SignificanceTable

__all__ = ["ExperimentRecord", "scores_to_csv", "save_record"]


@dataclass
class ExperimentRecord:
    """One experiment's reproducible output bundle.

    ``metadata`` carries the configuration that produced the numbers;
    ``tables`` maps artifact names (e.g. ``'table1'``) to rendered text;
    ``series`` maps figure names to CSV strings.
    """

    experiment_id: str
    metadata: dict = field(default_factory=dict)
    tables: dict = field(default_factory=dict)
    series: dict = field(default_factory=dict)
    scores: dict = field(default_factory=dict)  # algorithm -> list of floats

    def add_scores(self, table: SignificanceTable) -> None:
        for algorithm in table.algorithms:
            self.scores[algorithm.name] = algorithm.scores.tolist()

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "metadata": self.metadata,
                "tables": self.tables,
                "series": self.series,
                "scores": self.scores,
            },
            indent=2,
            default=_json_default,
        )


def _json_default(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value).__name__}")


def scores_to_csv(table: SignificanceTable) -> str:
    """Flat CSV of every (algorithm, test-set index, score) triple."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["algorithm", "index", "balanced_accuracy"])
    for algorithm in table.algorithms:
        for index, score in enumerate(algorithm.scores.tolist()):
            writer.writerow([algorithm.name, index, f"{score:.6f}"])
    return buffer.getvalue()


def save_record(record: ExperimentRecord, directory: str | Path) -> Path:
    """Write the record (JSON + any CSV series) under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{record.experiment_id}.json"
    path.write_text(record.to_json())
    for name, csv_text in record.series.items():
        (directory / f"{record.experiment_id}_{name}.csv").write_text(csv_text)
    return path
