"""Threshold sensitivity (paper §4, "Setting the threshold").

The paper's claim: lower thresholds yield larger feature subspaces (good
when the sampling budget is high — more area, less overfitting), higher
thresholds yield smaller, boundary-focused subspaces (good when the budget
is low).  This experiment quantifies that trade-off by sweeping ``T`` as a
multiple of the median heuristic and measuring the region the feedback
returns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.feedback import AleFeedback, FeedbackReport, median_threshold
from ..core.subspace import Box, SubspaceUnion
from ..exceptions import ValidationError
from .records import ExperimentRecord

__all__ = ["ThresholdSweepRow", "sweep_thresholds", "sweep_to_csv"]


@dataclass
class ThresholdSweepRow:
    """Region geometry at one threshold setting."""

    multiplier: float
    threshold: float
    n_regions: int
    n_flagged_features: int
    relative_volume: float
    pool_hits: int | None = None


def sweep_thresholds(
    committee,
    X,
    domains,
    *,
    multipliers=(0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    grid_size: int = 24,
    pool_X=None,
) -> list[ThresholdSweepRow]:
    """Measure the feedback region across threshold multipliers.

    The disagreement profiles are computed once; only the thresholding is
    re-applied, so the sweep is cheap.  ``pool_X`` optionally counts how
    many fixed-pool candidates each region would admit.
    """
    if not multipliers:
        raise ValidationError("need at least one multiplier")
    base_report = AleFeedback(grid_size=grid_size).analyze(committee, X, domains)
    base = median_threshold(base_report.profiles)
    rows = []
    for multiplier in multipliers:
        if multiplier <= 0:
            raise ValidationError(f"multipliers must be positive, got {multiplier}")
        threshold = multiplier * base
        region = SubspaceUnion(base_report.domains)
        flagged = 0
        for profile in base_report.profiles:
            intervals = profile.high_variance_intervals(threshold)
            if intervals:
                flagged += 1
            for interval in intervals:
                region.add(Box(base_report.domains, {profile.feature_index: interval}))
        rows.append(
            ThresholdSweepRow(
                multiplier=float(multiplier),
                threshold=float(threshold),
                n_regions=len(region),
                n_flagged_features=flagged,
                relative_volume=region.volume(),
                pool_hits=int(region.contains(pool_X).sum()) if pool_X is not None and region else (0 if pool_X is not None else None),
            )
        )
    return rows


def sweep_to_csv(rows: list[ThresholdSweepRow]) -> str:
    lines = ["multiplier,threshold,n_regions,n_flagged_features,relative_volume,pool_hits"]
    for row in rows:
        pool = "" if row.pool_hits is None else str(row.pool_hits)
        lines.append(
            f"{row.multiplier:g},{row.threshold:.6g},{row.n_regions},"
            f"{row.n_flagged_features},{row.relative_volume:.6g},{pool}"
        )
    return "\n".join(lines) + "\n"
