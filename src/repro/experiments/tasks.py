"""Experiment-layer task functions: the grid's plugin family.

The runtime layer sits *below* the experiments layer in the import DAG
(reprolint RL002), so these task functions cannot live in
:mod:`repro.runtime.tasks`.  They register under qualified
``"repro.experiments.tasks:<name>"`` names instead: a worker process that
has never imported this module resolves such a name by importing the
module part on demand (see :func:`repro.runtime.task.resolve_task`), after
which the registry lookup proceeds exactly as for a built-in.

Three families:

- ``scream_dataset`` / ``firewall_dataset`` — the emulator-labeled (and
  synthetic-log) dataset generation.  These are the netsim-heavy part of
  an experiment; as cacheable tasks, a warm rerun skips the network
  emulation entirely.
- ``grid_cell`` — one (repeat, strategy) cell of the Table-1/UCL grid:
  augment the training set, refit, score on the repeat's test sets.  The
  cell's AutoML fits run inline inside the cell (coarse-grained
  parallelism: the grid shards across cells, not within them).
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.feedback import AleFeedback
from ..datasets.firewall import generate_firewall_dataset
from ..datasets.scream import ScreamOracle, generate_scream_dataset
from ..exceptions import ValidationError
from ..rng import generator_from_path
from ..runtime.cache import Provenance
from ..runtime.task import Task, TaskContext, task

__all__ = [
    "SCREAM_DATASET_TASK",
    "FIREWALL_DATASET_TASK",
    "GRID_CELL_TASK",
    "scream_dataset",
    "firewall_dataset",
    "grid_cell",
    "scream_dataset_task",
    "firewall_dataset_task",
]

SCREAM_DATASET_TASK = "repro.experiments.tasks:scream_dataset"
FIREWALL_DATASET_TASK = "repro.experiments.tasks:firewall_dataset"
GRID_CELL_TASK = "repro.experiments.tasks:grid_cell"

def scream_dataset_task(
    n_samples: int,
    seed: int,
    *,
    engine: str = "fluid",
    biased: bool = False,
    label: str = "scream-dataset",
) -> Task:
    """The canonical Scream dataset-generation task.

    Every caller — table1, sweeps, ad-hoc runs — builds the task through
    here, so the payload dict and seed path (hence the content-addressed
    cache key) depend only on ``(n_samples, engine, biased, seed)``:
    experiments that need the same dataset share one artifact instead of
    regenerating it per-experiment, locally *and* across a remote store.
    The label is display-only and never enters the key.
    """
    return Task(
        fn_name=SCREAM_DATASET_TASK,
        payload={"n_samples": int(n_samples), "engine": str(engine), "biased": bool(biased)},
        seed_path=(int(seed),),
        label=label,
    )


def firewall_dataset_task(
    n_samples: int,
    seed: int,
    *,
    label_noise: float = 0.0,
    label: str = "firewall-dataset",
) -> Task:
    """The canonical firewall dataset-generation task (see above)."""
    return Task(
        fn_name=FIREWALL_DATASET_TASK,
        payload={"n_samples": int(n_samples), "label_noise": float(label_noise)},
        seed_path=(int(seed),),
        label=label,
    )


#: Spawn-key dimension for a cell's labeling oracle ("ORAC" in ASCII).
#: The oracle's emulator queries draw from their own branch of the cell's
#: seed path, so strategy code and oracle consume independent streams and
#: the cell stays a pure function of (payload, seed path).
_ORACLE_KEY = 0x4F524143


@task(SCREAM_DATASET_TASK)
def scream_dataset(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Generate the emulator-labeled Scream-vs-rest dataset.

    Payload: ``n_samples``, ``engine`` (``"fluid"``/``"packet"``) and
    ``biased`` (production-like scenario skew).  Labeling every row runs
    the network emulator, which dominates experiment start-up cost — this
    is the task family the artifact cache exists to absorb.
    """
    if ctx.rng is None:
        raise ValidationError("scream_dataset needs a seed path (scenario sampling is stochastic)")
    return generate_scream_dataset(
        int(payload["n_samples"]),
        engine=str(payload.get("engine", "fluid")),
        biased=bool(payload.get("biased", False)),
        random_state=ctx.rng,
    )


@task(FIREWALL_DATASET_TASK)
def firewall_dataset(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Generate the synthetic firewall-log dataset (§4.2).

    Payload: ``n_samples`` and ``label_noise``.
    """
    if ctx.rng is None:
        raise ValidationError("firewall_dataset needs a seed path (log synthesis is stochastic)")
    return generate_firewall_dataset(
        int(payload["n_samples"]),
        label_noise=float(payload.get("label_noise", 0.0)),
        random_state=ctx.rng,
    )


@task(GRID_CELL_TASK)
def grid_cell(payload: Mapping[str, Any], ctx: TaskContext) -> Any:
    """Run one (repeat, strategy) cell of an experiment grid.

    Payload: ``strategy`` (registered name), ``train``/``pool``
    (:class:`~repro.datasets.scream.LabeledDataset`), ``test_sets``,
    ``factory`` (:class:`~repro.automl.spec.AutoMLSpec`),
    ``initial_automl`` (the repeat's shared fitted model, usually wrapped
    in a :class:`~repro.runtime.cache.Provenance` so the cell's cache key
    hashes the fit's content address rather than model bytes),
    ``n_feedback``,
    ``cross_runs``, ``feedback`` (threshold/threshold_scale/grid_size
    mapping) and ``oracle`` (``None`` for pool-only experiments, else an
    ``{"engine": ...}`` spec — the oracle itself is rebuilt here from the
    cell's own seed path, never shipped as live state).

    Returns ``{"scores": [...], "points_added": int, "detail": str}`` —
    plain data, so the artifact cache can answer a warm rerun without
    touching AutoML or the emulator at all.
    """
    # Imported here, not at module top: runner pulls in the strategy
    # registry and the full active-learning stack, which dataset-only
    # workers never need.
    from .runner import AugmentationContext, run_strategy

    if ctx.rng is None:
        raise ValidationError("grid_cell needs a seed path (augmentation and refits are stochastic)")
    feedback_cfg = dict(payload["feedback"])
    feedback = AleFeedback(
        threshold=feedback_cfg.get("threshold"),
        threshold_scale=float(feedback_cfg.get("threshold_scale", 1.0)),
        grid_size=int(feedback_cfg.get("grid_size", 32)),
    )
    initial_automl = payload["initial_automl"]
    if isinstance(initial_automl, Provenance):
        initial_automl = initial_automl.value
    oracle_cfg = payload.get("oracle")
    oracle = None
    if oracle_cfg is not None:
        oracle_rng = generator_from_path((*ctx.seed_path, _ORACLE_KEY))
        oracle = ScreamOracle(engine=str(oracle_cfg.get("engine", "fluid")), random_state=oracle_rng).label
    cell_ctx = AugmentationContext(
        train=payload["train"],
        pool=payload["pool"],
        oracle=oracle,
        initial_automl=initial_automl,
        automl_factory=payload["factory"],
        n_feedback=int(payload["n_feedback"]),
        feedback=feedback,
        cross_runs=int(payload["cross_runs"]),
        rng=ctx.rng,
    )
    scores, result = run_strategy(payload["strategy"], cell_ctx, payload["test_sets"], random_state=ctx.rng)
    return {
        "scores": [float(score) for score in scores],
        "points_added": int(result.points_added),
        "detail": result.detail,
    }
