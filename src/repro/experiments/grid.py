"""Shard an experiment grid (repeats × strategies) through the runtime.

``run_table1`` and ``run_ucl`` are the same shape of computation: generate
a dataset, split it per repeat, fit one initial AutoML per repeat, then
run every (repeat, strategy) cell independently.  This module is that
shape, expressed as three task waves:

1. **datasets** — ``repro.experiments.tasks:*_dataset`` tasks (the
   netsim-heavy part; content-addressed, so a warm cache skips emulation);
2. **initial fits** — one ``automl.fit`` task per repeat;
3. **cells** — one ``repro.experiments.tasks:grid_cell`` task per
   (repeat, strategy) pair, each with its own seed path.

Seed-path layout: every repeat owns a root seed drawn from the
experiment's master stream; a cell's path is ``(repeat_seed, _CELL_KEY,
strategy_key(name))``.  ``strategy_key`` hashes the strategy *name*, so a
cell's stream depends only on its identity — running a subset of
algorithms, adding new strategies to the registry, or reordering
submission cannot move any cell's randomness.

Failure policy (the graceful-degradation contract the failure-injection
tests pin): a failed initial fit drops its whole repeat (every algorithm
loses that repeat's scores, keeping the paired score arrays aligned); a
failed cell drops its algorithm from the significance table; both are
recorded in the result's metadata instead of crashing the run.  Only when
*nothing* survives does the original :class:`TaskError` propagate.

Because a failed task is never cached, a degraded run leaves a *partial*
cache behind: every healthy cell's artifact is on disk, the failed cells'
are not.  Re-running the same grid against that cache (the CLI's
``--resume`` flag) therefore re-submits only the failed/missing cells and
answers everything else from the cache; ``GridResult`` counts the
cache-resumed units (``resumed_initial_fits`` / ``resumed_cells``) so the
record shows how much of the run was replayed versus recomputed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..datasets.scream import LabeledDataset
from ..runtime import Provenance, Task, TaskError, TaskRuntime, task_key
from .tasks import GRID_CELL_TASK

__all__ = [
    "RepeatPlan",
    "CellFailure",
    "GridResult",
    "strategy_key",
    "fetch_datasets",
    "clear_dataset_memo",
    "run_experiment_grid",
]

#: Spawn-key dimension separating grid-cell streams from everything else
#: derived from a repeat seed ("CELL" in ASCII).
_CELL_KEY = 0x43454C4C


def strategy_key(name: str) -> int:
    """Stable spawn-key entry for a strategy name.

    A 63-bit truncation of SHA-256 over the name: registration order and
    registry contents cannot shift it, so a strategy keeps the same random
    stream forever — the property the golden-master fixtures rely on.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class RepeatPlan:
    """One repeat's slice of the grid: its data splits and seeds."""

    repeat: int
    seed: int
    train: LabeledDataset
    pool: LabeledDataset
    test_sets: Sequence[LabeledDataset]
    initial_seed: int


@dataclass(frozen=True)
class CellFailure:
    """One degraded unit of the grid, for the experiment record."""

    repeat: int
    algorithm: str  # "*" when the whole repeat failed at the initial fit
    stage: str  # "initial_fit" | "cell"
    error: str

    def as_dict(self) -> dict[str, Any]:
        return {"repeat": self.repeat, "algorithm": self.algorithm, "stage": self.stage, "error": self.error}


@dataclass
class GridResult:
    """Collected grid scores plus the degradation bookkeeping."""

    collected: dict[str, list[float]]
    n_cells: int
    n_repeats: int
    failures: list[CellFailure] = field(default_factory=list)
    dropped_algorithms: list[str] = field(default_factory=list)
    failed_repeats: list[int] = field(default_factory=list)
    #: Units answered from the artifact cache instead of executing — the
    #: resume accounting: after a degraded-then-fixed rerun these say how
    #: much of the grid was replayed from disk.
    resumed_initial_fits: int = 0
    resumed_cells: int = 0
    #: Remote-store accounting when the runtime's cache is a
    #: ``RemoteCacheTier`` (``None`` otherwise): its ``remote_stats()``
    #: snapshot — remote hits, pushes, and whether the tier degraded to
    #: local-only mid-run.
    store: dict[str, Any] | None = None

    def metadata(self) -> dict[str, Any]:
        """The ``record.metadata["grid"]`` entry."""
        meta = {
            "sharding": "one runtime task per (repeat, strategy) cell",
            "n_repeats": self.n_repeats,
            "n_cells": self.n_cells,
            "failed_repeats": list(self.failed_repeats),
            "failed_cells": [f.as_dict() for f in self.failures],
            "dropped_algorithms": list(self.dropped_algorithms),
            "resumed_initial_fits": self.resumed_initial_fits,
            "resumed_cells": self.resumed_cells,
        }
        if self.store is not None:
            meta["store"] = dict(self.store)
        return meta


# In-process memo for generated datasets, keyed by task key.  Only
# consulted when the runtime has *no* artifact cache: it preserves the
# pre-shard behaviour of reusing an identical dataset across repeated
# in-process runs (tests, notebooks), while a cache-enabled runtime goes
# to the cache every time so its hit/store counters stay exact.
_DATASET_MEMO: dict[str, LabeledDataset] = {}


def fetch_datasets(runtime: TaskRuntime, tasks: Sequence[Task]) -> list[LabeledDataset]:
    """Wave 1: answer dataset-generation tasks, memoized when uncached.

    Dataset failures propagate — with no dataset there is nothing to
    degrade to.
    """
    use_memo = runtime.cache is None or runtime.cache_mode == "off"
    keys = [task_key(task) for task in tasks]
    values: list[Any] = [None] * len(tasks)
    missing = [
        index for index, key in enumerate(keys) if not (use_memo and key in _DATASET_MEMO)
    ]
    for index, key in enumerate(keys):
        if index not in missing:
            values[index] = _DATASET_MEMO[key]
    if missing:
        fetched = runtime.run([tasks[index] for index in missing])
        for index, value in zip(missing, fetched):
            values[index] = value
            if use_memo:
                _DATASET_MEMO[keys[index]] = value
    return values


def clear_dataset_memo() -> None:
    """Drop the in-process dataset memo.

    Benchmarks and isolation-sensitive tests call this between runs so an
    uncached regime pays its real dataset-generation cost instead of
    inheriting a neighbour's memoized copy.
    """
    _DATASET_MEMO.clear()


@dataclass(frozen=True)
class _Cell:
    repeat: int
    algorithm: str


def run_experiment_grid(
    runtime: TaskRuntime,
    plans: Sequence[RepeatPlan],
    algorithms: Sequence[str],
    *,
    factory: Any,
    n_feedback: int,
    cross_runs: int,
    feedback: Mapping[str, Any],
    oracle: Mapping[str, Any] | None,
    progress: Callable[[str], None] | None = None,
) -> GridResult:
    """Waves 2 and 3: per-repeat initial fits, then every grid cell.

    ``feedback`` is the plain-data ALE configuration each cell rebuilds
    (``threshold``/``threshold_scale``/``grid_size``); ``oracle`` is
    ``None`` for pool-only experiments or an ``{"engine": ...}`` spec.
    """
    say = progress or (lambda message: None)
    plans = list(plans)
    algorithms = list(algorithms)

    def cache_hits() -> int:
        return int(runtime.stats["cache_hits"])

    say(f"fitting {len(plans)} initial AutoML model(s)")
    hits_before_fits = cache_hits()
    initial_tasks = [
        Task(
            fn_name="automl.fit",
            payload={"factory": factory, "X": plan.train.X, "y": plan.train.y},
            seed_path=(plan.initial_seed,),
            label=f"initial[repeat {plan.repeat}]",
        )
        for plan in plans
    ]
    initials = runtime.run(initial_tasks, return_failures=True)
    resumed_initial_fits = cache_hits() - hits_before_fits

    failures: list[CellFailure] = []
    failed_repeats: list[int] = []
    first_error: TaskError | None = None
    live: list[tuple[RepeatPlan, Provenance]] = []
    for plan, fit_task, initial in zip(plans, initial_tasks, initials):
        if isinstance(initial, TaskError):
            first_error = first_error or initial
            failed_repeats.append(plan.repeat)
            failures.append(CellFailure(plan.repeat, "*", "initial_fit", str(initial)))
            say(f"  repeat {plan.repeat + 1}: initial fit FAILED ({initial}); dropping the repeat")
        else:
            # Tag the fitted model with its producing task's key: fitted
            # ensembles don't pickle canonically, so cell cache keys hash
            # this provenance, not the model bytes — a warm rerun therefore
            # addresses the same cell entries whether its initial model was
            # freshly fitted, pool-returned, or cache-loaded.
            live.append((plan, Provenance(task_key(fit_task), initial)))
    if not live:
        raise first_error  # every repeat lost its initial fit: nothing to degrade to

    cells: list[_Cell] = []
    cell_tasks: list[Task] = []
    for plan, initial in live:
        for name in algorithms:
            payload = {
                "strategy": name,
                "train": plan.train,
                "pool": plan.pool,
                "test_sets": list(plan.test_sets),
                "factory": factory,
                "initial_automl": initial,
                "n_feedback": n_feedback,
                "cross_runs": cross_runs,
                "feedback": dict(feedback),
                "oracle": dict(oracle) if oracle is not None else None,
            }
            cells.append(_Cell(plan.repeat, name))
            cell_tasks.append(
                Task(
                    fn_name=GRID_CELL_TASK,
                    payload=payload,
                    seed_path=(plan.seed, _CELL_KEY, strategy_key(name)),
                    label=f"cell[repeat {plan.repeat}, {name}]",
                )
            )
    say(f"running {len(cell_tasks)} grid cell(s): {len(live)} repeat(s) × {len(algorithms)} strategies")
    hits_before_cells = cache_hits()
    values = runtime.run(cell_tasks, return_failures=True)
    resumed_cells = cache_hits() - hits_before_cells
    if resumed_cells or resumed_initial_fits:
        say(f"  resumed from cache: {resumed_initial_fits} initial fit(s), {resumed_cells} cell(s)")

    collected: dict[str, list[float]] = {name: [] for name in algorithms}
    failed_algorithms: set[str] = set()
    for cell, value in zip(cells, values):
        if isinstance(value, TaskError):
            first_error = first_error or value
            failed_algorithms.add(cell.algorithm)
            failures.append(CellFailure(cell.repeat, cell.algorithm, "cell", str(value)))
            say(f"  repeat {cell.repeat + 1} {cell.algorithm}: FAILED ({value}); dropping the algorithm")
        else:
            collected[cell.algorithm].extend(value["scores"])
            detail = f"; {value['detail']}" if value["detail"] else ""
            say(
                f"  repeat {cell.repeat + 1} {cell.algorithm}: mean bacc "
                f"{float(np.mean(value['scores'])):.3f} (+{value['points_added']} pts{detail})"
            )

    kept = [name for name in algorithms if name not in failed_algorithms]
    if not kept:
        raise first_error  # every algorithm lost at least one cell
    # A RemoteCacheTier cache exposes flush()/remote_stats(); a plain
    # ArtifactCache (or no cache) does not — duck-typed so this layer
    # never imports the store layer above it.  Flush bounds the wait for
    # background pushes so the snapshot reflects the whole run.
    stats_of = getattr(type(runtime.cache), "remote_stats", None)
    store_stats = None
    if stats_of is not None:
        runtime.cache.flush(timeout=10.0)
        store_stats = runtime.cache.remote_stats()
    return GridResult(
        collected={name: collected[name] for name in kept},
        n_cells=len(cell_tasks),
        n_repeats=len(plans),
        failures=failures,
        dropped_algorithms=[name for name in algorithms if name in failed_algorithms],
        failed_repeats=failed_repeats,
        resumed_initial_fits=resumed_initial_fits,
        resumed_cells=resumed_cells,
        store=store_stats,
    )
