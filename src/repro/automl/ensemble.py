"""Caruana-style greedy ensemble selection and the ensemble classifier.

AutoSklearn builds its final model by greedily adding search candidates
(with replacement) to an ensemble so as to maximize a validation metric of
the *averaged* probabilities.  We reproduce that procedure: it is exactly
the mechanism that yields the diverse bag of strong models the paper's
feedback algorithm re-purposes as a committee.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import ValidationError
from ..ml.base import check_is_fitted
from ..ml.metrics import balanced_accuracy

__all__ = ["greedy_ensemble_selection", "EnsembleClassifier"]


def greedy_ensemble_selection(
    proba_matrices: Sequence[np.ndarray],
    y_valid: np.ndarray,
    classes: np.ndarray,
    *,
    ensemble_size: int = 10,
    scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
) -> list[int]:
    """Return candidate indices (with repetition) forming the best ensemble.

    Starts from the single best candidate and repeatedly adds whichever
    candidate most improves the score of the averaged probabilities;
    repetition acts as implicit weighting, as in Caruana et al. (2004).
    """
    if not proba_matrices:
        raise ValidationError("no candidate probability matrices given")
    if ensemble_size < 1:
        raise ValidationError(f"ensemble_size must be >= 1, got {ensemble_size}")
    scorer = scorer or balanced_accuracy
    y_valid = np.asarray(y_valid)
    stacked = np.stack(proba_matrices)  # (n_candidates, n_valid, n_classes)
    if stacked.ndim != 3 or stacked.shape[1] != y_valid.shape[0]:
        raise ValidationError("probability matrices disagree with the validation labels")

    def ensemble_score(total: np.ndarray, count: int) -> float:
        predictions = classes[np.argmax(total / count, axis=1)]
        return float(scorer(y_valid, predictions))

    selected: list[int] = []
    running_total = np.zeros_like(stacked[0])
    for _ in range(ensemble_size):
        scores = np.array(
            [ensemble_score(running_total + stacked[i], len(selected) + 1) for i in range(stacked.shape[0])]
        )
        best = int(np.argmax(scores))
        selected.append(best)
        running_total += stacked[best]
    return selected


class EnsembleClassifier:
    """Weighted soft-voting ensemble over fitted member pipelines.

    Members and weights typically come from :func:`greedy_ensemble_selection`
    (repetitions collapse into integer weights).  The member list is public:
    the feedback algorithm iterates over ``members`` to build its committee.
    """

    def __init__(self, members: Sequence, weights: Sequence[float], classes: np.ndarray):
        members = list(members)
        weights = np.asarray(list(weights), dtype=np.float64)
        if not members:
            raise ValidationError("ensemble needs at least one member")
        if weights.shape[0] != len(members):
            raise ValidationError(f"{len(members)} members but {weights.shape[0]} weights")
        if (weights <= 0).any():
            raise ValidationError("ensemble weights must be positive")
        self.members = members
        self.weights = weights / weights.sum()
        self.classes_ = np.asarray(classes)
        self.fitted_ = True

    def __len__(self) -> int:
        return len(self.members)

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "fitted_")
        return self._weighted_proba(self.member_proba(X))

    def member_proba(self, X) -> np.ndarray:
        """Aligned per-member probabilities, shape ``(n_members, n, n_classes)``.

        The single member sweep everything else derives from: the weighted
        ensemble probabilities are an accumulation over this stack, and the
        serving layer's committee-disagreement monitor is its per-point
        standard deviation — one pass over the members answers both.  Tree
        ensemble members evaluate through their
        :class:`repro.ml.kernels.TreeBank` fast path here, so the kernel
        speedup reaches serving and committee profiles transitively.
        """
        check_is_fitted(self, "fitted_")
        return np.stack([self._aligned_member_proba(member, X) for member in self.members])

    def _weighted_proba(self, stack: np.ndarray) -> np.ndarray:
        """Collapse a member stack to ensemble probabilities.

        Accumulates in member order with the same operation sequence the
        historical loop used, so refactoring through the stack kept
        ``predict_proba`` bitwise-identical.
        """
        total = None
        for weight, proba in zip(self.weights, stack):
            total = weight * proba if total is None else total + weight * proba
        return total

    def predict_batch(self, X) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One member sweep answering ``(predictions, proba, member_stack)``.

        The serving engine's batch path: a micro-batch needs the hard
        predictions for the response, the ensemble probabilities for
        confidence, and the per-member stack for the uncertainty monitor —
        computing them from one ``member_proba`` pass means a served batch
        costs exactly one offline ``predict_proba`` sweep.
        """
        check_is_fitted(self, "fitted_")
        stack = self.member_proba(X)
        proba = self._weighted_proba(stack)
        return self.classes_[np.argmax(proba, axis=1)], proba, stack

    def _aligned_member_proba(self, member, X) -> np.ndarray:
        proba = member.predict_proba(X)
        member_classes = np.asarray(member.classes_)
        if member_classes.shape[0] == self.classes_.shape[0] and np.all(member_classes == self.classes_):
            return proba
        aligned = np.zeros((proba.shape[0], self.classes_.shape[0]))
        positions = np.searchsorted(self.classes_, member_classes)
        aligned[:, positions] = proba
        return aligned

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def member_predictions(self, X) -> np.ndarray:
        """Stack of each member's hard predictions, shape ``(n_members, n)``.

        Used by the QBC baseline (vote entropy needs per-member votes).
        """
        return np.stack([member.predict(X) for member in self.members])

    def score(self, X, y) -> float:
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))
