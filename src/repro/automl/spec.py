"""A picklable recipe for building :class:`AutoMLClassifier` instances.

The experiment harness historically described "an AutoML configuration"
as a closure ``rng -> AutoMLClassifier``.  Closures cannot cross a process
boundary, which the :mod:`repro.runtime` executors need to do constantly
(every Cross-ALE run and every strategy refit is an ``automl.fit`` task).
:class:`AutoMLSpec` is the same idea as plain data: frozen, picklable,
hashable into a cache key by its fields, and callable with a generator so
every existing ``automl_factory(rng)`` call site works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable

import numpy as np

from .automl import AutoMLClassifier
from .spaces import ModelFamily

__all__ = ["AutoMLSpec"]


@dataclass(frozen=True)
class AutoMLSpec:
    """Constructor arguments of :class:`AutoMLClassifier`, minus the seed.

    ``scorer`` must be a module-level function (pickled by reference) and
    ``families`` a tuple of :class:`ModelFamily` — both requirements come
    from the process boundary, not from this class.
    """

    n_iterations: int = 30
    time_budget: float | None = None
    ensemble_size: int = 10
    min_distinct_members: int = 4
    valid_fraction: float = 0.25
    families: tuple[ModelFamily, ...] | None = None
    scorer: Callable[[np.ndarray, np.ndarray], float] | None = None
    search_strategy: str = "random"

    def build(self, random_state) -> AutoMLClassifier:
        """Construct the classifier this spec describes, seeded by ``random_state``."""
        kwargs: dict[str, Any] = {field.name: getattr(self, field.name) for field in fields(self)}
        families = kwargs.pop("families")
        return AutoMLClassifier(
            families=list(families) if families is not None else None,
            random_state=random_state,
            **kwargs,
        )

    def __call__(self, random_state) -> AutoMLClassifier:
        return self.build(random_state)
