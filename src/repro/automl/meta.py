"""Meta-learning warm start for the AutoML search.

AutoSklearn's third ingredient (besides search and ensembling) is
meta-learning: characterize a dataset with cheap *meta-features*, find
previously solved datasets that look similar, and seed the search with the
configurations that won there.  This module implements that loop:

- :func:`compute_meta_features` — a fixed vector of dataset statistics;
- :class:`MetaLearningStore` — a persistent memory of
  ``(meta-features, winning configuration, score)`` records with
  nearest-neighbour lookup;
- :class:`WarmStartSearch` — wraps a base search so its first candidates
  are the store's suggestions, with the remainder of the budget explored
  as usual.

The store is deliberately simple (JSON on disk, standardized Euclidean
distance) — the structure, not the sophistication, is what the AutoML
substrate needs to be a faithful AutoSklearn stand-in.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..exceptions import ValidationError
from ..ml.base import check_X_y
from ..rng import RandomState, check_random_state
from .pipeline import Pipeline
from .search import RandomSearch, SearchResult
from .spaces import Candidate, ModelFamily, default_model_families, _SCALERS

__all__ = ["compute_meta_features", "MetaRecord", "MetaLearningStore", "WarmStartSearch"]

META_FEATURE_NAMES = [
    "log_n_samples",
    "log_n_features",
    "n_classes",
    "class_entropy",
    "majority_fraction",
    "mean_abs_skew",
    "mean_feature_correlation",
    "mean_coefficient_of_variation",
]


def compute_meta_features(X, y) -> np.ndarray:
    """A fixed-length statistical fingerprint of a classification dataset."""
    X, y = check_X_y(X, y)
    n, d = X.shape
    _, counts = np.unique(y, return_counts=True)
    fractions = counts / counts.sum()
    entropy = float(-np.sum(fractions * np.log(fractions)))

    centered = X - X.mean(axis=0)
    std = X.std(axis=0)
    safe_std = np.where(std > 0, std, 1.0)
    standardized = centered / safe_std
    skew = np.mean(np.abs((standardized**3).mean(axis=0)))
    if d > 1:
        corr = np.corrcoef(standardized, rowvar=False)
        corr = np.nan_to_num(corr, nan=0.0)
        off_diag = corr[~np.eye(d, dtype=bool)]
        mean_corr = float(np.mean(np.abs(off_diag)))
    else:
        mean_corr = 0.0
    means = X.mean(axis=0)
    cov_coeff = float(np.mean(std / np.maximum(np.abs(means), 1e-9)))

    return np.array(
        [
            np.log(n),
            np.log(d),
            float(counts.size),
            entropy,
            float(fractions.max()),
            float(skew),
            mean_corr,
            min(cov_coeff, 1e6),
        ]
    )


@dataclass
class MetaRecord:
    """One remembered outcome: dataset fingerprint -> winning config."""

    meta_features: list[float]
    family: str
    params: dict
    scaler: str
    score: float

    def to_json(self) -> dict:
        return {
            "meta_features": list(self.meta_features),
            "family": self.family,
            "params": self.params,
            "scaler": self.scaler,
            "score": self.score,
        }

    @classmethod
    def from_json(cls, data: dict) -> "MetaRecord":
        return cls(
            meta_features=[float(v) for v in data["meta_features"]],
            family=str(data["family"]),
            params=dict(data["params"]),
            scaler=str(data["scaler"]),
            score=float(data["score"]),
        )


class MetaLearningStore:
    """A memory of past AutoML outcomes with similarity lookup.

    ``path`` makes the store persistent (JSON); without it the store is
    in-memory only.
    """

    def __init__(self, path: str | Path | None = None):
        self.path = Path(path) if path is not None else None
        self.records: list[MetaRecord] = []
        if self.path is not None and self.path.exists():
            self._load()

    def __len__(self) -> int:
        return len(self.records)

    def _load(self) -> None:
        data = json.loads(self.path.read_text())
        self.records = [MetaRecord.from_json(item) for item in data]

    def _persist(self) -> None:
        if self.path is not None:
            self.path.write_text(json.dumps([record.to_json() for record in self.records], indent=1))

    def remember(self, X, y, result: SearchResult, *, top_k: int = 3) -> None:
        """Store the best ``top_k`` configurations of a finished search."""
        meta = compute_meta_features(X, y)
        for item in result.evaluated[:top_k]:
            candidate = item.candidate
            self.records.append(
                MetaRecord(
                    meta_features=meta.tolist(),
                    family=candidate.family,
                    params=_jsonable(candidate.params),
                    scaler=candidate.scaler,
                    score=item.score,
                )
            )
        self._persist()

    def suggest(self, X, y, *, k: int = 5) -> list[MetaRecord]:
        """The stored configurations from the most similar datasets.

        Distance is Euclidean over meta-features standardized by the
        store's own spread, so no single scale-heavy feature dominates.
        """
        if not self.records:
            return []
        query = compute_meta_features(X, y)
        matrix = np.array([record.meta_features for record in self.records])
        spread = matrix.std(axis=0)
        spread[spread == 0.0] = 1.0
        distances = np.linalg.norm((matrix - query) / spread, axis=1)
        order = np.argsort(distances)
        # Deduplicate identical configurations, nearest first.
        seen: set[tuple] = set()
        suggestions: list[MetaRecord] = []
        for index in order:
            record = self.records[index]
            key = (record.family, record.scaler, tuple(sorted(record.params.items())))
            if key in seen:
                continue
            seen.add(key)
            suggestions.append(record)
            if len(suggestions) >= k:
                break
        return suggestions


def _jsonable(params: dict) -> dict:
    out = {}
    for key, value in params.items():
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        out[key] = value
    return out


class WarmStartSearch:
    """A random search seeded with a meta-learning store's suggestions.

    Suggested configurations are evaluated first (they consume part of the
    ``n_iterations`` budget); the rest of the budget explores randomly.
    On completion the search's winners are written back to the store, so
    repeated use across datasets accumulates experience.
    """

    def __init__(
        self,
        store: MetaLearningStore,
        *,
        n_iterations: int = 30,
        n_warm: int = 5,
        valid_fraction: float = 0.25,
        families: list[ModelFamily] | None = None,
        remember: bool = True,
        random_state: RandomState = None,
    ):
        if n_warm < 0:
            raise ValidationError(f"n_warm must be >= 0, got {n_warm}")
        if n_warm >= n_iterations:
            raise ValidationError(
                f"n_warm ({n_warm}) must leave room for exploration within n_iterations ({n_iterations})"
            )
        self.store = store
        self.n_iterations = n_iterations
        self.n_warm = n_warm
        self.valid_fraction = valid_fraction
        self.families = families
        self.remember = remember
        self.random_state = random_state

    def _rebuild_candidate(self, record: MetaRecord, families: list[ModelFamily], rng) -> Candidate | None:
        by_name = {family.name: family for family in families}
        family = by_name.get(record.family)
        if family is None or record.scaler not in _SCALERS:
            return None
        try:
            model = family.build(dict(record.params), rng)
        except (TypeError, ValidationError):
            return None  # the stored params no longer match the space
        pipeline = Pipeline([("scaler", _SCALERS[record.scaler]()), ("model", model)])
        return Candidate(family=record.family, params=dict(record.params), scaler=record.scaler, pipeline=pipeline)

    def run(self, X, y) -> SearchResult:
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        families = self.families if self.families is not None else default_model_families()

        warm_candidates: list[Candidate] = []
        for record in self.store.suggest(X, y, k=self.n_warm):
            candidate = self._rebuild_candidate(record, families, rng)
            if candidate is not None:
                warm_candidates.append(candidate)

        search = RandomSearch(
            n_iterations=self.n_iterations,
            valid_fraction=self.valid_fraction,
            families=families,
            initial_candidates=warm_candidates,
            random_state=rng,
        )
        result = search.run(X, y)
        if self.remember:
            self.store.remember(X, y, result)
        return result
