"""The AutoML façade: search + ensemble selection behind one ``fit``.

:class:`AutoMLClassifier` is this library's stand-in for AutoSklearn: it
random-searches the model/preprocessing space under a budget, performs
greedy ensemble selection on a held-out validation split, refits the
selected members on all the training data, and exposes the resulting
weighted ensemble — including the individual members, which is what the
paper's interpretable-feedback algorithm consumes.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ValidationError
from ..ml.base import check_array, check_is_fitted, check_X_y
from ..ml.metrics import balanced_accuracy
from ..rng import RandomState, check_random_state
from .ensemble import EnsembleClassifier, greedy_ensemble_selection
from .search import RandomSearch, SearchResult
from .spaces import ModelFamily

__all__ = ["AutoMLClassifier"]


class AutoMLClassifier:
    """Budgeted AutoML for classification.

    Parameters
    ----------
    n_iterations, time_budget:
        Search budget (candidate count / optional wall-clock seconds).
    ensemble_size:
        Number of greedy selection rounds; repeated picks become weights.
    valid_fraction:
        Held-out fraction used to score candidates and select the ensemble.
    families:
        Optional restricted list of :class:`ModelFamily`; the domain
        customization wrapper uses this hook.
    scorer:
        Validation metric, default balanced accuracy (the paper's metric).

    Attributes (after ``fit``)
    --------------------------
    ensemble_ : EnsembleClassifier
        The final weighted ensemble, refit on all training data.
    search_result_ : SearchResult
        Full search history (scores, failures, splits).
    classes_ : ndarray
        Sorted class labels.
    """

    def __init__(
        self,
        *,
        n_iterations: int = 30,
        time_budget: float | None = None,
        ensemble_size: int = 10,
        min_distinct_members: int = 4,
        valid_fraction: float = 0.25,
        families: list[ModelFamily] | None = None,
        scorer: Callable[[np.ndarray, np.ndarray], float] | None = None,
        search_strategy: str = "random",
        random_state: RandomState = None,
    ):
        if ensemble_size < 1:
            raise ValidationError(f"ensemble_size must be >= 1, got {ensemble_size}")
        if min_distinct_members < 1:
            raise ValidationError(f"min_distinct_members must be >= 1, got {min_distinct_members}")
        if search_strategy not in ("random", "halving"):
            raise ValidationError(
                f"search_strategy must be 'random' or 'halving', got {search_strategy!r}"
            )
        self.n_iterations = n_iterations
        self.time_budget = time_budget
        self.ensemble_size = ensemble_size
        self.min_distinct_members = min_distinct_members
        self.valid_fraction = valid_fraction
        self.families = families
        self.scorer = scorer or balanced_accuracy
        self.search_strategy = search_strategy
        self.random_state = random_state

    def fit(self, X, y) -> "AutoMLClassifier":
        X, y = check_X_y(X, y)
        rng = check_random_state(self.random_state)
        if self.search_strategy == "halving":
            from .halving import SuccessiveHalvingSearch

            search = SuccessiveHalvingSearch(
                n_candidates=max(2, self.n_iterations),
                valid_fraction=self.valid_fraction,
                time_budget=self.time_budget,
                families=self.families,
                scorer=self.scorer,
                random_state=rng,
            )
        else:
            search = RandomSearch(
                n_iterations=self.n_iterations,
                time_budget=self.time_budget,
                valid_fraction=self.valid_fraction,
                families=self.families,
                scorer=self.scorer,
                random_state=rng,
            )
        result = search.run(X, y)
        picks = greedy_ensemble_selection(
            [item.valid_proba for item in result.evaluated],
            y[result.valid_indices],
            result.classes,
            ensemble_size=self.ensemble_size,
            scorer=self.scorer,
        )
        unique_picks, counts = np.unique(np.asarray(picks), return_counts=True)
        unique_picks, counts = list(unique_picks), list(counts)
        # Greedy selection happily converges onto one dominant candidate.
        # The feedback algorithm needs the ensemble to double as a diverse
        # committee, so top up with the best not-yet-selected candidates
        # (at the minimum weight) until the member floor is met.
        floor = min(self.min_distinct_members, len(result.evaluated))
        for index in range(len(result.evaluated)):
            if len(unique_picks) >= floor:
                break
            if index not in unique_picks:
                unique_picks.append(index)
                counts.append(1)
        members = []
        for index in unique_picks:
            # Refit each selected configuration on the full training data so
            # the final ensemble does not waste the validation rows.
            pipeline = result.evaluated[int(index)].candidate.pipeline.clone()
            pipeline.fit(X, y)
            members.append(pipeline)
        self.ensemble_ = EnsembleClassifier(members, np.asarray(counts, dtype=float), result.classes)
        self.search_result_: SearchResult = result
        self.classes_ = result.classes
        self.n_features_ = X.shape[1]
        return self

    # -- classifier protocol ----------------------------------------------
    def predict(self, X) -> np.ndarray:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.predict(check_array(X))

    def predict_proba(self, X) -> np.ndarray:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.predict_proba(check_array(X))

    def predict_batch(self, X) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One member sweep answering ``(predictions, proba, member_stack)``.

        The serving layer's batch entry point: predictions here are
        bitwise-identical to :meth:`predict` (same member sweep, same
        weighted accumulation), and the per-member probability stack rides
        along for committee-disagreement monitoring at no extra cost.
        """
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.predict_batch(check_array(X))

    def score(self, X, y) -> float:
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.score(check_array(X), y)

    # -- introspection ------------------------------------------------------
    @property
    def ensemble_members_(self) -> list:
        """The fitted member pipelines of the final ensemble."""
        check_is_fitted(self, "ensemble_")
        return self.ensemble_.members

    def describe(self) -> str:
        """Human-readable summary of the fitted ensemble."""
        check_is_fitted(self, "ensemble_")
        lines = [f"AutoML ensemble with {len(self.ensemble_)} member(s):"]
        for member, weight in zip(self.ensemble_.members, self.ensemble_.weights):
            model = type(member.final_estimator).__name__
            lines.append(f"  weight={weight:.2f}  {model}")
        best = self.search_result_.best
        lines.append(f"best single candidate: {best.candidate.describe()} (score={best.score:.3f})")
        return "\n".join(lines)
